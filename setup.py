"""Shim for environments whose pip cannot build PEP 517 editable installs
offline (no `wheel` package); all real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
