"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment (datasets are simulated once and cached under
``.cache/datasets``), *prints* the figure's rows, writes them to
``results/<experiment>.txt``, and asserts the qualitative shape the paper
reports.  Timings are recorded via pytest-benchmark.

First run generates ~2500 simulated chat clips (~25 minutes on one core);
subsequent runs load everything from the dataset cache.  Set
``REPRO_BENCH_JOBS=N`` to simulate and evaluate over N worker processes —
results are bit-identical at any job count.  ``pytest benchmarks -m smoke``
runs only the fast deterministic subset (no full-scale simulation).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.engine import ExecutionEngine
from repro.experiments.dataset import build_dataset

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def engine():
    """Session-wide execution engine shared by every benchmark.

    Job count comes from ``REPRO_BENCH_JOBS`` (default 1, i.e. serial);
    the feature cache persists across benchmarks so sweeps that revisit
    the same clips pay extraction once.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    with ExecutionEngine(jobs=jobs) as eng:
        yield eng


@pytest.fixture(scope="session")
def main_dataset(engine):
    """The paper's headline dataset: 10 users x 2 roles x 40 clips."""
    return build_dataset(clips_per_role=40, engine=engine)


@pytest.fixture(scope="session")
def report():
    """Writer that both prints a figure's rows and persists them."""

    def _report(name: str, lines: list[str]) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(lines)
        print(f"\n=== {name} ===\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
