"""Micro-benchmarks of the individual pipeline components.

Not paper figures — engineering numbers that bound the Sec. IX overhead
argument per stage and catch performance regressions.
"""

import numpy as np
import pytest

from repro.camera.sensor import ImageSensor
from repro.core.config import DetectorConfig
from repro.core.dtw import dtw_distance
from repro.core.lof import LocalOutlierFactor
from repro.core.preprocessing import preprocess
from repro.experiments.simulate import simulate_genuine_session
from repro.vision.expression import ExpressionTrack, PoseState
from repro.vision.face_model import make_face
from repro.vision.landmarks import LandmarkDetector
from repro.vision.renderer import FaceRenderer


@pytest.fixture(scope="module")
def luminance_signal():
    rng = np.random.default_rng(0)
    x = np.full(150, 180.0)
    x[40:] -= 50.0
    x[110:] += 50.0
    return x + rng.normal(0, 0.5, 150)


def test_bench_preprocess_chain(benchmark, luminance_signal):
    config = DetectorConfig()
    result = benchmark(lambda: preprocess(luminance_signal, config, 10.0))
    assert result.smoothed.size == 150


def test_bench_dtw_75_samples(benchmark):
    rng = np.random.default_rng(1)
    x = rng.normal(size=75)
    y = rng.normal(size=75)
    distance = benchmark(lambda: dtw_distance(x, y))
    assert distance > 0


def test_bench_lof_fit_and_score(benchmark):
    rng = np.random.default_rng(2)
    bank = rng.normal(size=(20, 4))
    query = rng.normal(size=4)

    def fit_and_score():
        return LocalOutlierFactor(5).fit(bank).score(query)

    score = benchmark(fit_and_score)
    assert np.isfinite(score)


def test_bench_render_frame(benchmark):
    face = make_face("bench", tone="light")
    renderer = FaceRenderer(face, height=96, width=96, seed=1)
    track = ExpressionTrack(seed=2)
    pose = track.sample(1.0)
    result = benchmark(lambda: renderer.render(pose, 120.0, 50.0, 70.0))
    assert result.face_visible


def test_bench_landmark_detection(benchmark):
    face = make_face("bench", tone="light")
    renderer = FaceRenderer(face, height=96, width=96, seed=1)
    pose = PoseState(center_x=0.5, center_y=0.48, scale=0.3, roll=0.0, blink=0.0, mouth_open=0.0)
    rendered = renderer.render(pose, 120.0, 120.0)
    pixels = ImageSensor(rng=None).expose(rendered.radiance, 1.0 / 250.0)
    detector = LandmarkDetector()
    landmarks = benchmark(lambda: detector.detect(pixels))
    assert landmarks is not None


def test_bench_full_session_simulation(benchmark):
    """One 15-second chat simulation (the testbed's own cost, not the
    detector's)."""
    counter = iter(range(10_000))

    def session():
        return simulate_genuine_session(duration_s=15.0, seed=5000 + next(counter))

    record = benchmark.pedantic(session, rounds=3, iterations=1)
    assert len(record.transmitted) == 150
