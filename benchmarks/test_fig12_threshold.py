"""Fig. 12 — influence of the decision threshold.

Paper: sweeping tau from 1.5 to 4, FAR rises and FRR falls; they balance
near tau in [2.8, 3] at an EER of about 5.5 %.  Our reproduction keeps
the monotone trade-off and lands at a comparable EER; the crossover sits
at a higher tau because the simulated attacks separate more sharply (see
EXPERIMENTS.md).
"""

import numpy as np

from repro.experiments.runner import run_threshold_sweep

from .conftest import run_once


def test_fig12_threshold(benchmark, main_dataset, report):
    result = run_once(
        benchmark,
        lambda: run_threshold_sweep(main_dataset, rounds=10, train_size=20),
    )

    lines = [
        "Fig. 12 FAR/FRR vs decision threshold tau",
        f"{'tau':>5s} {'FAR':>8s} {'FRR':>8s}",
    ]
    for tau, far, frr in zip(result.thresholds, result.far, result.frr):
        lines.append(f"{tau:5.2f} {far:8.4f} {frr:8.4f}")
    lines += [
        f"EER = {result.eer:.4f} at tau = {result.eer_threshold:.2f}",
        "paper: EER ~ 0.055 at tau in [2.8, 3.0]",
    ]
    report("fig12_threshold", lines)

    # Shape: FAR monotone up, FRR monotone down, EER in the paper's range.
    assert (np.diff(result.far) >= -1e-9).all()
    assert (np.diff(result.frr) <= 1e-9).all()
    assert result.eer < 0.12
    # At the paper's default tau=3 the operating point is usable.
    idx = int(np.argmin(np.abs(result.thresholds - 3.0)))
    assert result.far[idx] < 0.05
    assert result.frr[idx] < 0.20
