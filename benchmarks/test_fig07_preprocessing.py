"""Fig. 7 — the preprocessing chain on a real received-signal clip.

Paper's panels: (a) raw + low-passed luminance with visible rising and
falling edges at each challenge; (b) the variance signal with noise
spikes; (c) the smoothed variance with one clean peak per significant
change.  We regenerate the same panels numerically and assert each
stage's contract.
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.luminance import received_luminance_signal, transmitted_luminance_signal
from repro.core.preprocessing import preprocess
from repro.experiments.simulate import simulate_genuine_session

from .conftest import run_once


def test_fig07_preprocessing(benchmark, report):
    config = DetectorConfig()

    def experiment():
        record = simulate_genuine_session(duration_s=15.0, seed=700)
        t_lum = transmitted_luminance_signal(record.transmitted)
        r_lum = received_luminance_signal(record.received).luminance
        pre_t = preprocess(t_lum, config, config.peak_prominence_screen)
        pre_r = preprocess(r_lum, config, config.peak_prominence_face)
        return pre_t, pre_r

    pre_t, pre_r = run_once(benchmark, experiment)

    def _high_band_energy(x: np.ndarray) -> float:
        spectrum = np.abs(np.fft.rfft(x - x.mean())) ** 2
        freqs = np.fft.rfftfreq(x.size, d=1.0 / config.sample_rate_hz)
        return float(spectrum[freqs > 1.5].sum())

    noise_removed = _high_band_energy(pre_r.raw) / max(
        _high_band_energy(pre_r.lowpassed), 1e-9
    )
    report(
        "fig07_preprocessing",
        [
            "Fig. 7 preprocessing stages (received signal)",
            f"raw luminance range        : {pre_r.raw.min():6.1f} .. {pre_r.raw.max():6.1f}",
            f"high-freq attenuation      : {noise_removed:6.2f}x (>1.5 Hz band energy)",
            f"variance peak              : {pre_r.variance.max():6.1f}",
            f"smoothed variance peak     : {pre_r.smoothed.max():6.1f}",
            f"screen changes found       : {pre_t.change_count} at {np.round(pre_t.peak_times, 1)} s",
            f"face changes found         : {pre_r.change_count} at {np.round(pre_r.peak_times, 1)} s",
        ],
    )

    # (a) the low-pass attenuates the super-cutoff band (the residual is
    # spectral leakage of the challenge steps themselves, not noise).
    assert noise_removed > 2.0
    # (b,c) every stage non-negative after clamping; peaks exist.
    assert (pre_r.smoothed >= 0).all()
    assert pre_t.change_count >= 1
    assert pre_r.change_count >= 1
    # Each face change matches a screen change within the tolerance + delay.
    for rt in pre_r.peak_times:
        assert np.min(np.abs(pre_t.peak_times - rt)) < 1.5
