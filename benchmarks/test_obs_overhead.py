"""Observability overhead: disabled instrumentation must be free.

Every hot-path layer holds an ``Instrumentation`` handle; with the NULL
handle each touchpoint is one attribute lookup plus a no-op call.  This
smoke benchmark measures that per-operation cost directly, scales it by
a generous estimate of touchpoints per session tick, and asserts the
total stays under 5% of real simulation time — the "zero overhead when
disabled" claim, enforced.
"""

import time

import pytest

from repro.experiments.profiles import Environment
from repro.experiments.simulate import simulate_genuine_session
from repro.obs import NULL

from .conftest import run_once

#: Upper-bound estimate of disabled-handle operations per session tick:
#: channel counters on two links, chat-loop counters, streaming push,
#: and the per-clip span/counter set amortized over its 150 ticks.
OPS_PER_TICK = 16.0


@pytest.mark.smoke
def test_disabled_instrumentation_is_effectively_free(report, benchmark):
    ops = 200_000
    t0 = time.perf_counter()
    for _ in range(ops):
        NULL.count("net_packets_sent_total")
        with NULL.span("chat.session", stage="simulate"):
            pass
    per_op_s = (time.perf_counter() - t0) / (2 * ops)

    env = Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))

    def simulate():
        t0 = time.perf_counter()
        record = simulate_genuine_session(duration_s=10.0, seed=904, env=env)
        return record, time.perf_counter() - t0

    record, sim_s = run_once(benchmark, simulate)
    ticks = len(record.transmitted)
    overhead = per_op_s * OPS_PER_TICK * ticks / sim_s

    report(
        "obs_overhead",
        [
            "Disabled-instrumentation overhead on the simulate path",
            f"per no-op handle operation: {per_op_s * 1e9:8.1f} ns",
            f"session: {ticks} ticks in {sim_s:.3f} s",
            f"implied overhead at {OPS_PER_TICK:.0f} ops/tick: "
            f"{overhead * 100:.4f}% (budget 5%)",
        ],
    )
    assert overhead < 0.05
