"""Sec. IX — computation overhead.

Paper: feature extraction + classification complete "within 0.2 seconds
for a luminance signal extracted from a 15-second facial video", making
the system viable on resource-limited devices.  These are true
pytest-benchmark timings of the per-clip pipeline stages.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import LivenessDetector
from repro.core.features import extract_features
from repro.core.luminance import received_luminance_signal, transmitted_luminance_signal
from repro.experiments.dataset import GENUINE
from repro.experiments.simulate import simulate_genuine_session
from repro.vision.landmarks import LandmarkDetector


@pytest.fixture(scope="module")
def clip_signals(main_dataset):
    clip = main_dataset.select(role=GENUINE)[0]
    return clip.transmitted_luminance, clip.received_luminance


@pytest.fixture(scope="module")
def trained_detector(main_dataset):
    user = main_dataset.users[0]
    detector = LivenessDetector(DetectorConfig())
    detector.fit(main_dataset.features_of(user, GENUINE)[:20])
    return detector


def test_sec9_feature_extraction_and_classification(
    benchmark, clip_signals, trained_detector, report
):
    """The paper's quoted number: features + classification per clip."""
    t_lum, r_lum = clip_signals

    def per_clip():
        return trained_detector.verify_clip(t_lum, r_lum)

    result = benchmark(per_clip)
    assert result is not None
    mean_s = benchmark.stats.stats.mean
    report(
        "sec9_overhead",
        [
            "Sec. IX computation overhead, one 15-second clip",
            f"feature extraction + classification: {mean_s * 1000:8.2f} ms",
            "paper: < 200 ms (Matlab/Python prototype)",
        ],
    )
    assert mean_s < 0.2


def test_sec9_luminance_extraction_rate(benchmark):
    """Per-frame landmark detection + ROI luminance must keep up with the
    10 Hz sampling rate (paper cites 300 fps landmarkers on phones)."""
    record = simulate_genuine_session(duration_s=15.0, seed=901)
    landmark_detector = LandmarkDetector()

    def extract():
        t = transmitted_luminance_signal(record.transmitted)
        r = received_luminance_signal(record.received, landmark_detector)
        return t, r

    t, r = benchmark(extract)
    assert t.size == r.luminance.size == 150
    per_frame_ms = benchmark.stats.stats.mean * 1000 / 150
    # 10 Hz sampling needs < 100 ms per frame; we must be far below that.
    assert per_frame_ms < 20.0


def test_sec9_detection_scales_with_training_size(benchmark, main_dataset):
    """Classification cost must stay trivial even with a large bank."""
    user = main_dataset.users[0]
    bank = np.tile(main_dataset.features_of(user, GENUINE), (10, 1))  # 400 vectors
    detector = LivenessDetector(DetectorConfig())
    detector.fit(bank)
    z = main_dataset.select(role=GENUINE)[0].features

    result = benchmark(lambda: detector.verify_features(z))
    assert result is not None
    assert benchmark.stats.stats.mean < 0.05
