"""Service load benchmark: 200+ concurrent sessions, deterministically.

The fast deterministic service benchmark (``-m smoke``): an open-loop
workload of 220 sessions across 10 tenants — attacks, chaos, abandoned
feeds, frame bursts, undersized tenant banks — driven through the full
:class:`VerificationServer` stack under virtual time, then replayed
serially and compared **byte for byte**: same outcomes, same merged
metrics snapshot, at a >=200 concurrent-session peak versus one at a
time.

Because the run is virtual-time deterministic, the SLO numbers (peak
concurrency, admission rate, drop rate, p99 verdict latency, task
failures) are machine-independent, so ``service_baseline.json`` gates
them exactly; only the wall-clock seconds vary by host.  The run is
recorded in ``BENCH_service.json`` at the repo root.
"""

import json
import pathlib
import time

import pytest

from repro.obs import Instrumentation
from repro.service import (
    ServerConfig,
    VerificationServer,
    VirtualScheduler,
    WorkloadConfig,
    build_slo_report,
    make_tenant_bank_provider,
    run_workload,
)

from .conftest import run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "service_baseline.json"

WORKLOAD = WorkloadConfig(
    sessions=220,
    tenants=10,
    arrival_rate_hz=22.0,
    attack_fraction=0.3,
    chaos_fraction=0.2,
    abandon_fraction=0.05,
    burst_fraction=0.05,
    small_tenant_fraction=0.2,
    seed=20260808,
)
SERVER = ServerConfig(max_sessions=256, admission_queue_depth=16)


def _run(serial: bool):
    scheduler = VirtualScheduler()
    instr = Instrumentation.enabled(clock=scheduler.clock)
    server = VerificationServer(
        scheduler,
        make_tenant_bank_provider(WORKLOAD),
        SERVER,
        instrumentation=instr,
    )
    t0 = time.perf_counter()
    result = run_workload(
        scheduler, server, WORKLOAD, serial=serial, wall_guard_s=600.0
    )
    wall_s = time.perf_counter() - t0
    return result, instr.snapshot(), server, wall_s


@pytest.mark.smoke
@pytest.mark.filterwarnings("ignore::repro.core.lof.SmallBankWarning")
def test_service_load(report, benchmark):
    concurrent, snapshot, server, concurrent_s = run_once(
        benchmark, lambda: _run(serial=False)
    )
    serial, serial_snapshot, serial_server, serial_s = _run(serial=True)

    # The headline property: the pool run IS its serial replay, bitwise.
    identical = concurrent.outcomes == serial.outcomes and snapshot == serial_snapshot
    assert identical, "concurrent run diverged from its serial replay"
    assert serial_server.peak_active == 1

    slo = build_slo_report(snapshot, server.peak_active, server.peak_queued)
    baseline = json.loads(BASELINE_PATH.read_text())
    assert server.peak_active >= baseline["min_peak_concurrent_sessions"]
    assert slo.admission_rate >= baseline["min_admission_rate"]
    assert slo.drop_rate <= baseline["max_drop_rate"]
    assert slo.p99_latency_s <= baseline["max_p99_verdict_latency_s"]
    assert slo.task_failures <= baseline["max_task_failures"]

    payload = {
        "schema": "bench-service-v1",
        "sessions": WORKLOAD.sessions,
        "tenants": WORKLOAD.tenants,
        "peak_concurrent_sessions": server.peak_active,
        "peak_queued_sessions": server.peak_queued,
        "admitted": slo.admitted,
        "rejected": slo.rejected,
        "admission_rate": round(slo.admission_rate, 4),
        "p50_verdict_latency_s": round(slo.p50_latency_s, 3),
        "p99_verdict_latency_s": round(slo.p99_latency_s, 3),
        "frames_processed": slo.frames_processed,
        "frames_dropped": slo.frames_dropped,
        "drop_rate": round(slo.drop_rate, 4),
        "status_counts": slo.status_counts,
        "end_reasons": slo.end_reasons,
        "tenant_cache": slo.tenant_cache,
        "task_failures": slo.task_failures,
        "serial_identity": identical,
        "concurrent_wall_s": round(concurrent_s, 2),
        "serial_wall_s": round(serial_s, 2),
        "note": (
            "virtual-time SLO numbers are deterministic and gated exactly "
            "by service_baseline.json; only the *_wall_s fields vary by host"
        ),
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report(
        "service_load",
        [
            f"Service load: {WORKLOAD.sessions} sessions / "
            f"{WORKLOAD.tenants} tenants, open-loop "
            f"{WORKLOAD.arrival_rate_hz:g}/s (virtual time)",
            f"peak concurrency: active={server.peak_active} "
            f"queued={server.peak_queued} (serial replay peak=1)",
            *slo.lines(),
            "identity: concurrent == serial (outcomes and merged metrics)",
            f"wall: concurrent={concurrent_s:.1f}s serial={serial_s:.1f}s",
        ],
    )
