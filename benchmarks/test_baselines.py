"""Baseline comparison — the paper's Sec. X arguments, measured.

* The naive cross-correlation detector works but needs a hand-tuned
  global threshold and separates less sharply than the paper's features.
* The artifact detector needs attacker training data and collapses when
  the attacker's synthesis quality improves beyond the training set.
* FaceLive-style sensor correlation is fully bypassed by forged sensors.
"""

import numpy as np

from repro.baselines.artifact import ArtifactDetector
from repro.baselines.crosscorr import CrossCorrelationDetector
from repro.baselines.facelive import FaceLiveDetector, SensorChannel
from repro.core.lof import LocalOutlierFactor
from repro.experiments.dataset import ATTACK, GENUINE

from .conftest import run_once


def test_baseline_crosscorr_vs_lof(benchmark, main_dataset, report):
    def experiment():
        crosscorr = CrossCorrelationDetector()
        genuine_scores, attack_scores = [], []
        lof_genuine, lof_attack = [], []
        rng = np.random.default_rng(7)
        for user in main_dataset.users[:4]:
            genuine_clips = main_dataset.select(user, GENUINE)
            attack_clips = main_dataset.select(user, ATTACK)
            for clip in genuine_clips[:20]:
                genuine_scores.append(
                    crosscorr.score(clip.transmitted_luminance, clip.received_luminance)
                )
            for clip in attack_clips[:20]:
                attack_scores.append(
                    crosscorr.score(clip.transmitted_luminance, clip.received_luminance)
                )
            features = main_dataset.features_of(user, GENUINE)
            perm = rng.permutation(features.shape[0])
            model = LocalOutlierFactor(5).fit(features[perm[:20]])
            lof_genuine.extend(model.score_samples(features[perm[20:]]))
            lof_attack.extend(
                model.score_samples(main_dataset.features_of(user, ATTACK)[:20])
            )
        return (
            np.array(genuine_scores),
            np.array(attack_scores),
            np.array(lof_genuine),
            np.array(lof_attack),
        )

    cc_g, cc_a, lof_g, lof_a = run_once(benchmark, experiment)

    # Accuracy of cross-correlation at its best single threshold.
    thresholds = np.linspace(-1, 1, 201)
    cc_acc = max(
        ((cc_g >= t).mean() + (cc_a < t).mean()) / 2 for t in thresholds
    )
    lof_acc = ((lof_g <= 3.0).mean() + (lof_a > 3.0).mean()) / 2

    report(
        "baseline_crosscorr",
        [
            "Baseline: naive cross-correlation vs paper pipeline (LOF)",
            f"crosscorr genuine median : {np.median(cc_g):6.3f}",
            f"crosscorr attack median  : {np.median(cc_a):6.3f}",
            f"crosscorr best accuracy  : {cc_acc:6.3f} (oracle threshold)",
            f"paper pipeline accuracy  : {lof_acc:6.3f} (fixed tau=3)",
        ],
    )
    # The baseline does separate classes (the luminance signal is real
    # and strong in clean conditions, so even naive correlation works)...
    assert np.median(cc_g) > np.median(cc_a)
    assert cc_acc > 0.8
    # ...and the paper's pipeline stays competitive WITHOUT any
    # per-deployment threshold tuning (the baseline's number above uses
    # an oracle threshold chosen on the test data itself).
    assert lof_acc >= cc_acc - 0.06
    assert lof_acc > 0.9


def test_baseline_artifact_generalization_gap(benchmark, main_dataset, report):
    """Train the artifact detector on crude fakes, test on high-quality
    fakes: accuracy collapses.  The challenge-response defense does not
    care about synthesis quality at all."""
    from repro.experiments.profiles import Environment
    from repro.experiments.simulate import simulate_attack_session, simulate_genuine_session
    from repro.baselines.artifact import artifact_features

    env = Environment(frame_size=(72, 72), verifier_frame_size=(48, 48))

    def experiment():
        genuine = [
            artifact_features(
                simulate_genuine_session(duration_s=15.0, seed=3000 + i, env=env).received
            )
            for i in range(8)
        ]
        crude = [
            artifact_features(
                simulate_attack_session(
                    duration_s=15.0, seed=3100 + i, env=env, artifact_level=0.05
                ).received
            )
            for i in range(8)
        ]
        polished = [
            artifact_features(
                simulate_attack_session(
                    duration_s=15.0, seed=3200 + i, env=env, artifact_level=0.004
                ).received
            )
            for i in range(8)
        ]
        detector = ArtifactDetector().fit(np.array(genuine[:6]), np.array(crude[:6]))
        catch_crude = np.mean([not detector.is_live(f) for f in crude[6:] + crude[:6]])
        catch_polished = np.mean([not detector.is_live(f) for f in polished])
        return float(catch_crude), float(catch_polished)

    catch_crude, catch_polished = run_once(benchmark, experiment)
    report(
        "baseline_artifact",
        [
            "Baseline: artifact detector across synthesis quality",
            f"catches crude fakes (trained on)   : {catch_crude:6.3f}",
            f"catches polished fakes (unseen)    : {catch_polished:6.3f}",
            "expected: accuracy collapses on better synthesis",
        ],
    )
    assert catch_crude > catch_polished


def test_baseline_facelive_sensor_forgery(benchmark, report):
    """FaceLive accepts every attacker that forges its sensor channel."""

    def experiment():
        rng = np.random.default_rng(11)
        detector = FaceLiveDetector()
        honest_pass = 0
        forged_pass = 0
        trials = 20
        for i in range(trials):
            t = np.arange(150) / 10.0
            motion = 3.0 * np.sin(2 * np.pi * rng.uniform(0.1, 0.3) * t + rng.uniform(0, 6))
            motion = motion + rng.normal(0, 0.1, t.size)
            honest = SensorChannel.honest(motion, seed=100 + i)
            if detector.is_live(motion, honest):
                honest_pass += 1
            fake_motion = 3.0 * np.sin(
                2 * np.pi * rng.uniform(0.1, 0.3) * t + rng.uniform(0, 6)
            )
            forged = SensorChannel.forged(fake_motion)
            if detector.is_live(fake_motion, forged):
                forged_pass += 1
        return honest_pass / trials, forged_pass / trials

    honest_rate, forged_rate = run_once(benchmark, experiment)
    report(
        "baseline_facelive",
        [
            "Baseline: FaceLive-style motion correlation",
            f"honest provers accepted          : {honest_rate:6.3f}",
            f"sensor-forging attackers accepted: {forged_rate:6.3f}",
            "paper's criticism: the attacker controls both channels",
        ],
    )
    assert honest_rate > 0.9
    assert forged_rate > 0.95  # the attack bypasses the check entirely
