"""Fig. 11 — overall single-detection performance.

Paper: average TAR 92.5 % when each volunteer's classifier is trained on
their own clips, 92.8 % when trained on *another* volunteer's clips, and
average TRR 94.4 % against ICFace reenactment — the headline claim that
the system needs no per-user and no attacker training data.
"""

from repro.experiments.runner import run_overall

from .conftest import run_once


def test_fig11_overall(benchmark, main_dataset, report):
    result = run_once(
        benchmark, lambda: run_overall(main_dataset, rounds=20, train_size=20)
    )

    lines = [
        "Fig. 11 single-detection performance (20 rounds, 20 training clips)",
        f"{'user':8s} {'TAR(own)':>10s} {'TAR(other)':>11s} {'TRR':>8s}",
    ]
    for u in result.per_user:
        lines.append(
            f"{u.user:8s} {u.tar_own_mean:10.3f} {u.tar_other_mean:11.3f} {u.trr_mean:8.3f}"
        )
    lines += [
        f"{'AVERAGE':8s} {result.avg_tar_own:10.3f} {result.avg_tar_other:11.3f} {result.avg_trr:8.3f}",
        "paper    :      0.925       0.928    0.944",
    ]
    report("fig11_overall", lines)

    # Shape assertions (who wins, roughly by what factor):
    # high acceptance for legitimate users...
    assert result.avg_tar_own > 0.80
    # ...training on others' data is as good as own data (the headline)...
    assert abs(result.avg_tar_other - result.avg_tar_own) < 0.05
    # ...and attacks are rejected at least as reliably as users are accepted.
    assert result.avg_trr > 0.90
    assert result.avg_trr >= result.avg_tar_own - 0.02
