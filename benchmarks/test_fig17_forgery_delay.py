"""Fig. 17 / Sec. VIII-J — effectiveness against the strongest attacker.

Paper's method, reproduced exactly: assume the attacker forges the
face-reflected luminance *perfectly* but needs processing time; shift a
legitimate user's received signal by that delay and measure the rejection
rate.  The paper reads ~80 % rejection at 1.3 s — any forger slower than
that is caught, and no published reenactment pipeline is that fast once a
relighting stage is added.
"""

import numpy as np

from repro.experiments.runner import run_forgery_delay

from .conftest import run_once


def test_fig17_forgery_delay(benchmark, main_dataset, report):
    delays = (0.0, 0.3, 0.5, 0.8, 1.0, 1.3, 1.6, 2.0, 2.5, 3.0)
    result = run_once(
        benchmark,
        lambda: run_forgery_delay(
            main_dataset,
            delays_s=delays,
            rounds=3,
            train_size=20,
            max_clips_per_user=10,
        ),
    )

    lines = [
        "Fig. 17 rejection rate vs forgery processing delay",
        f"{'delay':>7s} {'rejection':>10s}",
    ]
    for delay, rejection in zip(result.delays_s, result.rejection_rate):
        lines.append(f"{delay:7.1f} {rejection:10.3f}")
    lines.append("paper: ~0.80 rejection at 1.3 s delay")
    report("fig17_forgery_delay", lines)

    by_delay = dict(zip(result.delays_s, result.rejection_rate))
    # Shape: a perfect instant forgery mostly passes...
    assert by_delay[0.0] < 0.4
    # ...rejection grows with the delay...
    smooth = np.convolve(result.rejection_rate, [1 / 3] * 3, mode="valid")
    assert (np.diff(smooth) >= -0.12).all()
    # ...crosses high confidence around the paper's 1.3 s mark...
    assert by_delay[1.3] > 0.6
    # ...and a slow forger is hopeless.
    assert by_delay[3.0] > 0.85
