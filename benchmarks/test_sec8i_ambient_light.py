"""Sec. VIII-I — influence of ambient light.

Paper: performance matches the baseline in normal indoor light, but the
single-attempt TAR drops to ~80 % when the illuminance on the face rises
to 240 lux — strong ambient light drowns the screen's reflection.
"""

from repro.experiments.runner import run_ambient_light

from .conftest import run_once


def test_sec8i_ambient_light(benchmark, report):
    result = run_once(
        benchmark, lambda: run_ambient_light(lux_levels=(50.0, 120.0, 240.0))
    )

    lines = [
        "Sec. VIII-I performance vs ambient illuminance on the face",
        f"{'ambient':>10s} {'TAR':>8s} {'TRR':>8s}",
    ]
    for point in result.points:
        lines.append(f"{point.label:>10s} {point.tar_mean:8.3f} {point.trr_mean:8.3f}")
    lines.append("paper: nominal at ~50 lux; TAR ~0.80 at 240 lux on the face")
    report("sec8i_ambient_light", lines)

    by_label = {p.label: p for p in result.points}
    nominal = by_label["50 lux"]
    bright = by_label["240 lux"]

    # Shape: brighter ambient erodes the acceptance rate...
    assert bright.tar_mean < nominal.tar_mean
    # ...but the system stays usable (multi-attempt voting recovers it).
    assert bright.tar_mean > 0.55
    # Rejection is not the bottleneck under strong ambient light.
    assert bright.trr_mean > 0.85
