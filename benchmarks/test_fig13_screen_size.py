"""Fig. 13 / Sec. VIII-E — influence of screen size.

Paper: bigger screens emit more light, so the reflection SNR and the
accuracy rise with screen size; the smallest tested screen still reaches
~85 % TAR; a 6-inch phone only works when the face is ~10 cm from the
screen.
"""

from repro.experiments.profiles import DEFAULT_ENVIRONMENT
from repro.experiments.runner import run_screen_size
from repro.screen.display import PHONE_6_OLED, SCREEN_SIZE_LADDER

from .conftest import run_once


def _screen_configs():
    configs = [
        (f'{spec.diagonal_in:g}"', DEFAULT_ENVIRONMENT.replace(screen=spec))
        for spec in SCREEN_SIZE_LADDER
    ]
    configs.append(('6" phone @0.5m', DEFAULT_ENVIRONMENT.replace(screen=PHONE_6_OLED)))
    configs.append(
        (
            '6" phone @0.1m',
            DEFAULT_ENVIRONMENT.replace(screen=PHONE_6_OLED, viewing_distance_m=0.1),
        )
    )
    return configs


def test_fig13_screen_size(benchmark, report):
    result = run_once(benchmark, lambda: run_screen_size(_screen_configs()))

    lines = [
        "Fig. 13 performance vs screen size",
        f"{'screen':>16s} {'TAR':>8s} {'TRR':>8s}",
    ]
    for point in result.points:
        lines.append(f"{point.label:>16s} {point.tar_mean:8.3f} {point.trr_mean:8.3f}")
    lines.append('paper: monotone in size; smallest ~0.85 TAR; 6" phone only at ~10 cm')
    report("fig13_screen_size", lines)

    by_label = {p.label: p for p in result.points}
    ladder = [by_label[f'{s.diagonal_in:g}"'] for s in SCREEN_SIZE_LADDER]

    # Shape: acceptance degrades monotonically (within noise) as the
    # screen shrinks, and the largest screen clearly beats the smallest.
    tars = [p.tar_mean for p in ladder]
    assert all(b <= a + 0.04 for a, b in zip(tars, tars[1:]))
    assert ladder[0].tar_mean > ladder[-1].tar_mean + 0.1
    # The smallest monitor is degraded but not dead.
    assert ladder[-1].tar_mean > 0.4
    # The phone at arm's length collapses; at 10 cm it recovers to
    # near-monitor performance (the paper's observation).
    phone_far = by_label['6" phone @0.5m']
    phone_near = by_label['6" phone @0.1m']
    assert phone_far.tar_mean < ladder[0].tar_mean - 0.2
    assert phone_near.tar_mean > phone_far.tar_mean + 0.2
    assert phone_near.tar_mean > 0.75
    # Security never degrades in this protocol: attacks stay outliers
    # relative to the nominal enrollment bank.
    assert all(p.trr_mean > 0.9 for p in result.points)
