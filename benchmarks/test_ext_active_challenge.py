"""Extension bench — active challenge scheduling + diagnostics.

Not a paper figure: quantifies the two deployment extensions DESIGN.md
adds on top of the paper.

* Without challenges, the paper's always-answer pipeline *rejects* a
  legitimate user (their video proved nothing); the diagnostics layer
  answers *inconclusive* instead.
* The challenge scheduler guarantees every clip carries at least the
  required number of challenges, making the inconclusive case
  unreachable for a cooperating verifier.
"""

import numpy as np

from repro.core.challenge import ChallengeScheduler, challenge_quality
from repro.core.config import DetectorConfig
from repro.experiments.dataset import GENUINE

from .conftest import run_once


def test_ext_challenge_coverage(benchmark, main_dataset, report):
    """Measure how often passive (user-driven) challenges under-supply a
    clip, and that the scheduler's guarantee holds."""
    config = DetectorConfig()

    def experiment():
        # Passive coverage across the main dataset's genuine clips.
        insufficient = 0
        clips = main_dataset.select(role=GENUINE)
        for clip in clips:
            quality = challenge_quality(
                clip.transmitted_luminance, config, min_challenges=2
            )
            if not quality.sufficient:
                insufficient += 1
        passive_insufficient = insufficient / len(clips)

        # Scheduler guarantee over many simulated windows.
        violations = 0
        trials = 200
        rng = np.random.default_rng(0)
        for trial in range(trials):
            scheduler = ChallengeScheduler(config, min_challenges=2, min_gap_s=4.5)
            issued = []
            # The user also touches at random (the scheduler must cope).
            user_touches = rng.uniform(0, 15, size=rng.integers(0, 3))
            for tick in range(150):
                t = tick * 0.1
                for touch in user_touches:
                    if abs(touch - t) < 0.05:
                        scheduler.note_challenge(t)
                        issued.append(t)
                if scheduler.tick(t):
                    issued.append(t)
            if len(issued) < 2:
                violations += 1
        return passive_insufficient, violations / trials

    passive_insufficient, scheduler_violations = run_once(benchmark, experiment)
    report(
        "ext_active_challenge",
        [
            "Extension: challenge coverage, passive vs scheduled",
            f"passive clips with < 2 challenges : {passive_insufficient:6.3f}",
            f"scheduler windows with < 2        : {scheduler_violations:6.3f}",
        ],
    )
    # The scheduler never under-delivers.
    assert scheduler_violations == 0.0
    # And passive behaviour does leave a gap for it to close.
    assert passive_insufficient >= 0.0
