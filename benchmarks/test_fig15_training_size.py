"""Fig. 15 — influence of the number of training instances.

Paper (one volunteer): 8 training instances already give TAR 92.25 % and
TRR 91 %; raising to 20 nudges them to 94.75 %/95.75 % and cuts the
standard deviations by up to 8.8 % — i.e. the system launches cheaply and
stabilizes with more data.
"""

from repro.experiments.runner import run_training_size

from .conftest import run_once


def test_fig15_training_size(benchmark, main_dataset, report):
    result = run_once(
        benchmark,
        lambda: run_training_size(
            main_dataset, sizes=(4, 8, 12, 16, 20), rounds=20
        ),
    )

    lines = [
        "Fig. 15 accuracy vs training-set size (one volunteer)",
        f"{'n':>3s} {'TAR':>8s} {'+-':>6s} {'TRR':>8s} {'+-':>6s}",
    ]
    for i, n in enumerate(result.sizes):
        lines.append(
            f"{n:3d} {result.tar_mean[i]:8.3f} {result.tar_std[i]:6.3f} "
            f"{result.trr_mean[i]:8.3f} {result.trr_std[i]:6.3f}"
        )
    lines.append("paper: n=8 -> 0.9225/0.91; n=20 -> 0.9475/0.9575; stds shrink")
    report("fig15_training_size", lines)

    sizes = list(result.sizes)
    i8 = sizes.index(8)
    i20 = sizes.index(20)
    # 8 instances are already serviceable...
    assert result.tar_mean[i8] > 0.7
    assert result.trr_mean[i8] > 0.7
    # ...20 instances at least as good on rejection...
    assert result.trr_mean[i20] >= result.trr_mean[i8] - 0.03
    # ...and the variability shrinks with more data.
    assert result.tar_std[i20] <= result.tar_std[i8] + 0.02
    assert result.trr_std[i20] <= result.trr_std[i8] + 0.02
