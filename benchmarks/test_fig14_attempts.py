"""Fig. 14 — influence of the number of detection attempts.

Paper: majority voting over D attempts raises both TAR and TRR and
shrinks their variance, whether the classifier was trained on own or
other users' data (the voting rule needs rejects > 0.7 D, so TRR can dip
slightly at D = 2-3 before recovering).
"""

from repro.experiments.runner import run_attempts

from .conftest import run_once


def test_fig14_attempts(benchmark, main_dataset, report):
    result = run_once(
        benchmark,
        lambda: run_attempts(
            main_dataset,
            attempts=(1, 2, 3, 4, 5, 6, 7),
            rounds=10,
            trials_per_round=10,
            train_size=20,
        ),
    )

    lines = [
        "Fig. 14 accuracy vs number of voting attempts D",
        f"{'D':>3s} {'TAR(own)':>10s} {'+-':>6s} {'TAR(other)':>11s} {'TRR':>8s} {'+-':>6s}",
    ]
    for i, d in enumerate(result.attempts):
        lines.append(
            f"{d:3d} {result.tar_own_mean[i]:10.3f} {result.tar_own_std[i]:6.3f} "
            f"{result.tar_other_mean[i]:11.3f} {result.trr_mean[i]:8.3f} {result.trr_std[i]:6.3f}"
        )
    report("fig14_attempts", lines)

    first, last = 0, len(result.attempts) - 1
    # Voting improves acceptance of legitimate users...
    assert result.tar_own_mean[last] >= result.tar_own_mean[first]
    assert result.tar_other_mean[last] >= result.tar_other_mean[first]
    # ...keeps rejection strong...
    assert result.trr_mean[last] >= 0.9
    # ...and shrinks the decision variance (the robustness claim).
    assert result.tar_own_std[last] <= result.tar_own_std[first] + 0.01
    # Many-attempt voting should be near-perfect on both sides.
    assert result.tar_own_mean[last] > 0.95
