"""Fig. 6 — spectrum of the face-reflection luminance signal.

Paper: broadband high-frequency noise across the whole band, while
screen-driven luminance changes live below 1 Hz — the justification for
the 1 Hz low-pass stage.  We compare the spectra of received-signal clips
with and without screen-light challenges.
"""

import numpy as np

from repro.core.luminance import received_luminance_signal, transmitted_luminance_signal
from repro.experiments.profiles import DEFAULT_ENVIRONMENT
from repro.experiments.simulate import simulate_genuine_session

from .conftest import run_once


def _band_energy(signal: np.ndarray, fs: float, lo: float, hi: float) -> float:
    spectrum = np.abs(np.fft.rfft(signal - signal.mean())) ** 2
    freqs = np.fft.rfftfreq(signal.size, d=1.0 / fs)
    mask = (freqs >= lo) & (freqs < hi)
    return float(spectrum[mask].sum())


def test_fig06_spectrum(benchmark, report):
    def experiment():
        # With challenges: the normal verifier behaviour.
        record = simulate_genuine_session(duration_s=30.0, seed=600)
        r_with = received_luminance_signal(record.received).luminance
        t_lum = transmitted_luminance_signal(record.transmitted)

        # Without challenges: quiet verifier (no metering touches) -> the
        # received signal is noise only.  Reuse the session but take a
        # window where the transmitted signal is flat.
        flat_windows = []
        for start in range(0, t_lum.size - 80, 10):
            window = t_lum[start : start + 80]
            if window.max() - window.min() < 4.0:
                flat_windows.append(r_with[start : start + 80])
        quiet = flat_windows[0] if flat_windows else r_with[:80]
        return r_with, quiet

    r_with, quiet = run_once(benchmark, experiment)
    fs = DEFAULT_ENVIRONMENT.fps

    low_with = _band_energy(r_with, fs, 0.0, 1.0)
    high_with = _band_energy(r_with, fs, 1.0, 5.0)
    low_quiet = _band_energy(quiet, fs, 0.0, 1.0)
    high_quiet = _band_energy(quiet, fs, 1.0, 5.0)

    report(
        "fig06_spectrum",
        [
            "Fig. 6 spectrum of face-reflection luminance (energy, a.u.)",
            f"with screen changes    : <1 Hz {low_with:10.1f}   1-5 Hz {high_with:10.1f}",
            f"without screen changes : <1 Hz {low_quiet:10.1f}   1-5 Hz {high_quiet:10.1f}",
            f"low/high ratio with    : {low_with / max(high_with, 1e-9):10.1f}",
            f"low/high ratio without : {low_quiet / max(high_quiet, 1e-9):10.1f}",
        ],
    )
    # Shape: challenges concentrate energy below the 1 Hz cut-off.
    assert low_with > 10 * high_with
    assert low_with > 5 * low_quiet
