"""Engine scaling: jobs=4 must match serial bit-for-bit, and beat it.

This is the fast deterministic benchmark (``-m smoke``): it builds a
synthetic feature bank in seconds instead of simulating the full
dataset, runs the headline experiments through ``ExecutionEngine`` at
jobs=1 and jobs=4 with cold caches, and asserts

* numerical identity — parallel == serial == no engine at all, exactly;
* speedup — >= 2x with four workers, asserted only on machines with at
  least four cores (on smaller hosts the ratio is reported, not
  enforced: a process pool cannot beat serial without the hardware).
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.features import extract_features
from repro.engine import ExecutionEngine
from repro.experiments.dataset import ATTACK, GENUINE, ClipInstance, FeatureDataset
from repro.experiments.runner import run_overall, run_threshold_sweep

from .conftest import run_once

ROUNDS = 8
TRAIN_SIZE = 15


def _smoke_dataset(users=8, genuine=26, attack=12):
    """Synthetic bank whose features are real extractions of its signals."""
    rng = np.random.default_rng(7)
    config = DetectorConfig()
    instances = []
    for u in range(users):
        name = f"user_{u}"
        for role, count in ((GENUINE, genuine), (ATTACK, attack)):
            for i in range(count):
                t = np.full(150, 180.0)
                a = int(rng.integers(30, 60))
                t[a:] -= 50.0
                t[a + int(rng.integers(45, 60)) :] += 40.0
                if role == GENUINE:
                    delayed = np.concatenate([np.full(4, t[0]), t[:-4]])
                    r = 120.0 + 0.3 * delayed + rng.normal(0, 0.3, 150)
                else:
                    r = 120.0 + rng.normal(0, 2.0, 150)
                features = extract_features(t, r, config).features
                instances.append(ClipInstance(name, role, i, features, t, r))
    return FeatureDataset(instances)


def _run_experiments(dataset, engine):
    overall = run_overall(dataset, rounds=ROUNDS, train_size=TRAIN_SIZE, engine=engine)
    sweep = run_threshold_sweep(
        dataset, rounds=ROUNDS, train_size=TRAIN_SIZE, engine=engine
    )
    return overall, sweep


@pytest.mark.smoke
def test_engine_scaling(report, benchmark):
    dataset = _smoke_dataset()

    # Ground truth: the engine-less serial protocol.
    plain = _run_experiments(dataset, engine=None)

    t0 = time.perf_counter()
    with ExecutionEngine(jobs=1) as engine:
        serial = _run_experiments(dataset, engine)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        t0 = time.perf_counter()
        with ExecutionEngine(jobs=4) as engine:
            results = _run_experiments(dataset, engine)
        return results, time.perf_counter() - t0

    parallel, parallel_s = run_once(benchmark, parallel_run)

    # Bit-identical at every job count — and with no engine at all.
    assert serial[0] == plain[0] == parallel[0]
    for a, b in ((serial[1], plain[1]), (serial[1], parallel[1])):
        assert np.array_equal(a.far, b.far)
        assert np.array_equal(a.frr, b.frr)
        assert a.eer == b.eer

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    report(
        "engine_scaling",
        [
            "Engine scaling (run_overall + run_threshold_sweep, cold caches)",
            f"cores={cores}",
            f"jobs=1: {serial_s:.2f}s",
            f"jobs=4: {parallel_s:.2f}s",
            f"speedup: {speedup:.2f}x",
            "results: bit-identical across jobs=1 / jobs=4 / engine-less",
        ],
    )
    if cores >= 4:
        assert speedup >= 2.0, f"expected >=2x with 4 workers, got {speedup:.2f}x"
