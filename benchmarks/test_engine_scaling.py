"""Engine scaling: jobs=4 must match serial bit-for-bit, and beat it.

This is the fast deterministic benchmark (``-m smoke``): it builds a
synthetic feature bank in seconds instead of simulating the full
dataset, runs the headline experiments through ``ExecutionEngine`` at
jobs=1 and jobs=4 with cold caches, and asserts

* numerical identity — parallel == serial == no engine at all, exactly;
* speedup — >= 2x with four workers, asserted only on machines with at
  least four cores (on smaller hosts the ratio is reported, not
  enforced: a process pool cannot beat serial without the hardware).
"""

import json
import os
import pathlib
import statistics
import time

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.features import extract_features, extract_features_batch
from repro.engine import ExecutionEngine
from repro.experiments.dataset import ATTACK, GENUINE, ClipInstance, FeatureDataset
from repro.experiments.runner import run_overall, run_threshold_sweep
from repro.obs import Instrumentation, JsonlTraceSink, Tracer, read_trace

from .conftest import run_once

ROUNDS = 8
TRAIN_SIZE = 15

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "engine_baseline.json"

#: Clip count for the batch-core throughput benchmark and the number of
#: equal sub-batches the instrumented jobs=1 pass is split into (each
#: sub-batch emits one ``engine.features`` span for the p50/p99 stats).
BENCH_CLIPS = 240
BENCH_SUBBATCHES = 8


def _smoke_dataset(users=8, genuine=26, attack=12):
    """Synthetic bank whose features are real extractions of its signals."""
    rng = np.random.default_rng(7)
    config = DetectorConfig()
    instances = []
    for u in range(users):
        name = f"user_{u}"
        for role, count in ((GENUINE, genuine), (ATTACK, attack)):
            for i in range(count):
                t = np.full(150, 180.0)
                a = int(rng.integers(30, 60))
                t[a:] -= 50.0
                t[a + int(rng.integers(45, 60)) :] += 40.0
                if role == GENUINE:
                    delayed = np.concatenate([np.full(4, t[0]), t[:-4]])
                    r = 120.0 + 0.3 * delayed + rng.normal(0, 0.3, 150)
                else:
                    r = 120.0 + rng.normal(0, 2.0, 150)
                features = extract_features(t, r, config).features
                instances.append(ClipInstance(name, role, i, features, t, r))
    return FeatureDataset(instances)


def _run_experiments(dataset, engine):
    overall = run_overall(dataset, rounds=ROUNDS, train_size=TRAIN_SIZE, engine=engine)
    sweep = run_threshold_sweep(
        dataset, rounds=ROUNDS, train_size=TRAIN_SIZE, engine=engine
    )
    return overall, sweep


@pytest.mark.smoke
def test_engine_scaling(report, benchmark):
    dataset = _smoke_dataset()

    # Ground truth: the engine-less serial protocol.
    plain = _run_experiments(dataset, engine=None)

    t0 = time.perf_counter()
    with ExecutionEngine(jobs=1) as engine:
        serial = _run_experiments(dataset, engine)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        t0 = time.perf_counter()
        with ExecutionEngine(jobs=4) as engine:
            results = _run_experiments(dataset, engine)
        return results, time.perf_counter() - t0

    parallel, parallel_s = run_once(benchmark, parallel_run)

    # Bit-identical at every job count — and with no engine at all.
    assert serial[0] == plain[0] == parallel[0]
    for a, b in ((serial[1], plain[1]), (serial[1], parallel[1])):
        assert np.array_equal(a.far, b.far)
        assert np.array_equal(a.frr, b.frr)
        assert a.eer == b.eer

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    report(
        "engine_scaling",
        [
            "Engine scaling (run_overall + run_threshold_sweep, cold caches)",
            f"cores={cores}",
            f"jobs=1: {serial_s:.2f}s",
            f"jobs=4: {parallel_s:.2f}s",
            f"speedup: {speedup:.2f}x",
            "results: bit-identical across jobs=1 / jobs=4 / engine-less",
        ],
    )
    if cores >= 4:
        assert speedup >= 2.0, f"expected >=2x with 4 workers, got {speedup:.2f}x"


def _bench_pairs(count):
    """Ragged synthetic luminance pairs with a genuine-looking response."""
    rng = np.random.default_rng(19)
    pairs = []
    for _ in range(count):
        length = int(rng.integers(120, 180))
        t = np.full(length, 180.0)
        a = int(rng.integers(20, 50))
        t[a:] -= 50.0
        delayed = np.concatenate([np.full(4, t[0]), t[:-4]])
        r = 120.0 + 0.3 * delayed + rng.normal(0, 0.3, length)
        pairs.append((t, r))
    return pairs


def _percentile(values, q):
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = max(1, int(np.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


@pytest.mark.smoke
def test_batch_engine_throughput(report, benchmark, tmp_path):
    """Batch-core throughput gate: the jobs=4 shared-memory engine must
    beat the legacy per-clip extraction loop by the checked-in baseline
    factor, with bit-identical features, and ``BENCH_engine.json`` must
    record the run.

    ``serial`` here means the historical granularity — one batch-of-1
    extraction per clip, no engine.  On hosts with fewer than four cores
    the speedup comes from structure-of-arrays batching, not from the
    pool; the JSON records the core count so readers can tell.
    """
    pairs = _bench_pairs(BENCH_CLIPS)
    config = DetectorConfig()

    # Legacy granularity: one batch-of-1 call per clip, no engine.
    t0 = time.perf_counter()
    serial = [extract_features_batch([pair], config)[0].features for pair in pairs]
    per_clip_serial_s = time.perf_counter() - t0

    # Instrumented jobs=1 pass over sub-batches: one engine.features span
    # per sub-batch lands in the JSONL trace for the latency percentiles.
    trace_path = str(tmp_path / "engine_bench_trace.jsonl")
    sink = JsonlTraceSink(trace_path)
    instr = Instrumentation(registry=None, tracer=Tracer(sink=sink))
    step = BENCH_CLIPS // BENCH_SUBBATCHES
    t0 = time.perf_counter()
    with ExecutionEngine(jobs=1, instrumentation=instr) as engine:
        jobs1 = []
        for lo in range(0, BENCH_CLIPS, step):
            jobs1.extend(engine.extract_features_batch(pairs[lo : lo + step], config))
    engine_jobs1_s = time.perf_counter() - t0
    sink.close()

    # The headline configuration: one call, shared-memory pool, 4 workers.
    def jobs4_run():
        t0 = time.perf_counter()
        with ExecutionEngine(jobs=4) as engine:
            results = engine.extract_features_batch(pairs, config)
        return results, time.perf_counter() - t0

    jobs4, engine_jobs4_s = run_once(benchmark, jobs4_run)

    assert jobs1 == serial == jobs4  # pool == serial == per-clip, bitwise

    stage_spans = [
        record["duration_s"]
        for record in read_trace(trace_path)
        if record["name"] == "engine.features"
    ]
    assert len(stage_spans) == BENCH_SUBBATCHES

    baseline = json.loads(BASELINE_PATH.read_text())
    speedup = per_clip_serial_s / engine_jobs4_s if engine_jobs4_s > 0 else float("inf")
    payload = {
        "schema": "bench-engine-v1",
        "clips": BENCH_CLIPS,
        "cores": os.cpu_count() or 1,
        "per_clip_serial_s": round(per_clip_serial_s, 4),
        "engine_jobs1_s": round(engine_jobs1_s, 4),
        "engine_jobs4_s": round(engine_jobs4_s, 4),
        "tasks_per_s_jobs4": round(BENCH_CLIPS / engine_jobs4_s, 2),
        "stage_latency_p50_s": round(_percentile(stage_spans, 50), 4),
        "stage_latency_p99_s": round(_percentile(stage_spans, 99), 4),
        "stage_latency_spans": BENCH_SUBBATCHES,
        "speedup_jobs4_vs_serial": round(speedup, 2),
        "pool_equals_serial": True,
        "note": (
            "serial = legacy per-clip extraction loop (batch-of-1, no "
            "engine); jobs=4 = one structure-of-arrays batch over the "
            "shared-memory pool; stage latency percentiles are over the "
            f"{BENCH_SUBBATCHES} instrumented jobs=1 sub-batch spans"
        ),
    }
    (REPO_ROOT / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report(
        "engine_batch_throughput",
        [
            "Batch-core throughput (per-clip loop vs shared-memory engine)",
            f"clips={BENCH_CLIPS}  cores={payload['cores']}",
            f"per-clip serial: {per_clip_serial_s:.2f}s",
            f"engine jobs=1: {engine_jobs1_s:.2f}s",
            f"engine jobs=4: {engine_jobs4_s:.2f}s",
            f"tasks/sec at jobs=4: {payload['tasks_per_s_jobs4']}",
            f"stage latency p50/p99: {payload['stage_latency_p50_s']}s / "
            f"{payload['stage_latency_p99_s']}s",
            f"speedup jobs=4 vs per-clip serial: {speedup:.2f}x",
            "features: bit-identical across per-clip / jobs=1 / jobs=4",
        ],
    )
    floor = baseline["min_speedup_jobs4_vs_serial"]
    assert speedup >= floor, (
        f"jobs=4 speedup regressed: {speedup:.2f}x < baseline {floor}x"
    )
