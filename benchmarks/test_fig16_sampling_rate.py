"""Fig. 16 / Sec. VIII-H — influence of the sampling rate.

Paper (one volunteer): 10 Hz and 8 Hz both give >= 95 % mean accuracy;
at 5 Hz the TAR degrades mildly (~86 %) while the TRR *collapses* (~48 %)
— the filter windows are fixed in samples, so at 5 Hz the smoothing
spans twice the time and the matching/trend evidence blurs away, letting
attackers through.  8 Hz is the lowest viable rate.
"""

from repro.experiments.runner import run_sampling_rate

from .conftest import run_once


def test_fig16_sampling_rate(benchmark, report):
    result = run_once(benchmark, lambda: run_sampling_rate(rates_hz=(5.0, 8.0, 10.0)))

    lines = [
        "Fig. 16 performance vs sampling rate (one volunteer)",
        f"{'rate':>8s} {'TAR':>8s} {'TRR':>8s}",
    ]
    for point in result.points:
        lines.append(f"{point.label:>8s} {point.tar_mean:8.3f} {point.trr_mean:8.3f}")
    lines.append("paper: 10/8 Hz >= 0.95 both; 5 Hz -> TAR ~0.86, TRR ~0.48")
    report("fig16_sampling_rate", lines)

    by_label = {p.label: p for p in result.points}
    hz10 = by_label["10 Hz"]
    hz8 = by_label["8 Hz"]
    hz5 = by_label["5 Hz"]

    # Shape: 8 Hz holds up close to 10 Hz...
    assert hz8.tar_mean > hz10.tar_mean - 0.15
    assert hz8.trr_mean > 0.85
    # ...while 5 Hz loses security much faster than usability (the
    # paper's key observation: TRR collapses first).
    assert hz5.trr_mean < hz8.trr_mean - 0.2
    assert (hz8.trr_mean - hz5.trr_mean) > (hz8.tar_mean - hz5.tar_mean)
