"""Live adaptive-attacker sweep — the end-to-end companion to Fig. 17.

Fig. 17 follows the paper's signal-shifting method; this bench runs the
*actual* adaptive attacker (screen observation -> reflection synthesis ->
reenactment output) through full chat sessions at several processing
delays and verifies the same conclusion holds end to end.
"""

import numpy as np

from repro.core.pipeline import ChatVerifier
from repro.experiments.profiles import Environment
from repro.experiments.simulate import (
    simulate_adaptive_attack_session,
    simulate_genuine_session,
)

from .conftest import run_once

ENV = Environment(frame_size=(80, 80), verifier_frame_size=(48, 48))
DELAYS = (0.0, 0.8, 1.6, 2.4)
SESSIONS_PER_DELAY = 6


def test_adaptive_attacker_live(benchmark, report):
    def experiment():
        verifier = ChatVerifier()
        verifier.enroll(
            [
                simulate_genuine_session(duration_s=15.0, seed=4000 + s, env=ENV)
                for s in range(12)
            ]
        )
        rates = {}
        for delay in DELAYS:
            rejected = 0
            for s in range(SESSIONS_PER_DELAY):
                record = simulate_adaptive_attack_session(
                    processing_delay_s=delay,
                    duration_s=15.0,
                    seed=4100 + s,
                    env=ENV,
                )
                if verifier.verify_session(record).is_attacker:
                    rejected += 1
            rates[delay] = rejected / SESSIONS_PER_DELAY
        return rates

    rates = run_once(benchmark, experiment)
    report(
        "adaptive_attacker_live",
        [
            "Live adaptive attacker: rejection rate vs processing delay",
            *(f"delay {delay:4.1f} s : {rate:5.2f}" for delay, rate in rates.items()),
            "expected: grows with delay, matching the Fig. 17 shifted-signal result",
        ],
    )
    # A slow reflection forger is caught; an instant one mostly passes.
    assert rates[2.4] >= rates[0.0]
    assert rates[2.4] >= 0.5
    assert rates[0.0] <= 0.5
