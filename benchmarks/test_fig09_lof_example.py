"""Fig. 9 — LOF classification example.

Paper: on the (z1, z2) plane, legitimate users' LOF values stay below
~1.5 while the attacker's reaches ~2+; a threshold separates them.  We
regenerate the example with real feature vectors from the main dataset.
"""

import numpy as np

from repro.core.lof import LocalOutlierFactor
from repro.experiments.dataset import ATTACK, GENUINE

from .conftest import run_once


def test_fig09_lof_example(benchmark, main_dataset, report):
    def experiment():
        user = main_dataset.users[0]
        genuine = main_dataset.features_of(user, GENUINE)[:, :2]  # (z1, z2)
        attacks = main_dataset.features_of(user, ATTACK)[:, :2]
        model = LocalOutlierFactor(5).fit(genuine[:20])
        genuine_scores = model.score_samples(genuine[20:])
        attack_scores = model.score_samples(attacks[:10])
        return genuine_scores, attack_scores

    genuine_scores, attack_scores = run_once(benchmark, experiment)
    finite_attack = attack_scores[np.isfinite(attack_scores)]
    attack_summary = (
        f"{np.median(finite_attack):.2f}" if finite_attack.size else "inf"
    )
    report(
        "fig09_lof_example",
        [
            "Fig. 9 LOF example on the (z1, z2) plane",
            f"legitimate LOF median : {np.median(genuine_scores):6.2f} (paper: < 1.5)",
            f"legitimate LOF P90    : {np.quantile(genuine_scores, 0.9):6.2f}",
            f"attacker LOF median   : {attack_summary} (paper: ~2+)",
            f"attackers above tau=3 : {int((attack_scores > 3).sum())}/{attack_scores.size}",
        ],
    )
    assert np.median(genuine_scores) < 1.5
    assert (attack_scores > 3.0).mean() >= 0.7
