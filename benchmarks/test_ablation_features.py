"""Ablation — what each feature dimension contributes.

Not a paper figure, but the paper's design argument (Sec. VI) is that
*behaviour* features (z1, z2) and *trend* features (z3, z4) catch
different attackers: behaviour-only can be beaten by luck in change
timing, trend-only by shape-free coincidence.  Dropping each group
quantifies the claim on the main dataset.
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.lof import LocalOutlierFactor
from repro.experiments.dataset import ATTACK, GENUINE

from .conftest import run_once

FEATURE_SETS = {
    "all (z1..z4)": [0, 1, 2, 3],
    "behaviour only (z1,z2)": [0, 1],
    "trend only (z3,z4)": [2, 3],
    "drop z1": [1, 2, 3],
    "drop z2": [0, 2, 3],
    "drop z3": [0, 1, 3],
    "drop z4": [0, 1, 2],
}


def _evaluate(dataset, columns, rounds=8, train_size=20, tau=3.0):
    rng = np.random.default_rng(42)
    tars, trrs = [], []
    for user in dataset.users:
        genuine = dataset.features_of(user, GENUINE)[:, columns]
        attacks = dataset.features_of(user, ATTACK)[:, columns]
        for _ in range(rounds):
            perm = rng.permutation(genuine.shape[0])
            model = LocalOutlierFactor(DetectorConfig().lof_neighbors)
            model.fit(genuine[perm[:train_size]])
            tars.append((model.score_samples(genuine[perm[train_size:]]) <= tau).mean())
            trrs.append((model.score_samples(attacks) > tau).mean())
    return float(np.mean(tars)), float(np.mean(trrs))


def test_ablation_features(benchmark, main_dataset, report):
    def experiment():
        return {
            name: _evaluate(main_dataset, cols) for name, cols in FEATURE_SETS.items()
        }

    results = run_once(benchmark, experiment)

    lines = [
        "Ablation: feature-set contribution (tau=3, 20 train, 8 rounds)",
        f"{'feature set':>26s} {'TAR':>8s} {'TRR':>8s}",
    ]
    for name, (tar, trr) in results.items():
        lines.append(f"{name:>26s} {tar:8.3f} {trr:8.3f}")
    report("ablation_features", lines)

    full_tar, full_trr = results["all (z1..z4)"]
    _, behaviour_trr = results["behaviour only (z1,z2)"]
    _, trend_trr = results["trend only (z3,z4)"]

    # The full set must dominate (or match) each half on rejection.
    assert full_trr >= behaviour_trr - 0.02
    assert full_trr >= trend_trr - 0.02
    # Behaviour-only is the weaker rejector: timing can coincide by luck.
    assert behaviour_trr < full_trr + 1e-9
    assert full_trr > 0.9
