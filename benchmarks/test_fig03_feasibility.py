"""Fig. 3 — feasibility study.

Paper: a video flashing black/white at 0.2 Hz on a Dell 27" LED monitor;
the volunteer's nasal-bridge luminance rises from ~105 (black) to ~132
(white).  We reproduce the exact protocol: render the prover under the
screen illuminance each extreme induces and read the nasal ROI luminance
through the real landmark-detection path.
"""

import numpy as np

from repro.camera.camera import Camera
from repro.camera.exposure import AutoExposureController
from repro.camera.metering import LightMeter, MeteringMode
from repro.camera.sensor import ImageSensor
from repro.core.luminance import roi_mean_luminance
from repro.core.roi import nasal_bridge_roi
from repro.screen.display import DELL_27_LED
from repro.screen.illumination import screen_illuminance
from repro.vision.expression import ExpressionTrack
from repro.vision.face_model import make_face
from repro.vision.landmarks import LandmarkDetector
from repro.vision.renderer import FaceRenderer

from .conftest import run_once

AMBIENT_LUX = 50.0
DISTANCE_M = 0.5


def _nasal_luminance_under(display_pixel: float) -> float:
    """Mean nasal-ROI luminance while the screen shows a uniform level."""
    face = make_face("volunteer", tone="light", rng=np.random.default_rng(1))
    renderer = FaceRenderer(face, height=96, width=96, seed=2)
    track = ExpressionTrack(seed=3, movement_amplitude=0.01)
    camera = Camera(
        sensor=ImageSensor(rng=np.random.default_rng(4)),
        meter=LightMeter(mode=MeteringMode.MULTI_ZONE),
        auto_exposure=AutoExposureController(target_level=0.22),
    )
    detector = LandmarkDetector(seed=5)

    nits = DELL_27_LED.emitted_luminance(display_pixel)
    screen_lux = screen_illuminance(nits, DELL_27_LED.area_m2, DISTANCE_M)

    # Converge + lock exposure on mid-gray first (as the phone would be).
    mid_nits = DELL_27_LED.emitted_luminance(128.0)
    mid_lux = screen_illuminance(mid_nits, DELL_27_LED.area_m2, DISTANCE_M)
    for i in range(15):
        result = renderer.render(
            track.sample(i * 0.1),
            face_illuminance_lux=AMBIENT_LUX + mid_lux,
            ambient_lux=AMBIENT_LUX,
            screen_lux=mid_lux,
        )
        camera.capture(result.radiance, timestamp=i * 0.1)
    camera.auto_exposure.lock()

    values = []
    for i in range(15, 45):
        t = i * 0.1
        result = renderer.render(
            track.sample(t),
            face_illuminance_lux=AMBIENT_LUX + screen_lux,
            ambient_lux=AMBIENT_LUX,
            screen_lux=screen_lux,
        )
        frame = camera.capture(result.radiance, timestamp=t)
        landmarks = detector.detect(frame.pixels)
        assert landmarks is not None
        values.append(roi_mean_luminance(frame, nasal_bridge_roi(landmarks)))
    return float(np.mean(values))


def test_fig03_feasibility(benchmark, report):
    def experiment():
        return _nasal_luminance_under(0.0), _nasal_luminance_under(255.0)

    black, white = run_once(benchmark, experiment)
    report(
        "fig03_feasibility",
        [
            "Fig. 3 feasibility: nasal-bridge luminance vs screen color",
            f"screen black : {black:7.1f}   (paper: ~105)",
            f"screen white : {white:7.1f}   (paper: ~132)",
            f"delta        : {white - black:7.1f}   (paper: ~27)",
        ],
    )
    # Shape: white clearly brighter, by tens of 8-bit levels, no clipping.
    assert white > black + 10.0
    assert white < 250.0
    assert black > 40.0
