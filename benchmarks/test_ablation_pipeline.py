"""Ablation — contribution of the preprocessing stages and delay removal.

DESIGN.md calls out two design choices worth ablating:

* skipping the RMS + Savitzky-Golay smoothing splits one luminance
  change into several variance peaks, wrecking the matched-change counts;
* skipping delay removal lets ordinary network latency deflate the trend
  correlation of *legitimate* clips.
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.delay import align_signals
from repro.core.features import (
    extract_features,
    normalize_unit,
    pearson_correlation,
    split_segments,
)
from repro.core.peaks import find_peaks
from repro.core.preprocessing import (
    lowpass_filter,
    moving_variance,
    preprocess,
    threshold_filter,
)
from repro.experiments.dataset import GENUINE

from .conftest import run_once


def _peaks_without_smoothing(raw, config, prominence):
    """The chain cut short after the threshold filter."""
    lowpassed = lowpass_filter(
        raw, config.sample_rate_hz, config.lowpass_cutoff_hz, config.lowpass_taps
    )
    variance = moving_variance(lowpassed, config.variance_window)
    thresholded = threshold_filter(variance, config.variance_threshold)
    return find_peaks(thresholded, prominence)


def test_ablation_smoothing_prevents_peak_splitting(benchmark, main_dataset, report):
    config = DetectorConfig()
    clips = main_dataset.select(role=GENUINE)[:60]

    def experiment():
        split_counts = []
        full_counts = []
        for clip in clips:
            full = preprocess(clip.received_luminance, config, config.peak_prominence_face)
            cut = _peaks_without_smoothing(
                clip.received_luminance, config, config.peak_prominence_face
            )
            full_counts.append(full.change_count)
            split_counts.append(len(cut))
        return float(np.mean(full_counts)), float(np.mean(split_counts))

    full_mean, cut_mean = run_once(benchmark, experiment)
    report(
        "ablation_smoothing",
        [
            "Ablation: peak counts with vs without RMS+SavGol+MA smoothing",
            f"full chain mean face peaks/clip : {full_mean:6.2f}",
            f"no smoothing mean peaks/clip    : {cut_mean:6.2f}",
            "expected: the raw variance fragments each change into several peaks",
        ],
    )
    # Without grouping, changes fragment into extra peaks (the threshold
    # filter alone absorbs some of the damage, so the inflation is
    # modest in clean conditions but systematic).
    assert cut_mean > 1.15 * full_mean


def test_ablation_delay_removal_saves_legitimate_trends(benchmark, main_dataset, report):
    config = DetectorConfig()
    clips = main_dataset.select(role=GENUINE)[:60]

    def experiment():
        with_removal = []
        without_removal = []
        for clip in clips:
            fx = extract_features(clip.transmitted_luminance, clip.received_luminance, config)
            with_removal.append(fx.features.z3)
            # Recompute z3 with the delay forced to zero.
            t_norm = normalize_unit(fx.transmitted.smoothed)
            r_norm = normalize_unit(fx.received.smoothed)
            t_aligned, r_aligned = align_signals(t_norm, r_norm, 0.0, config.sample_rate_hz)
            correlations = [
                pearson_correlation(a, b)
                for a, b in zip(
                    split_segments(t_aligned, config.segment_count),
                    split_segments(r_aligned, config.segment_count),
                )
            ]
            without_removal.append(min(correlations))
        return float(np.mean(with_removal)), float(np.mean(without_removal))

    aligned_z3, unaligned_z3 = run_once(benchmark, experiment)
    report(
        "ablation_delay_removal",
        [
            "Ablation: mean legitimate z3 with vs without delay removal",
            f"with delay removal    : {aligned_z3:6.3f}",
            f"without delay removal : {unaligned_z3:6.3f}",
        ],
    )
    assert aligned_z3 >= unaligned_z3 - 1e-6
