"""Network substrate: packets, channels, jitter buffers, media links."""

from .channel import ChannelStats, DeliveredPacket, NetworkChannel
from .jitterbuffer import JitterBuffer, PlayoutStats
from .link import MediaLink
from .packet import Packet, Packetizer

__all__ = [
    "ChannelStats",
    "DeliveredPacket",
    "NetworkChannel",
    "JitterBuffer",
    "PlayoutStats",
    "MediaLink",
    "Packet",
    "Packetizer",
]
