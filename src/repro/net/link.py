"""A one-way media link: codec -> packetizer -> channel -> jitter buffer.

Bundles the four network-path stages into the object the chat session
wires between two endpoints.  ``send`` pushes a frame in at time ``t``;
``receive`` pulls the newest displayable frame out at time ``now`` (or
``None`` while nothing new is due — the consumer then freezes the last
frame, as video chat software does).
"""

from __future__ import annotations

from ..video.codec import VideoCodec
from ..video.frame import Frame
from .channel import NetworkChannel
from .jitterbuffer import JitterBuffer
from .packet import Packetizer

__all__ = ["MediaLink"]


class MediaLink:
    """One direction of the video-chat media path."""

    def __init__(
        self,
        codec: VideoCodec | None = None,
        packetizer: Packetizer | None = None,
        channel: NetworkChannel | None = None,
        jitter_buffer: JitterBuffer | None = None,
    ) -> None:
        self.codec = codec or VideoCodec()
        self.packetizer = packetizer or Packetizer()
        self.channel = channel or NetworkChannel()
        self.jitter_buffer = jitter_buffer or JitterBuffer()

    def send(self, frame: Frame) -> None:
        """Encode, packetize and transmit one frame at its timestamp."""
        encoded = self.codec.encode(frame)
        packets = self.packetizer.packetize(encoded, send_time=frame.timestamp)
        for delivered in self.channel.transmit_all(packets):
            self.jitter_buffer.push(delivered)

    def receive(self, now: float) -> Frame | None:
        """Newest frame due for playout at ``now``, decoded; else ``None``."""
        encoded = self.jitter_buffer.playout(now)
        if encoded is None:
            return None
        frame = self.codec.decode(encoded)
        frame.metadata["playout_time"] = now
        return frame

    @property
    def one_way_delay_s(self) -> float:
        """Nominal sender-to-display latency of this link."""
        return self.channel.base_delay_s + self.jitter_buffer.playout_delay_s
