"""Receive-side jitter buffer with playout scheduling and loss handling.

Collects packets (possibly reordered by jitter), reassembles frames, and
releases each frame at its playout deadline ``send_time + playout_delay``.
A frame whose packets have not *all arrived* by its deadline is declared
lost; the consumer conceals the loss by holding the previous frame —
which is what freezes the luminance signal during loss bursts, a noise
source the detector's preprocessing has to ride out.

Packets may be pushed as soon as the channel computes their arrival time;
the buffer honours that time and never exposes a packet early.
"""

from __future__ import annotations

import dataclasses

from ..video.codec import EncodedFrame
from .channel import DeliveredPacket

__all__ = ["JitterBuffer", "PlayoutStats"]


@dataclasses.dataclass
class PlayoutStats:
    """Running playout statistics."""

    played: int = 0
    lost_frames: int = 0
    skipped_frames: int = 0  # complete but superseded by a newer frame
    late_packets: int = 0  # packets for frames already flushed
    duplicate_packets: int = 0  # retransmits of chunks already held


@dataclasses.dataclass
class _PendingFrame:
    frame: EncodedFrame
    chunks_needed: int
    playout_time: float
    chunk_arrivals: dict[int, float] = dataclasses.field(default_factory=dict)

    def complete_at(self, now: float) -> bool:
        """Every required chunk index present and physically arrived by
        ``now``.  Counting ``len(chunk_arrivals)`` would let a duplicate
        or corrupt chunk index stand in for a missing one."""
        if any(i not in self.chunk_arrivals for i in range(self.chunks_needed)):
            return False
        return max(self.chunk_arrivals.values()) <= now


class JitterBuffer:
    """Packet reassembly + playout scheduling for one incoming stream."""

    def __init__(self, playout_delay_s: float = 0.15) -> None:
        if playout_delay_s < 0:
            raise ValueError("playout_delay_s must be non-negative")
        self.playout_delay_s = playout_delay_s
        self._pending: dict[int, _PendingFrame] = {}
        self._last_released_id = -1
        self.stats = PlayoutStats()

    def push(self, delivered: DeliveredPacket) -> None:
        """Accept one delivered packet (effective at its arrival time)."""
        packet = delivered.packet
        if packet.frame_id <= self._last_released_id:
            self.stats.late_packets += 1
            return
        pending = self._pending.get(packet.frame_id)
        if pending is None:
            pending = _PendingFrame(
                frame=packet.frame,
                chunks_needed=packet.chunk_count,
                playout_time=packet.send_time + self.playout_delay_s,
            )
            self._pending[packet.frame_id] = pending
        held = pending.chunk_arrivals.get(packet.chunk_index)
        if held is not None:
            # Duplicate sequence number (retransmit or path duplication):
            # keep the *earliest* arrival — the frame was decodable from
            # the first copy, so a late duplicate must not push the frame
            # past its deadline — and account it separately from late
            # packets so neither metric double-counts.
            self.stats.duplicate_packets += 1
            if delivered.arrival_time < held:
                pending.chunk_arrivals[packet.chunk_index] = delivered.arrival_time
            return
        pending.chunk_arrivals[packet.chunk_index] = delivered.arrival_time

    def playout(self, now: float) -> EncodedFrame | None:
        """Return the newest frame whose deadline has passed, or ``None``.

        Due frames that are incomplete (or whose packets arrived after
        the deadline check) are counted lost and discarded.  Older
        complete frames skipped by a newer one are not surfaced —
        real-time playout always jumps to the freshest frame.
        """
        due = [fid for fid, p in self._pending.items() if p.playout_time <= now]
        if not due:
            return None
        newest_complete: _PendingFrame | None = None
        for fid in sorted(due):
            pending = self._pending.pop(fid)
            if pending.complete_at(now):
                if newest_complete is not None:
                    self.stats.skipped_frames += 1
                newest_complete = pending
            else:
                self.stats.lost_frames += 1
            self._last_released_id = max(self._last_released_id, fid)
        if newest_complete is None:
            return None
        self.stats.played += 1
        return newest_complete.frame

    @property
    def pending_count(self) -> int:
        """Frames currently buffered and not yet released."""
        return len(self._pending)
