"""Packetization of encoded video frames.

Real-time video is carried in MTU-sized packets (RTP over UDP in
practice).  Packetization matters to the reproduction because *frame* loss
— the event that freezes the received luminance signal — is the union of
its packets' losses, so bigger frames are more fragile, exactly as on a
real link.
"""

from __future__ import annotations

import dataclasses

from ..video.codec import EncodedFrame

__all__ = ["Packet", "Packetizer"]


@dataclasses.dataclass(frozen=True)
class Packet:
    """One network packet carrying a chunk of an encoded frame."""

    sequence: int
    frame_id: int
    chunk_index: int
    chunk_count: int
    size_bytes: int
    send_time: float
    frame: EncodedFrame

    def __post_init__(self) -> None:
        if self.chunk_count < 1:
            raise ValueError("chunk_count must be >= 1")
        if not 0 <= self.chunk_index < self.chunk_count:
            raise ValueError("chunk_index out of range")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")


class Packetizer:
    """Split encoded frames into MTU-sized packets with a running
    sequence number (per sender)."""

    def __init__(self, mtu_bytes: int = 1200) -> None:
        if mtu_bytes < 64:
            raise ValueError("mtu_bytes must be >= 64")
        self.mtu_bytes = mtu_bytes
        self._sequence = 0

    def packetize(self, encoded: EncodedFrame, send_time: float) -> list[Packet]:
        """Produce the packet train for one encoded frame."""
        chunk_count = max(1, -(-encoded.payload_bytes // self.mtu_bytes))
        packets = []
        remaining = encoded.payload_bytes
        for chunk_index in range(chunk_count):
            size = min(self.mtu_bytes, remaining)
            remaining -= size
            packets.append(
                Packet(
                    sequence=self._sequence,
                    frame_id=encoded.frame_id,
                    chunk_index=chunk_index,
                    chunk_count=chunk_count,
                    size_bytes=size,
                    send_time=send_time,
                    frame=encoded,
                )
            )
            self._sequence += 1
        return packets
