"""Lossy, delayed, jittery network channel.

The channel is the reason the paper's feature extractor estimates and
removes a delay before correlating trends (Sec. VI): Alice's video takes
one trip to reach Bob's screen, and Bob's reflection takes another trip
back, so the face signal trails the screen signal by roughly the
round-trip time plus Bob's render/display latency.

The model: constant propagation delay + exponentially-distributed jitter
+ i.i.d. packet loss.  Deterministic under a seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..obs.instrument import Instrumentation
from .packet import Packet

__all__ = ["DeliveredPacket", "NetworkChannel", "ChannelStats"]


@dataclasses.dataclass(frozen=True)
class DeliveredPacket:
    """A packet together with its arrival time at the far end."""

    packet: Packet
    arrival_time: float


@dataclasses.dataclass
class ChannelStats:
    """Running transmission statistics."""

    sent: int = 0
    lost: int = 0
    bytes_sent: int = 0

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0


class NetworkChannel:
    """One direction of a network path.

    Parameters
    ----------
    base_delay_s:
        Constant one-way propagation + queuing delay.
    jitter_s:
        Mean of the exponential jitter added per packet.
    loss_rate:
        Independent per-packet loss probability.
    seed:
        Seed of the channel's generator.
    instrumentation:
        Optional observability handle; packet/loss counts and the seeded
        jitter draws (deterministic, so registry-safe) are recorded under
        ``net_*`` series when enabled.
    """

    def __init__(
        self,
        base_delay_s: float = 0.08,
        jitter_s: float = 0.01,
        loss_rate: float = 0.0,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if base_delay_s < 0 or jitter_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must lie in [0, 1)")
        self.base_delay_s = base_delay_s
        self.jitter_s = jitter_s
        self.loss_rate = loss_rate
        self._instr = Instrumentation.ensure(instrumentation)
        self._rng = np.random.default_rng(seed)
        self.stats = ChannelStats()

    def transmit(self, packet: Packet) -> DeliveredPacket | None:
        """Send one packet; ``None`` when the packet is lost."""
        self.stats.sent += 1
        self.stats.bytes_sent += packet.size_bytes
        # Every packet consumes exactly one loss draw and one jitter draw,
        # even when the corresponding knob is disabled (loss_rate 0 never
        # drops because random() < 0 is false; exponential scale 0 is 0).
        # Toggling one knob therefore never reshuffles the other's seeded
        # sequence — the property fault ablations compare runs under.
        loss_draw = self._rng.random()
        jitter = float(self._rng.exponential(self.jitter_s))
        if self._instr.is_enabled:
            self._instr.count("net_packets_sent_total")
            self._instr.observe("net_jitter_seconds", jitter)
        if loss_draw < self.loss_rate:
            self.stats.lost += 1
            self._instr.count("net_packets_lost_total")
            return None
        return DeliveredPacket(
            packet=packet,
            arrival_time=packet.send_time + self.base_delay_s + jitter,
        )

    def transmit_all(self, packets: list[Packet]) -> list[DeliveredPacket]:
        """Send a packet train, dropping lost packets."""
        delivered = []
        for packet in packets:
            result = self.transmit(packet)
            if result is not None:
                delivered.append(result)
        return delivered
