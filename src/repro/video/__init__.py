"""Video plumbing: frames, streams, codec, luminance."""

from .codec import EncodedFrame, VideoCodec
from .frame import Frame, blank_frame
from .luminance import BT709_WEIGHTS, frame_mean_luminance, pixel_luminance
from .stream import VideoStream

__all__ = [
    "EncodedFrame",
    "VideoCodec",
    "Frame",
    "blank_frame",
    "BT709_WEIGHTS",
    "frame_mean_luminance",
    "pixel_luminance",
    "VideoStream",
]
