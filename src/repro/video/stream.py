"""Video streams: ordered frame sequences with rate bookkeeping.

A :class:`VideoStream` is what endpoints produce and the detector
consumes.  It supports the two stream operations the paper's pipeline
needs: *resampling* (the detector samples at 10 Hz regardless of capture
rate; Sec. VIII-H sweeps 5/8/10 Hz) and *clip segmentation* (the
evaluation cuts recordings into equal 15-second clips, Sec. VIII-A).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from .frame import Frame

__all__ = ["VideoStream"]


class VideoStream:
    """An append-only, timestamp-ordered sequence of frames."""

    def __init__(self, fps: float, frames: Iterable[Frame] | None = None) -> None:
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.fps = fps
        self._frames: list[Frame] = []
        if frames is not None:
            for frame in frames:
                self.append(frame)

    def append(self, frame: Frame) -> None:
        """Append a frame; timestamps must strictly increase."""
        if self._frames and frame.timestamp <= self._frames[-1].timestamp:
            raise ValueError(
                "frame timestamps must strictly increase: "
                f"{frame.timestamp} after {self._frames[-1].timestamp}"
            )
        self._frames.append(frame)

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __getitem__(self, index: int) -> Frame:
        return self._frames[index]

    @property
    def frames(self) -> tuple[Frame, ...]:
        """Immutable view of the frames."""
        return tuple(self._frames)

    @property
    def timestamps(self) -> np.ndarray:
        """Capture timestamps as an array, shape ``(n,)``."""
        return np.array([f.timestamp for f in self._frames], dtype=np.float64)

    @property
    def duration_s(self) -> float:
        """Span between first and last timestamp (0 for short streams)."""
        if len(self._frames) < 2:
            return 0.0
        return self._frames[-1].timestamp - self._frames[0].timestamp

    def resampled(self, target_hz: float) -> "VideoStream":
        """Nearest-frame resampling onto a uniform ``target_hz`` grid.

        This is how the detector extracts its 10 Hz (or 8/5 Hz in the
        Fig. 16 sweep) working signal from an arbitrary capture rate.
        Each grid instant picks the latest frame at or before it (a
        playout buffer never sees the future); grid points before the
        first frame are skipped.
        """
        if target_hz <= 0:
            raise ValueError("target_hz must be positive")
        if not self._frames:
            return VideoStream(fps=target_hz)
        times = self.timestamps
        start = times[0]
        end = times[-1]
        count = int(np.floor((end - start) * target_hz)) + 1
        grid = start + np.arange(count) / target_hz
        indices = np.searchsorted(times, grid + 1e-9, side="right") - 1
        out = VideoStream(fps=target_hz)
        for k, idx in enumerate(indices):
            source = self._frames[int(idx)]
            out.append(
                Frame(
                    pixels=source.pixels,
                    timestamp=float(grid[k]),
                    metadata=dict(source.metadata, source_timestamp=source.timestamp),
                )
            )
        return out

    def segments(self, duration_s: float) -> list["VideoStream"]:
        """Cut into consecutive clips of ``duration_s`` (Sec. VIII-A).

        Only full-length clips are returned; a trailing partial clip is
        dropped, mirroring the paper's equal-length clip dataset.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self._frames:
            return []
        per_clip = int(round(duration_s * self.fps))
        if per_clip < 1:
            raise ValueError("clip shorter than one frame interval")
        clips: list[VideoStream] = []
        for start in range(0, len(self._frames) - per_clip + 1, per_clip):
            clip = VideoStream(fps=self.fps, frames=self._frames[start : start + per_clip])
            clips.append(clip)
        return clips

    def slice_time(self, t0: float, t1: float) -> "VideoStream":
        """Frames with timestamps in ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        selected = [f for f in self._frames if t0 <= f.timestamp < t1]
        return VideoStream(fps=self.fps, frames=selected)
