"""Relative luminance of pixels and frames (ITU-R BT.709).

The paper's Eq. (3) defines pixel luminance as
``C = 0.2126 R + 0.7152 G + 0.0722 B`` — the standard BT.709 weights
matching human brightness perception.  (The paper's text prints the blue
coefficient as 0.722, an obvious typo: the weights must sum to 1.)

These helpers operate on display-referred [0, 255] pixel data and are
shared by the screen model (what a displayed frame emits) and the
detector's luminance-extraction stage.
"""

from __future__ import annotations

import numpy as np

from .frame import Frame

__all__ = ["BT709_WEIGHTS", "pixel_luminance", "frame_mean_luminance"]

#: BT.709 luma weights for (R, G, B).
BT709_WEIGHTS = np.array([0.2126, 0.7152, 0.0722], dtype=np.float64)


def pixel_luminance(pixels: np.ndarray) -> np.ndarray:
    """Per-pixel luminance of an ``(..., 3)`` RGB array."""
    pixels = np.asarray(pixels, dtype=np.float64)
    if pixels.shape[-1] != 3:
        raise ValueError(f"last axis must be RGB, got shape {pixels.shape}")
    return pixels @ BT709_WEIGHTS


def frame_mean_luminance(frame: Frame | np.ndarray) -> float:
    """Mean luminance of a whole frame.

    This is the paper's "compress each frame into a single pixel" step
    (Sec. IV) used for the transmitted video: only the overall luminance
    of the displayed content matters to the screen-light signal.
    """
    pixels = frame.pixels if isinstance(frame, Frame) else np.asarray(frame)
    return float(pixel_luminance(pixels).mean())
