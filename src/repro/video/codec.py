"""Video codec simulation.

Video chat streams are compressed; compression quantizes pixel values and
bounds the bitrate.  For the paper's signal chain the relevant effects
are (a) the quantization noise added to the luminance signals and (b) the
per-frame payload size that the packetizer splits across the network.

The model is a uniform quantizer with a quality-driven step plus a simple
bitrate estimate — deliberately *not* a DCT codec, because the detector
only reads spatial means over ROIs, where quantization step is the
first-order effect.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .frame import Frame

__all__ = ["EncodedFrame", "VideoCodec"]


@dataclasses.dataclass(frozen=True)
class EncodedFrame:
    """Compressed representation of one frame."""

    frame_id: int
    timestamp: float
    data: np.ndarray  # quantized uint8 pixels
    payload_bytes: int
    metadata: dict = dataclasses.field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, int]:
        return (int(self.data.shape[0]), int(self.data.shape[1]))


class VideoCodec:
    """Quality-parameterized quantizing codec.

    Parameters
    ----------
    quality:
        In (0, 1]; 1.0 means plain 8-bit quantization, lower values use a
        coarser step (step = round(1/quality)) and a smaller payload.
    base_compression:
        Compression ratio at quality 1.0 (H.264-ish interframe coding
        easily reaches ~50:1 on talking-head content).
    """

    def __init__(self, quality: float = 0.9, base_compression: float = 50.0) -> None:
        if not 0.0 < quality <= 1.0:
            raise ValueError("quality must lie in (0, 1]")
        if base_compression < 1.0:
            raise ValueError("base_compression must be >= 1")
        self.quality = quality
        self.base_compression = base_compression
        self._next_id = 0

    @property
    def quant_step(self) -> int:
        """Quantization step in 8-bit pixel units."""
        return max(1, int(round(1.0 / self.quality)))

    def encode(self, frame: Frame) -> EncodedFrame:
        """Quantize a frame and estimate its payload size."""
        step = self.quant_step
        clipped = np.clip(frame.pixels, 0.0, 255.0)
        # Re-clip after scaling: values near 255 can round up to the next
        # step (e.g. 254 -> 256 at step 4), which would wrap in uint8.
        quantized = np.clip(np.round(clipped / step) * step, 0.0, 255.0).astype(np.uint8)
        raw_bytes = quantized.size
        compression = self.base_compression / self.quality
        payload = max(int(raw_bytes / compression), 64)
        encoded = EncodedFrame(
            frame_id=self._next_id,
            timestamp=frame.timestamp,
            data=quantized,
            payload_bytes=payload,
            metadata=dict(frame.metadata),
        )
        self._next_id += 1
        return encoded

    def decode(self, encoded: EncodedFrame) -> Frame:
        """Reconstruct the (quantized) frame."""
        return Frame(
            pixels=encoded.data.astype(np.float64),
            timestamp=encoded.timestamp,
            metadata=dict(encoded.metadata, frame_id=encoded.frame_id),
        )
