"""Video frame representation.

A :class:`Frame` is the atom that flows through the whole system: the
renderer produces frames, the camera sensor degrades them, the codec
quantizes them, the network transports them, and the detector finally
consumes them.  A frame is an RGB raster plus a capture timestamp and a
small, open-ended metadata dictionary (used e.g. by the renderer to attach
ground-truth landmark positions so tests can measure detector error).

Pixel convention
----------------
Pixels are stored as ``float64`` in the display-referred range ``[0, 255]``
(i.e. already gamma-encoded, like the 8-bit values a webcam delivers).
Float storage avoids repeated quantization while the frame moves through
the pipeline; the codec is the one place that deliberately rounds to the
8-bit grid, exactly like a real video chat stack.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

__all__ = ["Frame", "blank_frame"]


@dataclasses.dataclass
class Frame:
    """A single RGB video frame.

    Parameters
    ----------
    pixels:
        Array of shape ``(height, width, 3)`` with values in ``[0, 255]``.
    timestamp:
        Capture time in seconds (sender clock).
    metadata:
        Free-form side information.  The renderer attaches
        ``"landmarks"`` (ground truth) and ``"illuminance"`` here; the
        network layer attaches ``"arrival_time"``.
    """

    pixels: np.ndarray
    timestamp: float
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels, dtype=np.float64)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError(
                f"frame pixels must have shape (h, w, 3), got {pixels.shape}"
            )
        self.pixels = pixels

    @property
    def height(self) -> int:
        """Frame height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Frame width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """(height, width) of the raster."""
        return (self.height, self.width)

    def copy(self) -> "Frame":
        """Deep copy (pixels and metadata are duplicated)."""
        return Frame(
            pixels=self.pixels.copy(),
            timestamp=self.timestamp,
            metadata=dict(self.metadata),
        )

    def clipped(self) -> "Frame":
        """Return a copy with pixels clipped to the legal [0, 255] range."""
        out = self.copy()
        np.clip(out.pixels, 0.0, 255.0, out=out.pixels)
        return out

    def quantized(self) -> "Frame":
        """Return a copy rounded to the 8-bit grid (still stored as float)."""
        out = self.clipped()
        np.round(out.pixels, out=out.pixels)
        return out

    def mean_rgb(self) -> np.ndarray:
        """Spatial mean of each channel, shape ``(3,)``."""
        return self.pixels.reshape(-1, 3).mean(axis=0)


def blank_frame(
    height: int,
    width: int,
    value: float = 0.0,
    timestamp: float = 0.0,
) -> Frame:
    """Create a uniform frame (useful as a test fixture and codec seed)."""
    if height <= 0 or width <= 0:
        raise ValueError("frame dimensions must be positive")
    pixels = np.full((height, width, 3), float(value), dtype=np.float64)
    return Frame(pixels=pixels, timestamp=timestamp)
