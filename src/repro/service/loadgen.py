"""Open-loop workload generator for the verification service.

Synthesizes a fleet of tenants and a stream of verification sessions —
Poisson arrivals, heavy-tailed call lengths, a zipf-skewed tenant mix,
genuine and attack roles, and optional per-session chaos drawn from a
:class:`~repro.faults.FaultSpec` — and drives them through a
:class:`~repro.service.server.VerificationServer`.

Open-loop means arrivals do not wait for completions: the generator
submits on its own clock and lets admission control and backpressure do
their jobs, which is the only way a load test can actually reveal them
(a closed loop self-throttles and never fills the queue).

Frames are synthesized at the *signal* level and lifted to pixels only
at push time: the transmitted frame is a flat gray raster (its mean
luminance IS the signal value), and the received frame is a uniform
skin-toned patch whose brightness is scaled so the nasal-bridge ROI
reads the intended reflected luminance.  The patch passes the landmark
detector's skin segmentation, so the whole vision path runs for real —
detection, ROI extraction, jitter RNG — at a tiny per-frame cost.

Everything is a pure function of ``WorkloadConfig.seed``: scripts are
precomputed arrays, chaos rides seeded :class:`FaultSchedule` arrays,
and under a :class:`~repro.service.scheduler.VirtualScheduler` the run
is bit-reproducible — including against its own serial replay
(:func:`run_workload` with ``serial=True``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.config import DetectorConfig
from ..core.features import extract_features_batch
from ..core.seeding import spawn_seeds
from ..faults import FaultSpec
from ..protocol.provision import derive_session_schedules
from ..video.frame import Frame
from ..video.luminance import BT709_WEIGHTS
from .queues import FrameQueue  # noqa: F401  (re-exported for tests)
from .scheduler import Scheduler
from .server import SessionOutcome, VerificationServer

__all__ = [
    "SessionScript",
    "WorkloadConfig",
    "WorkloadResult",
    "build_scripts",
    "make_tenant_bank_provider",
    "run_workload",
]

#: Skin-tone unit color (red-dominant, blue-poor): passes the landmark
#: detector's chromaticity gate (r-chrom 0.44 > 0.355, b-chrom 0.20 <
#: 0.32) at any brightness scale.
_SKIN_COLOR = np.array([0.55, 0.45, 0.25])
#: BT.709 luminance of the unit skin color; a patch of ``_SKIN_COLOR*c``
#: reads luminance ``c * _SKIN_LUMA``.
_SKIN_LUMA = float(BT709_WEIGHTS @ _SKIN_COLOR)

_TICKS_PER_CLIP = 150  # 15 s at 10 Hz (DetectorConfig defaults)
_TICK_S = 0.1


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """One load-test scenario (everything derives from ``seed``)."""

    sessions: int = 240
    tenants: int = 12
    arrival_rate_hz: float = 12.0  # Poisson arrival intensity
    mean_extra_clips: float = 0.5  # heavy tail beyond the first clip
    max_clips: int = 4
    attack_fraction: float = 0.3
    chaos_fraction: float = 0.0  # sessions with a fault schedule
    chaos_severity: float = 1.0
    abandon_fraction: float = 0.0  # feeds that die mid-call (stall path)
    burst_fraction: float = 0.0  # clients that dump frames all at once
    small_tenant_fraction: float = 0.0  # tenants with an undersized bank
    enroll_clips: int = 8
    small_enroll_clips: int = 4  # < lof_neighbors + 1: exercises the clamp
    frame_height: int = 24
    frame_width: int = 24
    #: Fraction of sessions that run the challenge-binding protocol
    #: (submitted with ``protocol=True``; the server must be configured
    #: with a :class:`~repro.protocol.schedule.ProtocolConfig`).  Zero
    #: keeps the script stream byte-identical to pre-protocol workloads.
    protocol_fraction: float = 0.0
    #: Among protocol sessions: fraction replaying a prior session's
    #: recorded response, and fraction relaying the live response too
    #: late.  The remainder answer their own schedule freshly.
    protocol_replay_fraction: float = 0.0
    protocol_stale_fraction: float = 0.0
    #: Must match the server's ``protocol_secret`` — the workload mirrors
    #: the prover side of the keyed derivation.  repr=False for the same
    #: reason as ServerConfig: workload configs get logged whole (R021).
    protocol_secret: str = dataclasses.field(
        default="repro-deployment-secret", repr=False
    )
    seed: int = 20260808
    fault_spec: FaultSpec = dataclasses.field(
        default_factory=lambda: FaultSpec(
            loss_burst_rate=0.15,
            mean_burst_s=0.8,
            jitter_spike_rate=0.2,
            jitter_spike_s=0.1,
            landmark_dropout_rate=0.25,
            mean_dropout_s=1.0,
            freeze_rate=0.1,
            mean_freeze_s=0.5,
        )
    )

    def __post_init__(self) -> None:
        if self.sessions < 1 or self.tenants < 1:
            raise ValueError("sessions and tenants must be >= 1")
        if self.arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be positive")
        if not 0 <= self.protocol_fraction <= 1:
            raise ValueError("protocol_fraction must lie in [0, 1]")
        if self.protocol_replay_fraction < 0 or self.protocol_stale_fraction < 0:
            raise ValueError("protocol role fractions must be non-negative")
        if self.protocol_replay_fraction + self.protocol_stale_fraction > 1:
            raise ValueError("protocol role fractions must sum to <= 1")


@dataclasses.dataclass(frozen=True)
class SessionScript:
    """Precomputed plan of one session (arrays, not frames)."""

    session_id: str
    tenant_id: str
    role: str  # "genuine" | "attack"
    arrival_offset_s: float  # from workload start (open-loop clock)
    clips: int
    transmitted: np.ndarray  # luminance per tick
    received: np.ndarray  # target ROI luminance per tick
    dropout: np.ndarray  # bool per tick: faceless received frame
    freeze: np.ndarray  # bool per tick: stale repeat of the last frame
    extra_delay_s: np.ndarray  # jitter: added before pushing this tick
    abandon_after: int | None  # feed dies after this many ticks (no EOS)
    burst: bool  # dump all frames without pacing
    #: None for ordinary sessions; "genuine" | "replay" | "stale" for
    #: sessions submitted with the challenge-binding protocol.
    protocol: str | None = None

    @property
    def ticks(self) -> int:
        return int(self.transmitted.size)


@dataclasses.dataclass(frozen=True)
class WorkloadResult:
    """What one workload run produced."""

    outcomes: tuple[SessionOutcome, ...]
    rejected: int
    duration_s: float

    @property
    def submitted(self) -> int:
        return len(self.outcomes) + self.rejected


# ----------------------------------------------------------------------
# Script synthesis
# ----------------------------------------------------------------------


def _genuine_signals(
    rng: np.random.Generator, clips: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-clip two-step challenges with a delayed, attenuated response."""
    t_parts, r_parts = [], []
    delay = int(rng.integers(2, 6))  # 0.2-0.5 s screen-to-face lag
    for _ in range(clips):
        t = np.full(_TICKS_PER_CLIP, 180.0)
        i1 = int(rng.integers(25, 55))
        i2 = int(rng.integers(85, 120))
        t[i1:] -= 50.0
        t[i2:] += 50.0
        delayed = np.concatenate([np.full(delay, t[0]), t[:-delay]])
        r = 120.0 + 0.3 * delayed + rng.normal(0.0, 0.4, _TICKS_PER_CLIP)
        t_parts.append(t)
        r_parts.append(r)
    return np.concatenate(t_parts), np.concatenate(r_parts)


def _attack_signals(
    rng: np.random.Generator, clips: int
) -> tuple[np.ndarray, np.ndarray]:
    """Challenges go out, but the reenacted face never echoes them."""
    t_parts = []
    for _ in range(clips):
        t = np.full(_TICKS_PER_CLIP, 180.0)
        i1 = int(rng.integers(25, 55))
        i2 = int(rng.integers(85, 120))
        t[i1:] -= 50.0
        t[i2:] += 50.0
        t_parts.append(t)
    n = clips * _TICKS_PER_CLIP
    return np.concatenate(t_parts), 120.0 + rng.normal(0.0, 2.0, n)


def _derived_transmitted(schedules) -> np.ndarray:
    """Transmitted luminance executing the derived challenge schedules.

    Each challenge steps the level by its brightness delta — up for a
    dark-spot metering flip (exposure opens), down for a bright-spot
    flip.  Spots alternate within a schedule, so the level oscillates
    around the baseline instead of drifting.
    """
    parts = []
    for schedule in schedules:
        t = np.full(_TICKS_PER_CLIP, 180.0)
        for challenge in schedule.challenges:
            idx = min(int(round(challenge.time_s / _TICK_S)), _TICKS_PER_CLIP - 1)
            t[idx:] += (
                challenge.delta_lux if challenge.spot == "dark" else -challenge.delta_lux
            )
        parts.append(t)
    return np.concatenate(parts)


def _delayed_response(t_sig: np.ndarray, delay_ticks: int, rng) -> np.ndarray:
    """Attenuated screen reflection trailing ``t_sig`` by ``delay_ticks``."""
    delayed = np.concatenate([np.full(delay_ticks, t_sig[0]), t_sig[:-delay_ticks]])
    return 120.0 + 0.3 * delayed + rng.normal(0.0, 0.4, t_sig.size)


def _protocol_signals(
    config: WorkloadConfig,
    rng: np.random.Generator,
    tenant_id: str,
    session_id: str,
    clips: int,
    mode: str,
    prior_session_id: str | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Signal pair of one protocol session.

    ``genuine`` answers its own derived schedule with the usual 0.2-0.5 s
    path delay; ``stale`` answers it 3.5-5.5 s late (a slow relay, past
    the freshness window but inside the stale band); ``replay`` sends the
    recorded response of the tenant's *previous* protocol session while
    the current schedule rides the transmitted side.  A replay with no
    prior session to echo degrades to a fresh response — there is nothing
    recorded to play back.
    """
    schedules = derive_session_schedules(
        config.protocol_secret, tenant_id, session_id, clips
    )
    t_sig = _derived_transmitted(schedules)
    if mode == "stale":
        delay = int(rng.integers(32, 46))  # 3.2-4.5 s: past freshness (2.5 s)
        r_sig = _delayed_response(t_sig, delay, rng)
    elif mode == "replay" and prior_session_id is not None:
        prior = derive_session_schedules(
            config.protocol_secret, tenant_id, prior_session_id, clips
        )
        delay = int(rng.integers(2, 6))
        r_sig = _delayed_response(_derived_transmitted(prior), delay, rng)
    else:
        delay = int(rng.integers(2, 6))
        r_sig = _delayed_response(t_sig, delay, rng)
    return t_sig, r_sig


def build_scripts(config: WorkloadConfig) -> list[SessionScript]:
    """The full deterministic session list of one workload."""
    rng = np.random.default_rng([config.seed, 0x10AD])
    # Zipf-skewed tenant popularity (tenant 0 hottest).
    weights = 1.0 / np.arange(1, config.tenants + 1)
    weights /= weights.sum()
    arrival = 0.0
    scripts: list[SessionScript] = []
    session_seeds = spawn_seeds(config.seed, config.sessions)
    # Last protocol session per tenant: what a replaying recorder most
    # recently observed (and what the verifier's ledger still remembers).
    last_protocol: dict[str, str] = {}
    for i in range(config.sessions):
        session_id = f"load-{i:05d}"
        arrival += float(rng.exponential(1.0 / config.arrival_rate_hz))
        tenant = int(rng.choice(config.tenants, p=weights))
        tenant_id = f"tenant-{tenant:03d}"
        role = "attack" if rng.random() < config.attack_fraction else "genuine"
        clips = 1 + min(
            int(rng.exponential(config.mean_extra_clips)), config.max_clips - 1
        )
        chaotic = rng.random() < config.chaos_fraction
        abandons = rng.random() < config.abandon_fraction
        burst = rng.random() < config.burst_fraction
        # Protocol draws are guarded so a zero-fraction workload consumes
        # exactly the pre-protocol RNG stream (byte-identical scripts).
        protocol_role = None
        if config.protocol_fraction > 0 and rng.random() < config.protocol_fraction:
            u = rng.random()
            if u < config.protocol_replay_fraction:
                protocol_role = "replay"
            elif u < config.protocol_replay_fraction + config.protocol_stale_fraction:
                protocol_role = "stale"
            else:
                protocol_role = "genuine"
        s_rng = np.random.default_rng(session_seeds[i])
        if protocol_role == "replay" and tenant_id not in last_protocol:
            # Nothing to replay yet: the tenant has no prior protocol
            # session.  The signal synthesis would fall back to a
            # genuine response anyway, so label the session honestly.
            protocol_role = "genuine"
        if protocol_role is not None:
            # Protocol sessions keep clip boundaries aligned with their
            # schedules: no chaos, no bursts (queue shedding would shift
            # the clip grid), no abandons, and at most the number of
            # attempts the provisioner commits to the ledger.
            role = "genuine" if protocol_role == "genuine" else "attack"
            clips = min(clips, 2)
            chaotic = abandons = burst = False
            t_sig, r_sig = _protocol_signals(
                config,
                s_rng,
                tenant_id,
                session_id,
                clips,
                protocol_role,
                last_protocol.get(tenant_id),
            )
            last_protocol[tenant_id] = session_id
        elif role == "genuine":
            t_sig, r_sig = _genuine_signals(s_rng, clips)
        else:
            t_sig, r_sig = _attack_signals(s_rng, clips)
        ticks = t_sig.size
        if chaotic:
            schedule = config.fault_spec.scaled(config.chaos_severity).schedule(
                ticks * _TICK_S, 1.0 / _TICK_S, seed=session_seeds[i]
            )
            dropout = schedule.landmark_dropout[:ticks].copy()
            freeze = (schedule.freeze | schedule.loss_burst)[:ticks].copy()
            extra_delay = schedule.jitter_extra_s[:ticks].copy()
        else:
            dropout = np.zeros(ticks, dtype=bool)
            freeze = np.zeros(ticks, dtype=bool)
            extra_delay = np.zeros(ticks)
        abandon_after = None
        if abandons:
            # Die somewhere inside the first clip: the session never
            # completes an attempt and must resolve via the stall path.
            abandon_after = int(s_rng.integers(30, _TICKS_PER_CLIP - 10))
        scripts.append(
            SessionScript(
                session_id=session_id,
                tenant_id=tenant_id,
                role=role,
                arrival_offset_s=arrival,
                clips=clips,
                transmitted=t_sig,
                received=r_sig,
                dropout=dropout,
                freeze=freeze,
                extra_delay_s=extra_delay,
                abandon_after=abandon_after,
                burst=burst,
                protocol=protocol_role,
            )
        )
    return scripts


# ----------------------------------------------------------------------
# Enrollment banks
# ----------------------------------------------------------------------


def make_tenant_bank_provider(config: WorkloadConfig, detector: DetectorConfig | None = None):
    """``tenant_id -> feature bank`` callable for the server's cache.

    Banks are built lazily (first session of a tenant pays the fit, like
    a real enrollment store) from clean genuine signal pairs under the
    tenant's own seed.  The last ``small_tenant_fraction`` of tenants get
    an undersized bank, driving the LOF small-bank clamp (and its
    :class:`~repro.core.lof.SmallBankWarning`) through the service path.
    """
    detector = detector or DetectorConfig()
    small_cutoff = config.tenants - int(
        round(config.tenants * config.small_tenant_fraction)
    )
    bank_seeds = spawn_seeds(config.seed + 1, config.tenants)

    def provider(tenant_id: str):
        index = int(tenant_id.rsplit("-", 1)[1])
        clips = (
            config.enroll_clips if index < small_cutoff else config.small_enroll_clips
        )
        rng = np.random.default_rng(bank_seeds[index])
        pairs = [_genuine_signals(rng, 1) for _ in range(clips)]
        return [fx.features for fx in extract_features_batch(pairs, detector)]

    return provider


# ----------------------------------------------------------------------
# Frame synthesis (script -> pixels, one tick at a time)
# ----------------------------------------------------------------------


def _transmitted_frame(config: WorkloadConfig, value: float, t: float) -> Frame:
    pixels = np.full(
        (config.frame_height, config.frame_width, 3), float(value), dtype=np.float64
    )
    return Frame(pixels=pixels, timestamp=t)


def _face_frame(config: WorkloadConfig, luminance: float, t: float) -> Frame:
    """Uniform skin patch whose ROI luminance reads ``luminance``."""
    h, w = config.frame_height, config.frame_width
    pixels = np.zeros((h, w, 3), dtype=np.float64)
    scale = max(luminance, 1.0) / _SKIN_LUMA
    # Leave a 2-px black border so the face is a bounded blob, as the
    # ellipse fit expects.
    pixels[2 : h - 2, 2 : w - 2] = _SKIN_COLOR * scale
    return Frame(pixels=pixels, timestamp=t)


def _faceless_frame(config: WorkloadConfig, t: float) -> Frame:
    return Frame(
        pixels=np.zeros((config.frame_height, config.frame_width, 3)), timestamp=t
    )


async def _feed_session(
    scheduler: Scheduler,
    server: VerificationServer,
    script: SessionScript,
    config: WorkloadConfig,
) -> SessionOutcome | None:
    """Submit one scripted session, pace its frames, await the verdict."""
    admission = server.submit(
        script.tenant_id,
        session_id=script.session_id,
        protocol=script.protocol is not None,
    )
    if not admission.admitted:
        return None
    handle = admission.handle
    last_face: Frame | None = None
    for k in range(script.ticks):
        if script.abandon_after is not None and k >= script.abandon_after:
            # The client vanished: no EOS, no more frames.  The session
            # must resolve through its stall timeout, not hang.
            return await handle.result()
        if not script.burst:
            await scheduler.sleep(_TICK_S + float(script.extra_delay_s[k]))
        t = script.arrival_offset_s + k * _TICK_S
        transmitted = _transmitted_frame(config, float(script.transmitted[k]), t)
        if script.freeze[k] and last_face is not None:
            received = Frame(
                pixels=last_face.pixels, timestamp=t, metadata={"fresh": False}
            )
        elif script.dropout[k]:
            received = _faceless_frame(config, t)
        else:
            received = _face_frame(config, float(script.received[k]), t)
            last_face = received
        handle.push_frame(transmitted, received)
    handle.finish()
    return await handle.result()


# ----------------------------------------------------------------------
# The open-loop driver
# ----------------------------------------------------------------------


async def _run_open_loop(
    scheduler: Scheduler,
    server: VerificationServer,
    scripts: list[SessionScript],
    config: WorkloadConfig,
) -> WorkloadResult:
    start = scheduler.now()
    feeders = []
    for script in scripts:
        lead = script.arrival_offset_s - (scheduler.now() - start)
        if lead > 0:
            await scheduler.sleep(lead)
        feeders.append(
            scheduler.spawn(
                _feed_session(scheduler, server, script, config),
                name=f"feed:{script.session_id}",
            )
        )
    outcomes, rejected = [], 0
    for feeder in feeders:
        outcome = await feeder.join()
        if outcome is None:
            rejected += 1
        else:
            outcomes.append(outcome)
    return WorkloadResult(
        outcomes=tuple(outcomes),
        rejected=rejected,
        duration_s=scheduler.now() - start,
    )


async def _run_serial(
    scheduler: Scheduler,
    server: VerificationServer,
    scripts: list[SessionScript],
    config: WorkloadConfig,
) -> WorkloadResult:
    """One session at a time — the identity baseline for the concurrent
    run: every outcome and every determinism-checked metric must match
    the open-loop execution byte for byte."""
    start = scheduler.now()
    outcomes, rejected = [], 0
    for script in scripts:
        outcome = await _feed_session(scheduler, server, script, config)
        if outcome is None:
            rejected += 1
        else:
            outcomes.append(outcome)
    return WorkloadResult(
        outcomes=tuple(outcomes),
        rejected=rejected,
        duration_s=scheduler.now() - start,
    )


def run_workload(
    scheduler: Scheduler,
    server: VerificationServer,
    config: WorkloadConfig,
    serial: bool = False,
    wall_guard_s: float | None = None,
) -> WorkloadResult:
    """Run the whole workload to completion on ``scheduler``.

    ``wall_guard_s`` bounds the wall-clock time of the whole run (a
    wedged task raises TimeoutError instead of hanging the process);
    None is reserved for drivers that manage their own deadline.
    """
    scripts = build_scripts(config)
    runner = _run_serial if serial else _run_open_loop
    return scheduler.run(
        runner(scheduler, server, scripts, config), wall_guard_s=wall_guard_s
    )
