"""Multi-tenant async verification service.

The deployable layer above :mod:`repro.core.streaming`: one process
multiplexing many concurrent chat-liveness sessions, with admission
control, per-tenant model caching, bounded backpressure, deadlines, and
SLO reporting — runnable against the wall clock
(:class:`~repro.service.realtime.RealTimeScheduler`) or in a
deterministic discrete-event mode
(:class:`~repro.service.scheduler.VirtualScheduler`) where a load test
is bit-reproducible and byte-identical to its own serial replay.
"""

from .loadgen import (
    SessionScript,
    WorkloadConfig,
    WorkloadResult,
    build_scripts,
    make_tenant_bank_provider,
    run_workload,
)
from .queues import END_OF_STREAM, FrameQueue
from .realtime import RealTimeScheduler
from .scheduler import (
    Scheduler,
    ServiceLock,
    TIMEOUT,
    TaskHandle,
    VirtualScheduler,
    Waiter,
)
from .server import (
    Admission,
    SERVICE_LATENCY_BUCKETS_S,
    ServerConfig,
    SessionHandle,
    SessionOutcome,
    VerificationServer,
)
from .slo import SLOReport, build_slo_report
from .tenants import TenantBankCache

__all__ = [
    "Admission",
    "END_OF_STREAM",
    "FrameQueue",
    "RealTimeScheduler",
    "SERVICE_LATENCY_BUCKETS_S",
    "SLOReport",
    "Scheduler",
    "ServerConfig",
    "ServiceLock",
    "SessionHandle",
    "SessionOutcome",
    "SessionScript",
    "TIMEOUT",
    "TaskHandle",
    "TenantBankCache",
    "VerificationServer",
    "VirtualScheduler",
    "Waiter",
    "WorkloadConfig",
    "WorkloadResult",
    "build_scripts",
    "build_slo_report",
    "make_tenant_bank_provider",
    "run_workload",
]
