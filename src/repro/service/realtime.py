"""Wall-clock scheduler for live serving.

This module is the service's **only** wall-clock site: it is listed in
the reprolint ``wall-clock-allowlist`` so R002/R008 keep every other
service module honest about going through the :class:`Scheduler`
abstraction.  Everything here is a thin mapping of the scheduler
primitives onto real asyncio time — no business logic.

Live deployments construct :class:`RealTimeScheduler`; tests, the
benchmark, and ``repro loadtest`` default to the deterministic
:class:`~repro.service.scheduler.VirtualScheduler`.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Coroutine
from typing import Any

from .scheduler import TIMEOUT, Scheduler, Waiter

__all__ = ["RealTimeScheduler"]


class RealTimeScheduler(Scheduler):
    """Scheduler regime backed by ``time.monotonic`` and asyncio timers."""

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(max(delay, 0.0))

    async def park(self, waiter: Waiter, timeout: float | None = None) -> Any:
        if timeout is None:
            return await waiter.fut
        try:
            return await asyncio.wait_for(asyncio.shield(waiter.fut), timeout)
        except asyncio.TimeoutError:
            if waiter.fut.done():  # resolved in the same tick as expiry
                return waiter.fut.result()
            waiter.fut.cancel()
            return TIMEOUT

    def resolve(self, waiter: Waiter, value: Any) -> bool:
        # A cancelled future (timed-out park) counts as already fired.
        if waiter.fut.done() or waiter.fut.cancelled():
            return False
        waiter.fut.set_result(value)
        return True

    def run(self, main: Coroutine, wall_guard_s: float | None = None) -> Any:
        if wall_guard_s is None:
            return asyncio.run(main)

        async def _guarded() -> Any:
            return await asyncio.wait_for(main, wall_guard_s)

        return asyncio.run(_guarded())
