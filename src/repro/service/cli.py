"""`repro serve` / `repro loadtest` command implementations.

Kept out of :mod:`repro.cli` so the top-level module stays a thin
argparse shell (the same split as ``obs.trace_cli`` and
``analysis.cli``).

``serve`` runs a small demonstration workload through the full service
stack and prints the SLO report — instantly in the default deterministic
virtual-time mode, or against the wall clock with ``--realtime`` (real
seconds: frames are paced at 10 Hz).

``loadtest`` is the scale/determinism harness: an open-loop workload at
hundreds of concurrent sessions under virtual time, optionally replayed
serially to check byte-identity of outcomes and merged metrics, with a
JSON artifact for benchmark gating.
"""

from __future__ import annotations

import argparse
import json

from ..obs.instrument import Instrumentation
from ..protocol import ProtocolConfig
from .loadgen import WorkloadConfig, make_tenant_bank_provider, run_workload
from .realtime import RealTimeScheduler
from .scheduler import Scheduler, VirtualScheduler
from .server import ServerConfig, VerificationServer
from .slo import build_slo_report

__all__ = [
    "add_loadtest_arguments",
    "add_serve_arguments",
    "run_loadtest",
    "run_serve",
]


def _add_protocol_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocol",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="fraction of sessions using the challenge-binding protocol",
    )
    parser.add_argument(
        "--protocol-replay",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="share of protocol sessions replaying a prior session",
    )
    parser.add_argument(
        "--protocol-stale",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="share of protocol sessions answering past the freshness window",
    )


def _protocol_workload_fields(args: argparse.Namespace) -> dict:
    return {
        "protocol_fraction": args.protocol,
        "protocol_replay_fraction": args.protocol_replay,
        "protocol_stale_fraction": args.protocol_stale,
    }


def _build_stack(
    workload: WorkloadConfig, server_config: ServerConfig, scheduler: Scheduler
):
    instr = Instrumentation.enabled(
        clock=scheduler.clock if isinstance(scheduler, VirtualScheduler) else None
    )
    server = VerificationServer(
        scheduler,
        make_tenant_bank_provider(workload, server_config.detector),
        server_config,
        instrumentation=instr,
    )
    return server, instr


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-sessions", type=int, default=16, help="concurrent session slots"
    )
    parser.add_argument(
        "--attack-fraction", type=float, default=0.3, help="attacker session share"
    )
    parser.add_argument(
        "--chaos",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="fraction of sessions riding a fault schedule",
    )
    parser.add_argument(
        "--realtime",
        action="store_true",
        help="run against the wall clock (frames paced at 10 Hz, i.e. "
        "real seconds) instead of deterministic virtual time",
    )
    _add_protocol_arguments(parser)


def run_serve(args: argparse.Namespace) -> int:
    """Serve a demonstration workload and print its SLO report."""
    workload = WorkloadConfig(
        sessions=args.sessions,
        tenants=args.tenants,
        arrival_rate_hz=2.0,
        attack_fraction=args.attack_fraction,
        chaos_fraction=args.chaos,
        seed=args.seed,
        **_protocol_workload_fields(args),
    )
    scheduler: Scheduler = (
        RealTimeScheduler() if args.realtime else VirtualScheduler()
    )
    server_config = ServerConfig(
        max_sessions=args.max_sessions,
        protocol=ProtocolConfig() if args.protocol > 0 else None,
    )
    server, instr = _build_stack(workload, server_config, scheduler)
    mode = "realtime" if args.realtime else "virtual"
    print(
        f"serving {workload.sessions} sessions / {workload.tenants} tenants "
        f"({mode} clock) ..."
    )
    result = run_workload(
        scheduler,
        server,
        workload,
        # The realtime demo runs at wall speed under the operator's eye,
        # so it stays unbounded; virtual runs finish in milliseconds and
        # a wedge should raise rather than hang.
        wall_guard_s=None if args.realtime else 300.0,
    )
    for outcome in result.outcomes:
        print(
            f"  {outcome.session_id} tenant={outcome.tenant_id} "
            f"status={outcome.status.value:>12s} reason={outcome.reason:>9s} "
            f"frames={outcome.frames:>4d} latency={outcome.duration_s:6.1f}s"
        )
    print()
    print(build_slo_report(instr.snapshot(), server.peak_active, server.peak_queued))
    return 0


def add_loadtest_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sessions", type=int, default=220)
    parser.add_argument("--tenants", type=int, default=10)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument(
        "--arrival-rate", type=float, default=22.0, help="Poisson arrivals per second"
    )
    parser.add_argument(
        "--max-sessions", type=int, default=256, help="concurrent session slots"
    )
    parser.add_argument(
        "--queue-depth", type=int, default=16, help="admission queue depth"
    )
    parser.add_argument(
        "--chaos",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="fraction of sessions riding a fault schedule",
    )
    _add_protocol_arguments(parser)
    parser.add_argument(
        "--no-serial-check",
        action="store_true",
        help="skip the serial replay (and its byte-identity assertion)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the machine-readable result (bench-service-v1) here",
    )


def _run_one(workload: WorkloadConfig, server_config: ServerConfig, serial: bool):
    scheduler = VirtualScheduler()
    server, instr = _build_stack(workload, server_config, scheduler)
    result = run_workload(
        scheduler, server, workload, serial=serial, wall_guard_s=600.0
    )
    return result, instr.snapshot(), server


def run_loadtest(args: argparse.Namespace) -> int:
    """Deterministic open-loop load test; exit 1 on identity failure."""
    workload = WorkloadConfig(
        sessions=args.sessions,
        tenants=args.tenants,
        arrival_rate_hz=args.arrival_rate,
        chaos_fraction=args.chaos,
        abandon_fraction=0.05,
        burst_fraction=0.05,
        small_tenant_fraction=0.2,
        seed=args.seed,
        **_protocol_workload_fields(args),
    )
    server_config = ServerConfig(
        max_sessions=args.max_sessions,
        admission_queue_depth=args.queue_depth,
        protocol=ProtocolConfig() if args.protocol > 0 else None,
    )
    print(
        f"loadtest: {workload.sessions} sessions / {workload.tenants} tenants, "
        f"open-loop at {workload.arrival_rate_hz:g}/s (virtual time) ..."
    )
    result, snapshot, server = _run_one(workload, server_config, serial=False)
    report = build_slo_report(snapshot, server.peak_active, server.peak_queued)
    print(report)
    identical = None
    if not args.no_serial_check:
        print("serial replay for the byte-identity check ...")
        serial_result, serial_snapshot, _ = _run_one(
            workload, server_config, serial=True
        )
        identical = (
            result.outcomes == serial_result.outcomes and snapshot == serial_snapshot
        )
        print(
            "concurrent == serial:",
            "IDENTICAL (outcomes and merged metrics)" if identical else "MISMATCH",
        )
    if args.json:
        payload = {
            "schema": "bench-service-v1",
            "sessions": workload.sessions,
            "tenants": workload.tenants,
            "peak_concurrent_sessions": server.peak_active,
            "admitted": report.admitted,
            "rejected": report.rejected,
            "admission_rate": round(report.admission_rate, 4),
            "p50_verdict_latency_s": round(report.p50_latency_s, 3),
            "p99_verdict_latency_s": round(report.p99_latency_s, 3),
            "frames_processed": report.frames_processed,
            "frames_dropped": report.frames_dropped,
            "status_counts": report.status_counts,
            "end_reasons": report.end_reasons,
            "tenant_cache": report.tenant_cache,
            "task_failures": report.task_failures,
            "protocol_sessions": report.protocol_sessions,
            "protocol_bindings": report.protocol_bindings,
            "tenant_status": report.tenant_status,
            "serial_identity": identical,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"result written to {args.json}")
    return 1 if identical is False else 0
