"""The multi-session verification server.

:class:`VerificationServer` multiplexes many concurrent chat-liveness
sessions over one scheduler:

* **Admission control** — at most ``max_sessions`` sessions verify at
  once; up to ``admission_queue_depth`` more wait in FIFO order; beyond
  that, :meth:`VerificationServer.submit` returns an explicit
  ``REJECTED`` admission instead of queueing unboundedly.
* **Backpressure** — each session owns a bounded
  :class:`~repro.service.queues.FrameQueue` with drop-oldest shedding;
  ingest never blocks and drops are counted, not hidden.
* **Deadlines** — a session that exceeds ``session_deadline_s``, or
  whose feed stalls longer than ``frame_timeout_s``, resolves to
  ``INCONCLUSIVE`` (unless the vote already condemned the peer — an
  attacker verdict survives a later network death).  No code path
  hangs: every wait in the session loop carries a timeout.
* **Tenant models** — verifiers come from the
  :class:`~repro.service.tenants.TenantBankCache`; recycling relies on
  the ``reset()`` bit-identity fixed in this PR.

Determinism: everything here waits through the scheduler and the only
randomness lives in the (seeded) workload, so under a
:class:`~repro.service.scheduler.VirtualScheduler` a session's outcome
and every metric it records are a pure function of its own script —
independent of how many other sessions run beside it.  That is the
property the loadtest's concurrent-vs-serial snapshot comparison checks
byte for byte.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable

from ..core.config import DetectorConfig
from ..core.streaming import CallStatus
from ..obs.instrument import Instrumentation
from ..protocol.gate import ProtocolGate
from ..protocol.provision import ProtocolProvisioner
from ..protocol.schedule import ProtocolConfig
from ..video.frame import Frame
from .queues import END_OF_STREAM, FrameQueue
from .scheduler import TIMEOUT, Scheduler, TaskHandle, Waiter
from .tenants import TenantBankCache

__all__ = [
    "Admission",
    "ServerConfig",
    "SessionHandle",
    "SessionOutcome",
    "SERVICE_LATENCY_BUCKETS_S",
    "VerificationServer",
]

#: Verdict-latency buckets (seconds).  A verification session is minutes
#: of call time, not milliseconds — the obs default buckets top out at
#: 10 s and would fold every session into the overflow bucket.
SERVICE_LATENCY_BUCKETS_S = (
    1.0, 2.5, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0,
    60.0, 90.0, 120.0, 180.0, 240.0, 300.0, 450.0, 600.0,
)


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Capacity, backpressure and deadline knobs of one server."""

    max_sessions: int = 64  # concurrent verification slots
    admission_queue_depth: int = 16  # waiting sessions beyond the slots
    frame_queue_depth: int = 16  # buffered frames per session
    session_deadline_s: float = 300.0  # hard cap on one session's life
    frame_timeout_s: float = 3.0  # max silence before a stall verdict
    frame_proc_s: float = 0.0013  # modelled per-frame verification cost
    tenant_cache_capacity: int = 32
    tenant_cache_shards: int = 4
    detector: DetectorConfig = dataclasses.field(default_factory=DetectorConfig)
    #: When set, the server provisions per-session nonces and binds a
    #: challenge gate to every session submitted with ``protocol=True``.
    protocol: ProtocolConfig | None = None
    #: Deployment secret the key hierarchy hangs off.  Only consulted
    #: when ``protocol`` is set; repr=False keeps it out of the default
    #: __repr__ (config objects get logged whole — R021).
    protocol_secret: str = dataclasses.field(
        default="repro-deployment-secret", repr=False
    )

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.admission_queue_depth < 0:
            raise ValueError("admission_queue_depth must be >= 0")
        if self.session_deadline_s <= 0 or self.frame_timeout_s <= 0:
            raise ValueError("deadlines must be positive")
        if self.protocol is not None and not self.protocol_secret:
            raise ValueError("protocol_secret must be non-empty when protocol is set")


@dataclasses.dataclass(frozen=True)
class SessionOutcome:
    """Terminal record of one session."""

    session_id: str
    tenant_id: str
    status: CallStatus
    reason: str  # completed | deadline | stall
    frames: int
    dropped: int
    attempts: int
    conclusive_attempts: int
    duration_s: float


@dataclasses.dataclass(frozen=True)
class Admission:
    """What :meth:`VerificationServer.submit` hands back."""

    decision: str  # "admitted" | "rejected"
    reason: str | None = None  # rejections: "queue_full"
    handle: "SessionHandle | None" = None

    @property
    def admitted(self) -> bool:
        return self.decision == "admitted"


class SessionHandle:
    """Caller's side of an admitted session: feed frames, await verdict."""

    __slots__ = ("session_id", "tenant_id", "queue", "gate", "_task")

    def __init__(
        self,
        session_id: str,
        tenant_id: str,
        queue: FrameQueue,
        gate: ProtocolGate | None = None,
    ) -> None:
        self.session_id = session_id
        self.tenant_id = tenant_id
        self.queue = queue
        self.gate = gate
        self._task: TaskHandle | None = None

    def push_frame(self, transmitted: Frame, received: Frame) -> None:
        """Non-blocking ingest; overload sheds the oldest buffered pair."""
        self.queue.put((transmitted, received))

    def finish(self) -> None:
        """Signal the clean end of the stream (caller hung up)."""
        self.queue.close()

    async def result(self) -> SessionOutcome:
        assert self._task is not None  # set before submit() returns
        return await self._task.join()


class VerificationServer:
    """Admission-controlled pool of verification sessions."""

    def __init__(
        self,
        scheduler: Scheduler,
        bank_provider: Callable[[str], object],
        config: ServerConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config or ServerConfig()
        self.instrumentation = Instrumentation.ensure(instrumentation)
        self.tenants = TenantBankCache(
            scheduler,
            bank_provider,
            capacity=self.config.tenant_cache_capacity,
            shards=self.config.tenant_cache_shards,
            detector_config=self.config.detector,
            instrumentation=self.instrumentation,
        )
        # Nonce authority, shared by every session of the server.  Its
        # ledger is only touched inside submit() (synchronous, submit
        # order), which is what keeps protocol verdicts identical between
        # a concurrent run and its serial replay.
        self.provisioner: ProtocolProvisioner | None = None
        if self.config.protocol is not None:
            self.provisioner = ProtocolProvisioner(
                self.config.protocol_secret,
                config=self.config.detector,
                protocol=self.config.protocol,
                instrumentation=self.instrumentation,
            )
        self._active = 0  # sessions holding a verification slot
        self._committed = 0  # admitted and not yet finished (incl. queued)
        self._slot_waiters: deque[Waiter] = deque()  # admission queue (FIFO)
        self._session_seq = 0
        # Concurrency high-water marks are wall-order facts, not
        # determinism-checked metrics: under concurrent execution they
        # legitimately differ from a serial replay, so they live as plain
        # attributes instead of registry series.
        self.peak_active = 0
        self.peak_queued = 0

    # -- admission -----------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return self._active

    @property
    def queued_sessions(self) -> int:
        return len(self._slot_waiters)

    def submit(
        self,
        tenant_id: str,
        session_id: str | None = None,
        protocol: bool = False,
    ) -> Admission:
        """Admit (or reject) one session; never blocks the caller.

        Admitted sessions start verifying immediately when a slot is
        free, otherwise they wait in the FIFO admission queue.  When the
        queue is full the submission is rejected outright — the caller
        learns *now*, instead of a timeout learning it for them later.

        ``protocol=True`` (requires :attr:`ServerConfig.protocol`)
        provisions a session nonce and binds the challenge gate to the
        session's verifier: the prover is then expected to answer the
        nonce-derived schedule, and verdicts gain the ``REPLAY`` /
        ``STALE`` vocabulary.  Provisioning happens here, synchronously,
        so the commitment ledger advances in submit order.
        """
        instr = self.instrumentation
        # Admission is accounted at submit time (not when the session
        # task first runs): a synchronous burst of submits must fill the
        # queue immediately, or a fast caller could over-admit.
        capacity = self.config.max_sessions + self.config.admission_queue_depth
        if self._committed >= capacity:
            instr.count("service_admissions_total", decision="rejected", reason="queue_full")
            return Admission(decision="rejected", reason="queue_full")
        self._committed += 1
        if session_id is None:
            self._session_seq += 1
            session_id = f"s{self._session_seq:05d}"
        gate = None
        if protocol:
            if self.provisioner is None:
                self._committed -= 1
                instr.count(
                    "service_admissions_total",
                    decision="rejected",
                    reason="protocol_disabled",
                )
                return Admission(decision="rejected", reason="protocol_disabled")
            gate = self.provisioner.provision(tenant_id, session_id)
        queue = FrameQueue(self.scheduler, self.config.frame_queue_depth)
        handle = SessionHandle(session_id, tenant_id, queue, gate=gate)
        instr.count("service_admissions_total", decision="admitted", reason="ok")
        handle._task = self.scheduler.spawn(
            self._run_session(handle), name=f"session:{session_id}"
        )
        return Admission(decision="admitted", handle=handle)

    async def _acquire_slot(self) -> None:
        if self._active < self.config.max_sessions:
            self._active += 1
            self.peak_active = max(self.peak_active, self._active)
            return
        waiter = self.scheduler.make_waiter()
        self._slot_waiters.append(waiter)
        self.peak_queued = max(self.peak_queued, len(self._slot_waiters))
        # Woken directly into the slot by _release_slot (active count
        # is transferred, not re-checked).
        await self.scheduler.park(waiter)
        self.peak_active = max(self.peak_active, self._active)

    def _release_slot(self) -> None:
        while self._slot_waiters:
            waiter = self._slot_waiters.popleft()
            if self.scheduler.resolve(waiter, True):
                return  # slot handed over; _active unchanged
        self._active -= 1

    # -- the session loop ----------------------------------------------

    async def _run_session(self, handle: SessionHandle) -> SessionOutcome:
        sched = self.scheduler
        cfg = self.config
        instr = self.instrumentation
        await self._acquire_slot()
        verifier = None
        try:
            verifier = await self.tenants.acquire(handle.tenant_id)
        except BaseException:
            self._release_slot()
            self._committed -= 1
            instr.count("service_task_failures_total", stage="tenant_fit")
            raise
        if handle.gate is not None:
            verifier.bind_protocol(handle.gate)
        start = sched.now()
        deadline = start + cfg.session_deadline_s
        frames = 0
        reason = "completed"
        try:
            while True:
                remaining = deadline - sched.now()
                if remaining <= 0:
                    reason = "deadline"
                    break
                item = await handle.queue.get(
                    timeout=min(cfg.frame_timeout_s, remaining)
                )
                if item is END_OF_STREAM:
                    break
                if item is TIMEOUT:
                    reason = "deadline" if sched.now() >= deadline else "stall"
                    break
                transmitted, received = item
                if cfg.frame_proc_s > 0:
                    await sched.sleep(cfg.frame_proc_s)
                verifier.push(transmitted, received)
                frames += 1
            state = verifier.state
            status = state.status
            condemned = (CallStatus.ATTACKER, CallStatus.REPLAY, CallStatus.STALE)
            if reason != "completed" and status not in condemned:
                # The channel (not the peer) ended the session: whatever
                # partial evidence exists is not a verdict.  Only an
                # already-raised condemnation (attacker / replay / stale)
                # survives.
                status = CallStatus.INCONCLUSIVE
            elif status is CallStatus.GATHERING:
                # Clean hang-up before the first attempt completed: a
                # terminal outcome needs a verdict-shaped status, and
                # "no attempt ever finished" is inconclusive by meaning.
                status = CallStatus.INCONCLUSIVE
            duration = sched.now() - start
            outcome = SessionOutcome(
                session_id=handle.session_id,
                tenant_id=handle.tenant_id,
                status=status,
                reason=reason,
                frames=frames,
                dropped=handle.queue.dropped,
                attempts=state.attempt_count,
                conclusive_attempts=state.conclusive_attempts,
                duration_s=duration,
            )
            instr.count("service_sessions_total", status=status.value)
            instr.count(
                "service_tenant_sessions_total",
                tenant=handle.tenant_id,
                status=status.value,
            )
            instr.count("service_session_end_total", reason=reason)
            instr.count("service_frames_processed_total", frames)
            instr.count("service_frames_dropped_total", handle.queue.dropped)
            instr.observe(
                "service_verdict_latency_s",
                duration,
                buckets=SERVICE_LATENCY_BUCKETS_S,
            )
            return outcome
        finally:
            self.tenants.release(handle.tenant_id, verifier)
            self._release_slot()
            self._committed -= 1
