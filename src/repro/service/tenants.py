"""Per-tenant model state behind an LRU cache with sharded locks.

A multi-tenant deployment cannot keep a fitted LOF bank per tenant in
memory forever, and it must not fit the same bank twice because two
sessions of one tenant raced through admission.  This module owns both
problems:

* an **LRU cache** of :class:`_TenantEntry` (fitted
  :class:`~repro.core.detector.LivenessDetector` plus a pool of recycled
  :class:`~repro.core.streaming.StreamingVerifier`\\ s), bounded by
  ``capacity``;
* **sharded locks**: a tenant's fit runs under its shard's
  :class:`~repro.service.scheduler.ServiceLock`, so concurrent sessions
  of the same tenant fit once (double-checked inside the lock) while
  tenants on different shards never contend.  Sharding uses
  ``zlib.crc32`` — the builtin ``hash`` is salted per process, which
  would make shard assignment (and hence lock-contention order)
  nondeterministic.

Verifier recycling leans on the session-lifecycle fix in this PR:
``StreamingVerifier.reset()`` is bit-identical to construction, so a
session cannot tell whether its verifier is fresh or recycled — which is
exactly what keeps the pool-vs-serial identity check honest.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Callable

from ..core.config import DetectorConfig
from ..core.detector import LivenessDetector
from ..core.streaming import StreamingVerifier
from ..obs.instrument import Instrumentation
from .scheduler import Scheduler, ServiceLock

__all__ = ["TenantBankCache"]


class _TenantEntry:
    __slots__ = ("detector", "free", "leases")

    def __init__(self, detector: LivenessDetector) -> None:
        self.detector = detector
        self.free: list[StreamingVerifier] = []
        self.leases = 0  # verifiers currently held by running sessions


class TenantBankCache:
    """LRU of fitted tenant models with a recycled-verifier pool.

    Parameters
    ----------
    scheduler:
        Time regime; the shard locks park through it.
    bank_provider:
        ``tenant_id -> bank`` callable (a ``(n, 4)`` array or a list of
        :class:`~repro.core.features.FeatureVector`).  Called at most
        once per cache residency of a tenant; stands in for the
        enrollment store.
    capacity:
        Maximum resident tenants; the least recently used entry is
        evicted on overflow.  Evicting a tenant with live sessions is
        safe — those sessions keep their verifier, only the pool and the
        cached fit are dropped.
    shards:
        Number of fit locks.  More shards, less cross-tenant contention.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        bank_provider: Callable[[str], object],
        capacity: int,
        shards: int = 4,
        detector_config: DetectorConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("tenant cache capacity must be >= 1")
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self._scheduler = scheduler
        self._bank_provider = bank_provider
        self._capacity = capacity
        self._config = detector_config or DetectorConfig()
        self._instr = Instrumentation.ensure(instrumentation)
        self._locks = [ServiceLock(scheduler) for _ in range(shards)]
        self._entries: OrderedDict[str, _TenantEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_tenants(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def _shard_of(self, tenant_id: str) -> ServiceLock:
        return self._locks[zlib.crc32(tenant_id.encode()) % len(self._locks)]

    async def acquire(self, tenant_id: str) -> StreamingVerifier:
        """Lease a verifier for one session of ``tenant_id``.

        Misses fit the tenant's bank under the shard lock (double-checked
        so a raced second session reuses the first fit).  Return the
        lease with :meth:`release` when the session ends.
        """
        entry = self._entries.get(tenant_id)
        if entry is None:
            async with self._shard_of(tenant_id):
                entry = self._entries.get(tenant_id)
                if entry is None:
                    self._instr.count("service_tenant_cache_total", event="miss")
                    detector = LivenessDetector(self._config)
                    detector.fit(self._bank_provider(tenant_id))
                    entry = _TenantEntry(detector)
                    self._entries[tenant_id] = entry
                    self._evict_over_capacity(protect=tenant_id)
                else:
                    self._instr.count("service_tenant_cache_total", event="hit")
        else:
            self._instr.count("service_tenant_cache_total", event="hit")
        self._entries.move_to_end(tenant_id)
        entry.leases += 1
        if entry.free:
            return entry.free.pop()
        return StreamingVerifier(entry.detector)

    def release(self, tenant_id: str, verifier: StreamingVerifier) -> None:
        """Return a leased verifier; reset() makes it fresh for the next
        session.  If the tenant was evicted meanwhile, the verifier is
        simply dropped."""
        entry = self._entries.get(tenant_id)
        if entry is None or entry.detector is not verifier.detector:
            return
        entry.leases -= 1
        verifier.reset()
        entry.free.append(verifier)

    def _evict_over_capacity(self, protect: str) -> None:
        while len(self._entries) > self._capacity:
            evicted = None
            for tid, entry in self._entries.items():
                # Never evict the entry being inserted (``protect``):
                # when every older resident is leased it would be the
                # only leases==0 entry — and evicting it would orphan
                # the acquire in flight.
                if entry.leases == 0 and tid != protect:
                    evicted = tid
                    break
            if evicted is None:
                # Every resident tenant has live sessions; allow the
                # temporary overshoot rather than orphaning leases.
                return
            del self._entries[evicted]
            self._instr.count("service_tenant_cache_total", event="eviction")
