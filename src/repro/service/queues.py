"""Bounded per-session frame queues with drop-oldest backpressure.

Each admitted session owns one :class:`FrameQueue`.  The ingest side
(load generator or network edge) pushes synchronously and never blocks:
when the queue is full the *oldest* buffered frame is discarded — for a
liveness check, a fresher frame is always worth more than a stale one,
and an unbounded queue would just convert overload into latency.  Drops
are counted so the SLO report can expose backpressure instead of hiding
it.

``close()`` enqueues the :data:`END_OF_STREAM` sentinel; consumers see
it after draining whatever real frames remain.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .scheduler import TIMEOUT, Scheduler, Waiter

__all__ = ["END_OF_STREAM", "FrameQueue"]


class _EndOfStream:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "END_OF_STREAM"


#: Sentinel delivered once after the final frame of a session.
END_OF_STREAM = _EndOfStream()


class FrameQueue:
    """Single-producer single-consumer bounded queue, drop-oldest policy."""

    __slots__ = ("_scheduler", "_maxsize", "_items", "_getters", "dropped", "_closed")

    def __init__(self, scheduler: Scheduler, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("FrameQueue needs maxsize >= 1")
        self._scheduler = scheduler
        self._maxsize = maxsize
        self._items: deque[Any] = deque()
        self._getters: deque[Waiter] = deque()
        self.dropped = 0
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Enqueue without blocking; sheds the oldest frame when full."""
        if self._closed:
            raise RuntimeError("put() on a closed FrameQueue")
        while self._getters:
            waiter = self._getters.popleft()
            if self._scheduler.resolve(waiter, item):
                return  # handed straight to a parked consumer
        if len(self._items) >= self._maxsize:
            self._items.popleft()
            self.dropped += 1
        self._items.append(item)

    def close(self) -> None:
        """Mark the stream finished; idempotent."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            waiter = self._getters.popleft()
            if self._scheduler.resolve(waiter, END_OF_STREAM):
                return
        self._items.append(END_OF_STREAM)

    async def get(self, timeout: float | None = None) -> Any:
        """Next frame, :data:`END_OF_STREAM`, or :data:`TIMEOUT` on stall."""
        if self._items:
            item = self._items.popleft()
            if item is END_OF_STREAM:
                self._items.appendleft(item)  # keep EOS observable forever
            return item
        if self._closed:
            return END_OF_STREAM
        waiter = self._scheduler.make_waiter()
        self._getters.append(waiter)
        result = await self._scheduler.park(waiter, timeout)
        if result is TIMEOUT:
            # Waiter may still sit in _getters; resolve() skips dead ones.
            return TIMEOUT
        return result
