"""SLO accounting: turn a service metrics snapshot into a report.

The server records raw, merge-safe series (counters and a fixed-bucket
verdict-latency histogram); this module derives the operator-facing
quantities — admission rate, p50/p99 verdict latency, drop rate, outcome
mix — from a :class:`~repro.obs.metrics.MetricsSnapshot`.  Working from
snapshots (not the live registry) means the same report logic serves a
single process, a merged pool run, or a deserialized benchmark artifact.
"""

from __future__ import annotations

import dataclasses

from ..core.streaming import CallStatus
from ..obs.metrics import MetricsSnapshot, quantile_from_buckets

__all__ = ["SLOReport", "build_slo_report"]


@dataclasses.dataclass(frozen=True)
class SLOReport:
    """Operator summary of one service run."""

    admitted: int
    rejected: int
    sessions_finished: int
    status_counts: dict[str, int]  # CallStatus.value -> sessions
    end_reasons: dict[str, int]  # completed | deadline | stall -> sessions
    frames_processed: int
    frames_dropped: int
    p50_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    tenant_cache: dict[str, int]  # hit | miss | eviction -> count
    task_failures: int
    peak_active: int = 0
    peak_queued: int = 0
    #: tenant -> {CallStatus.value -> sessions}: the per-tenant outcome
    #: mix, which is where protocol condemnations (replay / stale) show
    #: which customer is under attack.
    tenant_status: dict[str, dict[str, int]] = dataclasses.field(
        default_factory=dict
    )
    #: BindingOutcome.value -> clips, from ``protocol_bindings_total``.
    protocol_bindings: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Sessions provisioned with a challenge-binding nonce.
    protocol_sessions: int = 0

    @property
    def submitted(self) -> int:
        return self.admitted + self.rejected

    @property
    def admission_rate(self) -> float:
        return self.admitted / self.submitted if self.submitted else 0.0

    @property
    def drop_rate(self) -> float:
        offered = self.frames_processed + self.frames_dropped
        return self.frames_dropped / offered if offered else 0.0

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["submitted"] = self.submitted
        out["admission_rate"] = self.admission_rate
        out["drop_rate"] = self.drop_rate
        return out

    def lines(self) -> list[str]:
        """The report as printable rows."""
        status = " ".join(
            f"{name}={count}" for name, count in sorted(self.status_counts.items())
        )
        reasons = " ".join(
            f"{name}={count}" for name, count in sorted(self.end_reasons.items())
        )
        cache = self.tenant_cache
        out = [
            f"sessions: submitted={self.submitted} admitted={self.admitted} "
            f"rejected={self.rejected} (admission rate {self.admission_rate:.3f})",
            f"peak concurrency: active={self.peak_active} queued={self.peak_queued}",
            f"outcomes: {status or '-'}",
            f"end reasons: {reasons or '-'}",
            f"verdict latency: p50={self.p50_latency_s:.2f}s "
            f"p99={self.p99_latency_s:.2f}s mean={self.mean_latency_s:.2f}s",
            f"frames: processed={self.frames_processed} "
            f"dropped={self.frames_dropped} (drop rate {self.drop_rate:.4f})",
            f"tenant cache: hit={cache.get('hit', 0)} miss={cache.get('miss', 0)} "
            f"eviction={cache.get('eviction', 0)}",
            f"task failures: {self.task_failures}",
        ]
        if self.protocol_sessions or self.protocol_bindings:
            bindings = " ".join(
                f"{name}={count}"
                for name, count in sorted(self.protocol_bindings.items())
            )
            out.append(
                f"protocol: sessions={self.protocol_sessions} "
                f"bindings: {bindings or '-'}"
            )
        for tenant in sorted(self.tenant_status):
            mix = " ".join(
                f"{name}={count}"
                for name, count in sorted(self.tenant_status[tenant].items())
            )
            out.append(f"  tenant {tenant}: {mix}")
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


def build_slo_report(
    snapshot: MetricsSnapshot,
    peak_active: int = 0,
    peak_queued: int = 0,
) -> SLOReport:
    """Derive the SLO view from the service's metric names."""
    admitted = int(
        snapshot.counter_value(
            "service_admissions_total", decision="admitted", reason="ok"
        )
    )
    rejected = int(
        snapshot.counter_value(
            "service_admissions_total", decision="rejected", reason="queue_full"
        )
    )
    status_counts: dict[str, int] = {}
    for status in CallStatus:
        count = snapshot.counter_value("service_sessions_total", status=status.value)
        if count:
            status_counts[status.value] = int(count)
    end_reasons: dict[str, int] = {}
    for reason in ("completed", "deadline", "stall"):
        count = snapshot.counter_value("service_session_end_total", reason=reason)
        if count:
            end_reasons[reason] = int(count)
    latency = snapshot.get("service_verdict_latency_s", "histogram")
    if latency is not None and latency.count:
        p50 = quantile_from_buckets(latency.bounds, latency.bucket_counts, 0.50)
        p99 = quantile_from_buckets(latency.bounds, latency.bucket_counts, 0.99)
        mean = latency.sum / latency.count
        finished = int(latency.count)
    else:
        p50 = p99 = mean = 0.0
        finished = 0
    tenant_cache = {
        event: int(snapshot.counter_value("service_tenant_cache_total", event=event))
        for event in ("hit", "miss", "eviction")
    }
    failures = 0
    tenant_status: dict[str, dict[str, int]] = {}
    protocol_bindings: dict[str, int] = {}
    protocol_sessions = 0
    for series in snapshot.series:
        if series.kind != "counter":
            continue
        labels = dict(series.labels)
        if series.name == "service_task_failures_total":
            failures += int(series.value)
        elif series.name == "service_tenant_sessions_total":
            tenant = labels.get("tenant", "?")
            status = labels.get("status", "?")
            tenant_status.setdefault(tenant, {})[status] = int(series.value)
        elif series.name == "protocol_bindings_total":
            protocol_bindings[labels.get("outcome", "?")] = int(series.value)
        elif series.name == "protocol_nonces_issued_total":
            protocol_sessions += int(series.value)
    return SLOReport(
        admitted=admitted,
        rejected=rejected,
        sessions_finished=finished,
        status_counts=status_counts,
        end_reasons=end_reasons,
        frames_processed=int(
            snapshot.counter_value("service_frames_processed_total")
        ),
        frames_dropped=int(snapshot.counter_value("service_frames_dropped_total")),
        p50_latency_s=p50,
        p99_latency_s=p99,
        mean_latency_s=mean,
        tenant_cache=tenant_cache,
        task_failures=failures,
        peak_active=peak_active,
        peak_queued=peak_queued,
        tenant_status=tenant_status,
        protocol_bindings=protocol_bindings,
        protocol_sessions=protocol_sessions,
    )
