"""Cooperative time source for the verification service.

Everything in :mod:`repro.service` that waits — frame queues, admission
slots, deadlines, pacing sleeps — waits through a :class:`Scheduler`, so
one service codebase runs in two very different time regimes:

* :class:`VirtualScheduler` — a deterministic discrete-event mode.  Time
  is a :class:`~repro.obs.clock.ManualClock` advanced only when *every*
  registered task is parked on a scheduler primitive; due timers then
  fire strictly in ``(deadline, registration)`` order.  Two runs of the
  same workload execute the same event sequence, at any concurrency —
  the property the ``loadtest`` pool-vs-serial identity check pins down.
* :class:`~repro.service.realtime.RealTimeScheduler` — plain asyncio
  against the wall clock, for actually serving live traffic.  It lives
  in its own module because it is the service's one blessed wall-clock
  site (reprolint R002/R008 allowlist).

The scheduler also owns task lifecycle (:meth:`Scheduler.spawn` /
:class:`TaskHandle.join`): spawned coroutines never leak exceptions into
the event loop — failures are captured on the handle and re-raised at
join time, which is how the service guarantees "zero unhandled task
exceptions" under chaos.

Design rule for service code: a registered task may only suspend through
scheduler primitives (``sleep``, ``park``, ``join``, the lock/queue
built on them).  Awaiting anything else would stall virtual time.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from collections.abc import Coroutine
from typing import Any

from ..obs.clock import ManualClock

__all__ = [
    "Scheduler",
    "ServiceLock",
    "TIMEOUT",
    "TaskHandle",
    "VirtualScheduler",
    "Waiter",
]


class _Timeout:
    """Sentinel returned by :meth:`Scheduler.park` on expiry."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "TIMEOUT"


#: The unique timeout sentinel (never a legitimate queue item).
TIMEOUT = _Timeout()


class Waiter:
    """One parked task's wake-up slot (a future plus bookkeeping)."""

    __slots__ = ("fut",)

    def __init__(self) -> None:
        self.fut: asyncio.Future = asyncio.get_running_loop().create_future()


class TaskHandle:
    """Join handle of a spawned service task.

    The wrapped coroutine's result (or exception) is delivered through
    :meth:`join`; joining is itself a scheduler park, so virtual time
    keeps flowing while a task waits for another.
    """

    __slots__ = ("name", "_scheduler", "_done", "_result", "_error", "_joiners")

    def __init__(self, scheduler: "Scheduler", name: str) -> None:
        self.name = name
        self._scheduler = scheduler
        self._done = False
        self._result: Any = None
        self._error: BaseException | None = None
        self._joiners: list[Waiter] = []

    @property
    def done(self) -> bool:
        return self._done

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self._done = True
        self._result = result
        self._error = error
        joiners, self._joiners = self._joiners, []
        for waiter in joiners:
            self._scheduler.resolve(waiter, None)

    async def join(self) -> Any:
        """Wait for the task; returns its result or re-raises its error."""
        if not self._done:
            waiter = self._scheduler.make_waiter()
            self._joiners.append(waiter)
            await self._scheduler.park(waiter)
        if self._error is not None:
            raise self._error
        return self._result


class Scheduler:
    """Shared task/waiter machinery; subclasses supply the time regime."""

    def now(self) -> float:
        raise NotImplementedError

    async def sleep(self, delay: float) -> None:
        raise NotImplementedError

    async def park(self, waiter: Waiter, timeout: float | None = None) -> Any:
        """Suspend until ``waiter`` is resolved; :data:`TIMEOUT` on expiry."""
        raise NotImplementedError

    def run(self, main: Coroutine, wall_guard_s: float | None = None) -> Any:
        """Drive ``main`` (and everything it spawns) to completion.

        ``wall_guard_s`` bounds the *wall-clock* run time with an
        ``asyncio.wait_for``: a wedged run (a task awaiting something
        the scheduler cannot see) surfaces as ``asyncio.TimeoutError``
        instead of hanging forever — the tests' no-hang safety net.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Machinery shared by both regimes
    # ------------------------------------------------------------------

    def make_waiter(self) -> Waiter:
        return Waiter()

    def resolve(self, waiter: Waiter, value: Any) -> bool:
        """Wake a parked task; False when the waiter already fired
        (timed out or was woken by someone else)."""
        if waiter.fut.done():
            return False
        waiter.fut.set_result(value)
        self._on_resolved()
        return True

    def _on_resolved(self) -> None:
        """Hook: the virtual regime tracks parked-task counts here."""

    def _task_started(self) -> None:
        """Hook: a spawned task began running."""

    def _task_finished(self) -> None:
        """Hook: a spawned task finished (normally or not)."""

    def spawn(self, coro: Coroutine, name: str = "task") -> TaskHandle:
        """Start a service task; its outcome is read back via ``join``."""
        handle = TaskHandle(self, name)
        self._task_started()

        async def _wrapped() -> None:
            result, error = None, None
            try:
                result = await coro
            except Exception as exc:  # noqa: BLE001 - delivered at join()
                error = exc
            finally:
                self._task_finished()
                handle._finish(result, error)

        asyncio.get_running_loop().create_task(_wrapped(), name=name)
        return handle


#: Virtual delays snap to this dyadic grid (2^-20 s, ~0.95 µs).  Dyadic
#: rationals of bounded magnitude are exact in binary floating point, so
#: every virtual timestamp is a sum of exact terms and every duration
#: (end - start) is translation-invariant: a session measures the same
#: duration bit-for-bit whether it ran alone or among hundreds — the
#: property that keeps the concurrent-vs-serial latency histograms
#: byte-identical.
_TIME_GRID = float(1 << 20)


def _quantize(delay: float) -> float:
    return round(delay * _TIME_GRID) / _TIME_GRID


class VirtualScheduler(Scheduler):
    """Deterministic discrete-event scheduler over a :class:`ManualClock`.

    The driver loop (:meth:`run`) alternates two phases: let every
    runnable task execute until it parks, then pop the earliest pending
    timer, advance the manual clock to it, and wake its owner.  Ties on
    the deadline break by registration order, so the event sequence is a
    pure function of the workload — wall time never enters.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._clock = ManualClock(start)
        self._timers: list[tuple[float, int, Waiter]] = []
        self._seq = 0
        self._tasks = 0  # live registered tasks
        self._parked = 0  # of which: awaiting an unresolved waiter
        self._idle: asyncio.Event | None = None

    def now(self) -> float:
        return self._clock.now()

    @property
    def clock(self) -> ManualClock:
        """The underlying manual clock (for e.g. a virtual-time tracer)."""
        return self._clock

    # -- parked/idle bookkeeping ---------------------------------------

    def _maybe_idle(self) -> None:
        if self._idle is not None and self._parked == self._tasks:
            self._idle.set()

    def _on_resolved(self) -> None:
        self._parked -= 1

    def _task_started(self) -> None:
        self._tasks += 1

    def _task_finished(self) -> None:
        self._tasks -= 1
        self._maybe_idle()

    # -- primitives ----------------------------------------------------

    def _register_timer(self, deadline: float, waiter: Waiter) -> None:
        self._seq += 1
        heapq.heappush(self._timers, (deadline, self._seq, waiter))

    async def park(self, waiter: Waiter, timeout: float | None = None) -> Any:
        if timeout is not None:
            self._register_timer(self.now() + _quantize(timeout), waiter)
        self._parked += 1
        self._maybe_idle()
        return await waiter.fut

    async def sleep(self, delay: float) -> None:
        waiter = self.make_waiter()
        self._register_timer(self.now() + _quantize(max(delay, 0.0)), waiter)
        self._parked += 1
        self._maybe_idle()
        await waiter.fut

    # -- the driver ----------------------------------------------------

    def _fire_next_timer(self) -> None:
        while self._timers:
            deadline, _, waiter = heapq.heappop(self._timers)
            if waiter.fut.done():
                continue  # lazily discarded (woken early, e.g. queue put)
            if deadline > self.now():
                self._clock.advance(deadline - self.now())
            self.resolve(waiter, TIMEOUT)
            return
        raise RuntimeError(
            "virtual-time deadlock: every task is parked and no timer is "
            "pending — some wait is missing its timeout"
        )

    def run(self, main: Coroutine, wall_guard_s: float | None = None) -> Any:
        if wall_guard_s is None:
            return asyncio.run(self._drive(main))

        async def _guarded() -> Any:
            return await asyncio.wait_for(self._drive(main), wall_guard_s)

        return asyncio.run(_guarded())

    async def _drive(self, main: Coroutine) -> Any:
        self._idle = asyncio.Event()
        handle = self.spawn(main, name="main")
        while not handle.done:
            if self._parked != self._tasks:
                self._idle.clear()
                await self._idle.wait()
                continue
            self._fire_next_timer()
            # Give the woken task the loop before re-checking idleness.
            self._idle.clear()
            await asyncio.sleep(0)
        self._idle = None
        return await handle.join()


class ServiceLock:
    """FIFO mutex built on scheduler parks (fair across sessions).

    ``asyncio.Lock`` would park tasks on futures the virtual driver
    cannot see, stalling virtual time; this lock routes contention
    through the scheduler so a blocked fit request is just another
    parked task.
    """

    __slots__ = ("_scheduler", "_locked", "_waiters")

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        self._locked = False
        self._waiters: deque[Waiter] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    async def acquire(self) -> None:
        if not self._locked:
            self._locked = True
            return
        waiter = self._scheduler.make_waiter()
        self._waiters.append(waiter)
        # Woken directly into ownership: release() hands the lock over
        # without ever marking it free (no thundering herd).
        await self._scheduler.park(waiter)

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError("release of an unheld ServiceLock")
        while self._waiters:
            waiter = self._waiters.popleft()
            if self._scheduler.resolve(waiter, True):
                return
        self._locked = False

    async def __aenter__(self) -> "ServiceLock":
        await self.acquire()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.release()
