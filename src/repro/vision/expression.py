"""Head pose and expression dynamics.

The paper lets volunteers "freely move the head as long as the whole face
can be captured" and talk during the chat (Sec. II-D, IV).  Both movements
matter to the detector: head motion jitters the nasal-bridge ROI, and
blinking/talking is exactly why the paper measures the nose rather than
the eyes or mouth.

:class:`ExpressionTrack` is a deterministic (seeded) generator of
:class:`PoseState` values: smooth multi-sinusoid head drift, Poisson blink
events, and a band-limited talking signal.  Face reenactment transfers
*these* dynamics from the driving actor onto the target face — which is
why the attack simulator reuses this class directly.
"""

from __future__ import annotations

import bisect
import dataclasses
import math

import numpy as np

__all__ = ["PoseState", "ExpressionTrack"]


@dataclasses.dataclass(frozen=True)
class PoseState:
    """Instantaneous head pose and expression.

    ``center_x``/``center_y`` are in normalized frame coordinates [0, 1];
    ``scale`` is the face half-width as a fraction of the frame width;
    ``roll`` is in radians; ``blink`` and ``mouth_open`` are in [0, 1].
    """

    center_x: float
    center_y: float
    scale: float
    roll: float
    blink: float
    mouth_open: float


@dataclasses.dataclass(frozen=True)
class _Blink:
    start_s: float
    duration_s: float

    def amount(self, t: float) -> float:
        """Eyelid closure in [0, 1] (triangular profile)."""
        phase = (t - self.start_s) / self.duration_s
        if phase < 0.0 or phase > 1.0:
            return 0.0
        return 1.0 - abs(2.0 * phase - 1.0)


class ExpressionTrack:
    """Seeded pose/expression process for one performance.

    Parameters
    ----------
    seed:
        Seed of the internal generator; two tracks with the same seed
        produce identical performances (the property reenactment
        transfer relies on in tests).
    movement_amplitude:
        Scale of head translation, as a fraction of the frame
        (user-specific; the dataset draws it per volunteer).
    scale_base:
        Nominal face half-width as a fraction of frame width.
    blink_rate_hz:
        Poisson rate of blinks (humans blink roughly every 3-6 s).
    talking:
        Whether the mouth articulates.
    duration_s:
        Horizon for pre-drawing blink events.
    """

    def __init__(
        self,
        seed: int,
        movement_amplitude: float = 0.02,
        scale_base: float = 0.30,
        blink_rate_hz: float = 0.25,
        talking: bool = True,
        duration_s: float = 600.0,
    ) -> None:
        if movement_amplitude < 0:
            raise ValueError("movement_amplitude must be non-negative")
        if not 0.05 <= scale_base <= 0.45:
            raise ValueError("scale_base must keep the face inside the frame")
        if blink_rate_hz < 0:
            raise ValueError("blink_rate_hz must be non-negative")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self.movement_amplitude = movement_amplitude
        self.scale_base = scale_base
        self.talking = talking
        rng = np.random.default_rng(seed)

        # Head drift: sum of three incommensurate sinusoids per axis.
        self._freqs_x = rng.uniform(0.03, 0.25, size=3)
        self._freqs_y = rng.uniform(0.03, 0.25, size=3)
        self._phases_x = rng.uniform(0.0, 2.0 * math.pi, size=3)
        self._phases_y = rng.uniform(0.0, 2.0 * math.pi, size=3)
        self._amps = np.array([0.55, 0.3, 0.15])

        # Slow in-plane rotation and distance (scale) breathing.
        self._roll_amp = float(rng.uniform(0.0, 0.05))
        self._roll_freq = float(rng.uniform(0.02, 0.1))
        self._roll_phase = float(rng.uniform(0.0, 2.0 * math.pi))
        self._scale_amp = float(rng.uniform(0.0, 0.02))
        self._scale_freq = float(rng.uniform(0.02, 0.08))
        self._scale_phase = float(rng.uniform(0.0, 2.0 * math.pi))

        # Blink events over the whole horizon (kept sorted for bisection).
        self._blinks: list[_Blink] = []
        if blink_rate_hz > 0:
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / blink_rate_hz))
                if t >= duration_s:
                    break
                self._blinks.append(_Blink(start_s=t, duration_s=float(rng.uniform(0.15, 0.3))))
        self._blink_starts = [b.start_s for b in self._blinks]

        # Talking: band-limited mouth motion.
        self._mouth_freqs = rng.uniform(0.8, 2.5, size=3)
        self._mouth_phases = rng.uniform(0.0, 2.0 * math.pi, size=3)

    def sample(self, t: float) -> PoseState:
        """Pose at time ``t`` (seconds)."""
        if t < 0:
            raise ValueError("time must be non-negative")
        dx = float(
            np.sum(self._amps * np.sin(2.0 * math.pi * self._freqs_x * t + self._phases_x))
        )
        dy = float(
            np.sum(self._amps * np.sin(2.0 * math.pi * self._freqs_y * t + self._phases_y))
        )
        center_x = 0.5 + self.movement_amplitude * dx
        center_y = 0.48 + self.movement_amplitude * dy
        roll = self._roll_amp * math.sin(2.0 * math.pi * self._roll_freq * t + self._roll_phase)
        scale = self.scale_base + self._scale_amp * math.sin(
            2.0 * math.pi * self._scale_freq * t + self._scale_phase
        )

        # Only the most recent blink can be active (blinks are brief and
        # sparse); bisect instead of scanning the whole horizon.
        blink = 0.0
        if self._blinks:
            pos = bisect.bisect_right(self._blink_starts, t)
            if pos > 0:
                blink = self._blinks[pos - 1].amount(t)

        mouth = 0.0
        if self.talking:
            raw = float(
                np.mean(np.sin(2.0 * math.pi * self._mouth_freqs * t + self._mouth_phases))
            )
            mouth = max(0.0, raw)
        return PoseState(
            center_x=center_x,
            center_y=center_y,
            scale=scale,
            roll=roll,
            blink=blink,
            mouth_open=mouth,
        )

    def sample_many(self, times: np.ndarray) -> list[PoseState]:
        """Poses for an array of times (convenience for the renderer)."""
        return [self.sample(float(t)) for t in np.asarray(times, dtype=np.float64)]
