"""Raster renderer: face + background under time-varying illumination.

Produces *linear scene radiance* maps (reflectance times illuminance, per
channel — the Von Kries model of Sec. II-C) that the camera substrate then
exposes, gamma-encodes and degrades into display-referred frames.  Ground
truth landmark positions are returned alongside each raster so tests can
quantify the landmark detector's error.

The renderer is deliberately simple (an ellipse head with shaded skin,
hair, eyes, nose, mouth, optional glasses over a structured wall), but it
is a *real* image: the landmark detector downstream runs actual
segmentation on these pixels, and the liveness detector reads actual pixel
luminance out of the rendered nasal ROI.
"""

from __future__ import annotations

import math

import numpy as np

from ..vision.expression import PoseState
from ..vision.face_model import FaceModel
from ..vision.geometry import Point

__all__ = ["BackgroundModel", "FaceRenderer", "RenderResult"]


class BackgroundModel:
    """A static wall behind the user.

    The wall has a reflectance gradient and a darker furniture region, so
    Alice's auto-exposure (metering different zones) produces genuinely
    different frame luminances — the mechanism behind the paper's
    "change the metering area by touching the smartphone screen".

    ``screen_coupling`` is the fraction of screen illuminance that also
    reaches the wall (the wall is further from the screen than the face).
    """

    def __init__(
        self,
        height: int,
        width: int,
        seed: int = 0,
        base_reflectance: float = 0.38,
        dark_reflectance: float = 0.10,
        bright_reflectance: float = 0.75,
        screen_coupling: float = 0.2,
    ) -> None:
        if height <= 0 or width <= 0:
            raise ValueError("background dimensions must be positive")
        if not 0 <= screen_coupling <= 1:
            raise ValueError("screen_coupling must lie in [0, 1]")
        self.height = height
        self.width = width
        self.screen_coupling = screen_coupling
        rng = np.random.default_rng(seed)

        xs = np.linspace(0.0, 1.0, width)[None, :]
        ys = np.linspace(0.0, 1.0, height)[:, None]
        gradient = base_reflectance * (0.85 + 0.3 * xs + 0.0 * ys)
        reflectance = np.repeat(gradient[:, :, None], 3, axis=2)
        # Slight cool tint so the wall is chromatically distinct from skin.
        reflectance[:, :, 2] *= 1.08
        reflectance[:, :, 0] *= 0.95

        # A dark region (furniture / doorway) on one side...
        dark_w = int(width * rng.uniform(0.15, 0.25))
        dark_side = rng.random() < 0.5
        if dark_side:
            reflectance[:, :dark_w, :] = dark_reflectance
        else:
            reflectance[:, width - dark_w :, :] = dark_reflectance
        # ...and a bright region (window / lamp spill) on the other.
        bright_w = int(width * rng.uniform(0.12, 0.2))
        y0 = int(height * rng.uniform(0.0, 0.3))
        y1 = y0 + int(height * rng.uniform(0.3, 0.5))
        if dark_side:
            reflectance[y0:y1, width - bright_w :, :] = bright_reflectance
        else:
            reflectance[y0:y1, :bright_w, :] = bright_reflectance

        self.reflectance = np.clip(reflectance, 0.02, 0.95)
        # Normalized locations of the dark and bright zones (metering targets).
        if dark_side:
            self.dark_spot = (dark_w / (2.0 * width), 0.5)
            self.bright_spot = (1.0 - bright_w / (2.0 * width), (y0 + y1) / (2.0 * height))
        else:
            self.dark_spot = (1.0 - dark_w / (2.0 * width), 0.5)
            self.bright_spot = (bright_w / (2.0 * width), (y0 + y1) / (2.0 * height))

    def radiance(self, ambient_lux: float, screen_lux: float = 0.0) -> np.ndarray:
        """Linear radiance of the wall under the given illumination."""
        illum = ambient_lux + self.screen_coupling * screen_lux
        return self.reflectance * illum


class RenderResult:
    """One rendered raster plus its ground truth."""

    __slots__ = ("radiance", "landmarks", "face_visible")

    def __init__(
        self,
        radiance: np.ndarray,
        landmarks: dict[str, list[Point]],
        face_visible: bool,
    ) -> None:
        self.radiance = radiance
        self.landmarks = landmarks
        self.face_visible = face_visible


class FaceRenderer:
    """Render a :class:`FaceModel` over a :class:`BackgroundModel`.

    Parameters
    ----------
    face:
        The person to render.
    height, width:
        Raster size in pixels.
    background:
        Wall model; a default one is built when omitted.
    seed:
        Seed for per-frame stochastic effects (glasses glints).
    """

    def __init__(
        self,
        face: FaceModel,
        height: int = 96,
        width: int = 96,
        background: BackgroundModel | None = None,
        seed: int = 0,
    ) -> None:
        if height <= 0 or width <= 0:
            raise ValueError("raster dimensions must be positive")
        self.face = face
        self.height = height
        self.width = width
        self.background = background or BackgroundModel(height, width, seed=seed)
        if self.background.height != height or self.background.width != width:
            raise ValueError("background raster size must match renderer size")
        self._rng = np.random.default_rng(seed + 0x5EED)
        ys, xs = np.mgrid[0:height, 0:width]
        self._xs = xs.astype(np.float64) + 0.5
        self._ys = ys.astype(np.float64) + 0.5

    def _pose_params(self, pose: PoseState) -> tuple[float, float, float, float]:
        """(center_x, center_y, half_width, half_height) in pixels."""
        cx = pose.center_x * self.width
        cy = pose.center_y * self.height
        ax = max(pose.scale * self.width, 1.0)
        ay = ax * self.face.face_aspect
        return cx, cy, ax, ay

    def _face_local(self, pose: PoseState) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel face-local (u, v) coordinates for the given pose."""
        cx, cy, ax, ay = self._pose_params(pose)
        cos_r = math.cos(pose.roll)
        sin_r = math.sin(pose.roll)
        dx = self._xs - cx
        dy = self._ys - cy
        u = (cos_r * dx + sin_r * dy) / ax
        v = (-sin_r * dx + cos_r * dy) / ay
        return u, v

    def landmark_positions(self, pose: PoseState) -> dict[str, list[Point]]:
        """Ground-truth pixel coordinates of every canonical landmark."""
        cx, cy, ax, ay = self._pose_params(pose)
        cos_r = math.cos(pose.roll)
        sin_r = math.sin(pose.roll)
        out: dict[str, list[Point]] = {}
        for name, coords in self.face.landmark_layout().items():
            points = []
            for u, v in coords:
                px = u * ax
                py = v * ay
                points.append(Point(cx + cos_r * px - sin_r * py, cy + sin_r * px + cos_r * py))
            out[name] = points
        return out

    def render(
        self,
        pose: PoseState,
        face_illuminance_lux: float,
        ambient_lux: float,
        screen_lux: float = 0.0,
    ) -> RenderResult:
        """Render one raster.

        ``face_illuminance_lux`` is the total light on the face (ambient
        plus screen contribution, already combined by the caller);
        ``ambient_lux``/``screen_lux`` drive the background separately.
        """
        if face_illuminance_lux < 0 or ambient_lux < 0 or screen_lux < 0:
            raise ValueError("illuminance values must be non-negative")
        radiance = self.background.radiance(ambient_lux, screen_lux).copy()
        u, v = self._face_local(pose)
        r2 = u * u + v * v
        mask = r2 <= 1.0
        face_visible = bool(mask.sum() >= 16)

        if face_visible:
            face = self.face
            # Lambertian-ish shading: cheeks fall off, forehead catches light.
            shade = np.clip(1.0 - 0.25 * u * u - 0.12 * np.maximum(v, 0.0) ** 2, 0.55, 1.0)
            skin = np.multiply.outer(shade, face.skin_reflectance)

            # Nose: boosted reflectance (it faces the screen nearly head-on).
            nose = (np.abs(u) < 0.15) & (v > -0.33) & (v < 0.26)
            skin[nose] = np.multiply.outer(shade[nose], face.nose_reflectance)

            # Hair occludes the top of the ellipse.
            if face.hair_fraction > 0:
                hair = v < -(1.0 - 2.0 * face.hair_fraction)
                skin[hair] = 0.06

            # Eyes (closed eyes revert to skin, which is the point of
            # measuring the nose instead).
            openness = 1.0 - pose.blink
            if openness > 0.1:
                for ex in (-0.42, 0.42):
                    du = (u - ex) / 0.13
                    dv = (v + 0.22) / max(0.065 * openness, 1e-3)
                    eye = (du * du + dv * dv <= 1.0) & mask
                    skin[eye] = face.eye_reflectance

            # Mouth opens while talking.
            mouth_h = 0.03 + 0.09 * pose.mouth_open
            du = u / 0.22
            dv = (v - 0.55) / mouth_h
            mouth = (du * du + dv * dv <= 1.0) & mask
            skin[mouth] = face.mouth_reflectance

            face_radiance = skin * face_illuminance_lux

            # Glasses: dark frames plus stochastic specular glints that
            # track the *ambient* sources (a noise term for the detector).
            if face.has_glasses:
                ring = np.abs(np.sqrt((u / 0.19) ** 2 + ((v + 0.22) / 0.12) ** 2) - 1.0)
                frames = (ring < 0.12) & ((np.abs(u) > 0.2) & (np.abs(u) < 0.62))
                face_radiance[frames & mask] = 0.04 * face_illuminance_lux
                if self._rng.random() < 0.3:
                    gx = float(self._rng.uniform(-0.5, 0.5))
                    glint = ((u - gx) ** 2 + (v + 0.22) ** 2) < 0.004
                    face_radiance[glint & mask] = ambient_lux * 2.5

            radiance[mask] = face_radiance[mask]

        return RenderResult(
            radiance=radiance,
            landmarks=self.landmark_positions(pose),
            face_visible=face_visible,
        )
