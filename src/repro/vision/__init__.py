"""Face rendering and landmark detection substrate."""

from .expression import ExpressionTrack, PoseState
from .face_model import SKIN_TONES, FaceModel, make_face
from .geometry import Point, Rect, square_around
from .landmarks import FaceLandmarks, LandmarkDetector, mean_landmark_error
from .renderer import BackgroundModel, FaceRenderer, RenderResult

__all__ = [
    "ExpressionTrack",
    "PoseState",
    "SKIN_TONES",
    "FaceModel",
    "make_face",
    "Point",
    "Rect",
    "square_around",
    "FaceLandmarks",
    "LandmarkDetector",
    "mean_landmark_error",
    "BackgroundModel",
    "FaceRenderer",
    "RenderResult",
]
