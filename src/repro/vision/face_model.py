"""Parametric synthetic face model.

The paper's detector consumes exactly one thing from the face: the
luminance of a small, landmark-anchored patch of skin on the lower nasal
bridge.  This model therefore captures what matters for that signal —
per-channel skin reflectance (Von Kries, Sec. II-C), the geometric layout
of the landmarks the detection API reports (Fig. 5), and the appearance
cues the landmark detector keys on — without pretending to be a graphics
engine.

Face-local coordinates: ``(u, v)`` with the face ellipse ``u^2 + v^2 <= 1``,
``u`` growing to the image right, ``v`` growing downwards (chin at
``v = 1``).  The renderer maps these to pixels via a pose.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["FaceModel", "LANDMARK_LAYOUT", "make_face", "SKIN_TONES"]


#: Canonical landmark layout in face-local coordinates, mirroring the
#: points the paper's facial-recognition API reports (Fig. 5): four points
#: down the nasal bridge and five across the nasal tip, plus eyes and
#: mouth used by the detector's segmentation sanity checks.
LANDMARK_LAYOUT: dict[str, tuple[tuple[float, float], ...]] = {
    "nasal_bridge": ((0.0, -0.28), (0.0, -0.17), (0.0, -0.06), (0.0, 0.05)),
    "nasal_tip": ((-0.12, 0.18), (-0.06, 0.20), (0.0, 0.21), (0.06, 0.20), (0.12, 0.18)),
    "left_eye": ((-0.42, -0.22),),
    "right_eye": ((0.42, -0.22),),
    "mouth": ((0.0, 0.55),),
}


#: Named skin tones with per-channel diffuse reflectance.  The paper's
#: population deliberately spans dark and light skin (Sec. VIII-A); the
#: liveness signal scales with reflectance, so tone diversity stresses
#: the detector's prominence thresholds.
SKIN_TONES: dict[str, tuple[float, float, float]] = {
    "light": (0.62, 0.46, 0.37),
    "tan": (0.50, 0.36, 0.28),
    "medium": (0.42, 0.30, 0.23),
    "brown": (0.34, 0.24, 0.18),
    "dark": (0.26, 0.18, 0.14),
}


@dataclasses.dataclass(frozen=True)
class FaceModel:
    """Appearance parameters of one synthetic person.

    Attributes
    ----------
    name:
        Identifier (used in dataset bookkeeping).
    skin_reflectance:
        Per-channel diffuse reflectance of the skin, shape ``(3,)``,
        values in (0, 1).
    nose_boost:
        Multiplicative reflectance boost on the nasal bridge/tip — the
        nose catches screen light nearly head-on, which is why the paper
        picks it as the measurement site.
    eye_reflectance:
        Scalar reflectance of the eye region (dark, chromatically
        neutral, so the landmark detector's skin segmentation excludes it).
    mouth_reflectance:
        Scalar reflectance of the open-mouth region.
    face_aspect:
        Height/width ratio of the face ellipse.
    has_glasses:
        Whether the person wears glasses; glasses add specular glints
        near the eyes (a noise source the paper calls out in Sec. IV).
    hair_fraction:
        Fraction of the upper face ellipse covered by hair (occlusion).
    """

    name: str
    skin_reflectance: np.ndarray
    nose_boost: float = 1.12
    eye_reflectance: float = 0.09
    mouth_reflectance: float = 0.12
    face_aspect: float = 1.32
    has_glasses: bool = False
    hair_fraction: float = 0.12

    def __post_init__(self) -> None:
        reflectance = np.asarray(self.skin_reflectance, dtype=np.float64)
        if reflectance.shape != (3,):
            raise ValueError("skin_reflectance must have shape (3,)")
        if np.any(reflectance <= 0) or np.any(reflectance >= 1):
            raise ValueError("skin reflectance must lie in (0, 1)")
        object.__setattr__(self, "skin_reflectance", reflectance)
        if self.nose_boost <= 0:
            raise ValueError("nose_boost must be positive")
        if not 0 < self.eye_reflectance < 1:
            raise ValueError("eye_reflectance must lie in (0, 1)")
        if not 0 < self.mouth_reflectance < 1:
            raise ValueError("mouth_reflectance must lie in (0, 1)")
        if self.face_aspect <= 0:
            raise ValueError("face_aspect must be positive")
        if not 0 <= self.hair_fraction < 0.5:
            raise ValueError("hair_fraction must lie in [0, 0.5)")

    @property
    def nose_reflectance(self) -> np.ndarray:
        """Reflectance of the nasal area (skin boosted, capped below 1)."""
        return np.minimum(self.skin_reflectance * self.nose_boost, 0.98)

    def landmark_layout(self) -> dict[str, tuple[tuple[float, float], ...]]:
        """Canonical landmark coordinates (face-local)."""
        return dict(LANDMARK_LAYOUT)


def make_face(
    name: str,
    tone: str = "light",
    rng: np.random.Generator | None = None,
    has_glasses: bool = False,
) -> FaceModel:
    """Build a :class:`FaceModel` from a named skin tone.

    When ``rng`` is given, reflectance and geometry receive small
    per-person perturbations so no two synthetic volunteers are identical.
    """
    if tone not in SKIN_TONES:
        raise ValueError(f"unknown skin tone {tone!r}; expected one of {sorted(SKIN_TONES)}")
    reflectance = np.array(SKIN_TONES[tone], dtype=np.float64)
    face_aspect = 1.32
    hair_fraction = 0.12
    if rng is not None:
        reflectance = reflectance * rng.uniform(0.92, 1.08)
        reflectance = np.clip(reflectance, 0.02, 0.95)
        face_aspect = float(rng.uniform(1.25, 1.40))
        hair_fraction = float(rng.uniform(0.05, 0.2))
    return FaceModel(
        name=name,
        skin_reflectance=reflectance,
        face_aspect=face_aspect,
        has_glasses=has_glasses,
        hair_fraction=hair_fraction,
    )
