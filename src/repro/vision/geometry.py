"""Small 2-D geometry helpers shared by the vision stack.

Coordinates follow image convention: ``x`` grows rightwards (columns),
``y`` grows downwards (rows).  All helpers are pure and numpy-friendly.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = ["Point", "Rect", "clamp", "square_around"]


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty clamp interval [{low}, {high}]")
    return max(low, min(high, value))


@dataclasses.dataclass(frozen=True)
class Point:
    """An (x, y) location in image coordinates (pixels, float)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return the point shifted by (dx, dy)."""
        return Point(self.x + dx, self.y + dy)

    def scaled(self, factor: float, origin: "Point | None" = None) -> "Point":
        """Scale about ``origin`` (default: the image origin)."""
        ox, oy = (origin.x, origin.y) if origin is not None else (0.0, 0.0)
        return Point(ox + (self.x - ox) * factor, oy + (self.y - oy) * factor)

    def as_array(self) -> np.ndarray:
        """Return ``array([x, y])``."""
        return np.array([self.x, self.y], dtype=np.float64)


@dataclasses.dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[x0, x1) x [y0, y1)``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the half-open rectangle."""
        return self.x0 <= point.x < self.x1 and self.y0 <= point.y < self.y1

    def intersect(self, other: "Rect") -> "Rect | None":
        """Intersection rectangle, or ``None`` when disjoint."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Rect(x0, y0, x1, y1)

    def clipped_to(self, width: float, height: float) -> "Rect | None":
        """Clip to an image of the given size; ``None`` if fully outside."""
        return self.intersect(Rect(0.0, 0.0, float(width), float(height)))

    def pixel_slices(self) -> tuple[slice, slice]:
        """Integer (row, column) slices covering the rectangle.

        The rectangle is rounded outward-inward to the nearest pixel grid:
        start coordinates round down, end coordinates round up, so a
        rectangle always covers at least the pixels it geometrically
        overlaps.  Callers must clip to the image first.
        """
        row = slice(int(math.floor(self.y0)), max(int(math.ceil(self.y1)), int(math.floor(self.y0)) + 1))
        col = slice(int(math.floor(self.x0)), max(int(math.ceil(self.x1)), int(math.floor(self.x0)) + 1))
        return row, col


def square_around(center: Point, side: float) -> Rect:
    """Axis-aligned square of the given ``side`` centered on ``center``.

    This is the ROI shape the paper extracts on the lower nasal bridge
    (Sec. IV, Fig. 5): side ``l = |b1 - b2|`` centered on the bridge point.
    """
    if side < 0:
        raise ValueError("square side must be non-negative")
    half = side / 2.0
    return Rect(center.x - half, center.y - half, center.x + half, center.y + half)
