"""Facial landmark detection over rendered frames.

Stand-in for the facial-recognition API the paper uses (its ref. [19],
dlib under the hood): given a display-referred RGB frame, report the four
nasal-bridge points and five nasal-tip points of Fig. 5 (plus eyes and
mouth), or ``None`` when no face is found.

The detector is a genuine pixel-level algorithm, not a metadata lookup:

1. **Skin segmentation** — skin chromaticity (red-dominant, blue-poor) is
   illumination-invariant under the Von Kries model, so thresholding the
   r/b chromaticities finds skin regardless of screen/ambient level.
2. **Ellipse fit** — face width from robust x-percentiles of the skin
   mask, vertical anchor on the chin (the hairline is unreliable), a
   population-prior aspect ratio for face height.
3. **Landmark regression** — the canonical layout mapped through the
   fitted ellipse, with a small seeded jitter modelling the residual
   error real landmark detectors exhibit frame to frame.

Failure modes mirror the real API: too-dark frames, heavy occlusion or
the face leaving the frame produce ``None`` (the luminance extractor
must cope, Sec. IV).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .face_model import LANDMARK_LAYOUT
from .geometry import Point

__all__ = ["FaceLandmarks", "LandmarkDetector", "mean_landmark_error"]


@dataclasses.dataclass(frozen=True)
class FaceLandmarks:
    """The landmark set the paper's pipeline consumes (Fig. 5)."""

    nasal_bridge: tuple[Point, ...]
    nasal_tip: tuple[Point, ...]
    left_eye: Point
    right_eye: Point
    mouth: Point

    def __post_init__(self) -> None:
        if len(self.nasal_bridge) != 4:
            raise ValueError("nasal_bridge must contain 4 points")
        if len(self.nasal_tip) != 5:
            raise ValueError("nasal_tip must contain 5 points")

    @property
    def lower_bridge(self) -> Point:
        """The lowest nasal-bridge point — the ROI anchor ``(a1, b1)``."""
        return self.nasal_bridge[-1]

    @property
    def nose_tip_center(self) -> Point:
        """Center of the nasal-tip arc — the ROI sizing point ``(a2, b2)``."""
        xs = [p.x for p in self.nasal_tip]
        ys = [p.y for p in self.nasal_tip]
        return Point(sum(xs) / len(xs), sum(ys) / len(ys))

    def as_dict(self) -> dict[str, list[Point]]:
        """Same structure as the renderer's ground-truth dictionary."""
        return {
            "nasal_bridge": list(self.nasal_bridge),
            "nasal_tip": list(self.nasal_tip),
            "left_eye": [self.left_eye],
            "right_eye": [self.right_eye],
            "mouth": [self.mouth],
        }


class LandmarkDetector:
    """Skin-segmentation landmark detector.

    Parameters
    ----------
    jitter_fraction:
        Standard deviation of per-landmark jitter as a fraction of the
        estimated face half-width (residual model error).
    min_face_fraction:
        Minimum fraction of frame pixels that must be skin for a
        detection to be reported.
    assumed_aspect:
        Population-prior face height/width ratio used by the regression.
    seed:
        Seed of the jitter generator (detections are deterministic for a
        fixed frame sequence).
    """

    def __init__(
        self,
        jitter_fraction: float = 0.02,
        min_face_fraction: float = 0.015,
        assumed_aspect: float = 1.32,
        seed: int = 0,
    ) -> None:
        if jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")
        if not 0 < min_face_fraction < 1:
            raise ValueError("min_face_fraction must lie in (0, 1)")
        if assumed_aspect <= 0:
            raise ValueError("assumed_aspect must be positive")
        self.jitter_fraction = jitter_fraction
        self.min_face_fraction = min_face_fraction
        self.assumed_aspect = assumed_aspect
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the jitter generator to its initial seeded state.

        The generator advances with every detection, so a detector that
        served one call is *not* bit-identical to a fresh one.  Session
        recycling (``StreamingVerifier.reset``) calls this so a reused
        detector replays exactly the jitter sequence a new instance
        would produce.
        """
        self._rng = np.random.default_rng(self.seed)

    def skin_mask(self, pixels: np.ndarray) -> np.ndarray:
        """Boolean skin mask from illumination-invariant chromaticity."""
        pixels = np.asarray(pixels, dtype=np.float64)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError("pixels must have shape (h, w, 3)")
        total = pixels.sum(axis=2)
        bright = total > 45.0
        safe_total = np.where(total > 1e-9, total, 1.0)
        r = pixels[:, :, 0] / safe_total
        b = pixels[:, :, 2] / safe_total
        return bright & (r > 0.355) & (b < 0.32)

    def detect(self, pixels: np.ndarray) -> FaceLandmarks | None:
        """Detect landmarks in one frame; ``None`` when no face is found."""
        mask = self.skin_mask(pixels)
        height, width = mask.shape
        count = int(mask.sum())
        if count < self.min_face_fraction * height * width:
            return None

        ys, xs = np.nonzero(mask)
        x_lo, x_hi = np.percentile(xs, [2.0, 98.0])
        half_width = max((x_hi - x_lo) / 2.0, 2.0)
        center_x = (x_lo + x_hi) / 2.0
        chin_y = float(np.percentile(ys, 99.0))
        half_height = half_width * self.assumed_aspect
        center_y = chin_y - half_height

        jitter_sigma = self.jitter_fraction * half_width

        def _map(u: float, v: float) -> Point:
            jx = float(self._rng.normal(0.0, jitter_sigma))
            jy = float(self._rng.normal(0.0, jitter_sigma))
            return Point(center_x + u * half_width + jx, center_y + v * half_height + jy)

        bridge = tuple(_map(u, v) for u, v in LANDMARK_LAYOUT["nasal_bridge"])
        tip = tuple(_map(u, v) for u, v in LANDMARK_LAYOUT["nasal_tip"])
        return FaceLandmarks(
            nasal_bridge=bridge,
            nasal_tip=tip,
            left_eye=_map(*LANDMARK_LAYOUT["left_eye"][0]),
            right_eye=_map(*LANDMARK_LAYOUT["right_eye"][0]),
            mouth=_map(*LANDMARK_LAYOUT["mouth"][0]),
        )


def mean_landmark_error(detected: FaceLandmarks, truth: dict[str, list[Point]]) -> float:
    """Mean Euclidean error (pixels) between a detection and ground truth.

    Test/benchmark helper: quantifies the jitter the ROI extraction must
    absorb, one of the noise sources the paper's preprocessing targets.
    """
    errors: list[float] = []
    detected_dict = detected.as_dict()
    for name, truth_points in truth.items():
        if name not in detected_dict:
            continue
        for det_point, truth_point in zip(detected_dict[name], truth_points):
            errors.append(det_point.distance_to(truth_point))
    if not errors:
        raise ValueError("no comparable landmarks between detection and truth")
    return float(np.mean(errors))
