"""`repro protocol` command implementation.

Kept out of :mod:`repro.cli` so the top-level module stays a thin
argparse shell (the same split as ``service.cli``).

The default run is a fast, fully deterministic walk through the
cryptographic layer itself — nonce handshake, schedule derivation, and
the binding verdicts for a genuine / replayed / stale / unbound
response — with no detector or chat simulation involved.  ``--matrix``
runs the full-stack role × protocol-on/off sweep
(:func:`~repro.experiments.protocolmatrix.run_protocol_matrix`) through
the real chat endpoints instead.
"""

from __future__ import annotations

import argparse

from ..core.redact import redact
from .gate import ProtocolGate
from .nonce import ack_tag, handshake_payload, verify_ack
from .provision import ProtocolProvisioner
from .schedule import ProtocolConfig

__all__ = ["add_protocol_arguments", "run_protocol"]

#: Demo deployment secret.  Real deployments provision their own via
#: ``ServerConfig.protocol_secret``.
_DEMO_SECRET = "repro-demo-secret"

#: Synthetic lags of the demo's response signals: the smoothing chain's
#: group delay, a live round trip, and a relay's processing delay.
_CHAIN_LAG_S = 0.45
_PATH_DELAY_S = 0.35
_RELAY_DELAY_S = 4.2


def add_protocol_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tenant", default="tenant-demo")
    parser.add_argument("--seed", type=int, default=211)
    parser.add_argument(
        "--matrix",
        action="store_true",
        help="run the full-stack role x protocol-on/off chat matrix "
        "instead of the fast crypto-layer demo",
    )
    parser.add_argument(
        "--sessions", type=int, default=1, help="matrix sessions per cell"
    )
    parser.add_argument(
        "--enroll", type=int, default=6, help="matrix enrollment sessions"
    )
    parser.add_argument(
        "--frame", type=int, default=72, help="prover frame edge (pixels)"
    )
    parser.add_argument(
        "--verifier-frame", type=int, default=48, help="verifier frame edge (pixels)"
    )
    parser.add_argument("--jobs", type=int, default=0, help="worker processes")


def _provision_pair(tenant: str) -> tuple[ProtocolGate, ProtocolGate, int]:
    """A (prior, live) gate pair as one tenant's ledger would hold them."""
    provisioner = ProtocolProvisioner(_DEMO_SECRET, protocol=ProtocolConfig())
    prior = provisioner.provision(tenant, "2026-08-07-call")
    live = provisioner.provision(tenant, "2026-08-08-call")
    return prior, live, provisioner.ledger_size(tenant)


def _schedule_lines(gate: ProtocolGate, attempts: int) -> list[str]:
    out = []
    for schedule in gate.schedules(attempts):
        challenges = "  ".join(
            f"{c.time_s:5.2f}s->{c.spot:<6s}({c.delta_lux:g} lx)"
            for c in schedule.challenges
        )
        out.append(f"  [{schedule.fingerprint()}] {challenges}")
    return out


def _demo(args: argparse.Namespace) -> int:
    print("challenge-response binding demo (deterministic)")
    print()
    prior, live, ledger = _provision_pair(args.tenant)
    payload = handshake_payload(live.session_id, live.nonce)
    tag = ack_tag(live.tenant_key, live.nonce)
    # The ledger size is a public count; R017 fires only because the
    # tuple unpack from _provision_pair is graded conservatively.
    print(f"handshake: tenant={args.tenant} ledger_depth={ledger}")  # reprolint: disable=R017
    # live.session_id is public; the nonce half of the payload is key
    # material and renders only as its redaction token.
    print(
        f"  payload   session={live.session_id} "
        f"nonce={redact(payload['nonce'])}"
    )
    print(f"  ack tag   {tag.hex()[:16]}...  verify="
          f"{verify_ack(live.tenant_key, live.nonce, tag)}")
    tampered = bytes([tag[0] ^ 1]) + tag[1:]
    print(f"  tampered  {tampered.hex()[:16]}...  verify="
          f"{verify_ack(live.tenant_key, live.nonce, tampered)}")
    print()
    print(f"prior session schedule ({prior.session_id}):")
    print("\n".join(_schedule_lines(prior, 2)))
    print(f"live session schedule ({live.session_id}):")
    print("\n".join(_schedule_lines(live, 2)))
    print()
    print("binding verdicts (one clip, transmitted lag "
          f"{_CHAIN_LAG_S:g}s):")
    sched = live.schedule_for(0)
    transmitted = [t + _CHAIN_LAG_S for t in sched.times]
    responses = {
        "genuine": [t + _CHAIN_LAG_S + _PATH_DELAY_S for t in sched.times],
        "replay": [
            t + _CHAIN_LAG_S + _PATH_DELAY_S
            for t in prior.schedule_for(0).times
        ],
        "stale": [t + _CHAIN_LAG_S + _RELAY_DELAY_S for t in sched.times],
        "unbound": [2.2, 6.9],
    }
    for name, received in responses.items():
        # A fresh gate per row: grade() advances the attempt counter.
        _, gate, _ = _provision_pair(args.tenant)
        report = gate.grade(transmitted, received)
        # Binding verdict fields (outcome, lag, rejects) are public by
        # design; the gate merely *holds* key material.
        print(  # reprolint: disable=R017
            f"  {name:>8s}: outcome={report.outcome.value:<12s} "
            f"lag={report.lag_s:+5.2f}s rejects={report.rejects}"
        )
    return 0


def _matrix(args: argparse.Namespace) -> int:
    import dataclasses

    from ..engine import ExecutionEngine
    from ..experiments.profiles import DEFAULT_ENVIRONMENT
    from ..experiments.protocolmatrix import run_protocol_matrix

    env = dataclasses.replace(
        DEFAULT_ENVIRONMENT,
        frame_size=(args.frame, args.frame),
        verifier_frame_size=(args.verifier_frame, args.verifier_frame),
    )
    with ExecutionEngine(jobs=args.jobs) as engine:
        result = run_protocol_matrix(
            sessions_per_cell=args.sessions,
            enroll_sessions=args.enroll,
            env=env,
            seed=args.seed,
            engine=engine,
        )
        print(result)
    return 0


def run_protocol(args: argparse.Namespace) -> int:
    """Demonstrate the challenge-binding protocol layer."""
    if args.matrix:
        return _matrix(args)
    return _demo(args)
