"""Commitments and the binding check: is this response *fresh*?

A :class:`ChallengeCommitment` is the verifier's record of one schedule
it issued.  After each clip, the received signal's peaks are checked
against the commitment for the current attempt (and against the recent
prior commitments of the same tenant), yielding a
:class:`BindingOutcome` that the streaming verdict gate folds into the
attempt classification:

``BOUND``
    Received peaks echo the *current* schedule within the freshness
    window — the response could only have been produced live.
``STALE``
    Peaks echo the current schedule, but too late: consistent with a
    relay that re-synthesizes the reflection with processing delay
    (Sec. VIII-J's strong attacker run through extra latency).
``REPLAY``
    Peaks echo a *prior* session's schedule: recorded footage of an
    earlier call played back.  The LOF alone cannot see this — the
    replayed signal is a perfectly plausible genuine response, just to
    yesterday's challenges.
``UNBOUND``
    Peaks exist but match no known schedule; the ordinary LOF path is
    the authority (plain reenactment lands here).
``NO_EVIDENCE``
    No received peaks to check — the quality gate's problem, not the
    protocol's.

Lag handling: both signals ride the Sec. V smoothing chain, whose group
delay (~1.5-2 s) applies to transmitted and received alike.  The checker
therefore first measures the schedule -> transmitted-peak lag on the
verifier's *own* video (which an attacker cannot influence) and uses it
as the zero point for response lags, so the freshness window measures
pure path delay rather than filter delay.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterable, Sequence

from .schedule import DerivedSchedule, ProtocolConfig

__all__ = [
    "BindingOutcome",
    "ChallengeCommitment",
    "ScheduleMatch",
    "classify_binding",
    "match_schedule",
]

#: Clock-skew allowance: a response may lead the expected time by this
#: much before it stops counting as a match candidate (two endpoints'
#: sample clocks drift a few hundred ms over a call).
_SKEW_TOLERANCE_S = 1.0

#: A response peak needs about this much clip left after it to form at
#: all (the smoothing chain truncates at the boundary).  Expected
#: responses landing beyond ``clip_duration - margin`` are unobservable.
_OBSERVABLE_MARGIN_S = 1.0


@dataclasses.dataclass(frozen=True)
class ChallengeCommitment:
    """One issued schedule, as the verifier remembers it."""

    tenant_id: str
    session_id: str
    schedule: DerivedSchedule

    @property
    def attempt_index(self) -> int:
        return self.schedule.attempt_index


class BindingOutcome(enum.Enum):
    """How a clip's response relates to the issued schedules."""

    BOUND = "bound"
    STALE = "stale"
    REPLAY = "replay"
    UNBOUND = "unbound"
    NO_EVIDENCE = "no_evidence"
    UNDELIVERED = "undelivered"  # the challenges never made it out


@dataclasses.dataclass(frozen=True)
class ScheduleMatch:
    """Best alignment of observed peaks against one schedule."""

    fraction: float  # matched challenges / *observable* scheduled challenges
    lag_s: float  # the common lag achieving it
    residual_s: float = 0.0  # mean |observed - (expected + lag)| of matches
    matched: int = 0  # absolute number of matched challenges

    @property
    def key(self) -> tuple[int, float, float, float]:
        """Sort key: more challenges matched, then a *tighter* fit.

        The absolute matched count leads: a two-challenge echo always
        outranks a single-peak coincidence, even when the observable
        window shrank the coincidence's denominator to fraction 1.0.
        The residual term then tells an exact echo (a replayed recording
        answers its own schedule with sub-sample alignment) from a
        coincidental gap collision, whose per-challenge errors spread
        over the whole tolerance band.  Lag magnitude only breaks exact
        ties.
        """
        return (self.matched, self.fraction, -self.residual_s, -abs(self.lag_s))


_NO_MATCH = ScheduleMatch(
    fraction=0.0, lag_s=0.0, residual_s=float("inf"), matched=0
)


def match_schedule(
    expected_times: Sequence[float],
    observed_times: Sequence[float],
    tolerance_s: float,
    lag_lo_s: float,
    lag_hi_s: float,
    observable_end_s: float | None = None,
) -> ScheduleMatch:
    """Best single-lag alignment of observed peaks to expected times.

    Every (observed - expected) difference inside ``[lag_lo, lag_hi]``
    is a candidate common lag; for each, an expected time counts as
    matched when some observed peak lies within ``tolerance_s`` of
    ``expected + lag``.  Candidates are scanned in sorted order and ties
    resolve by :attr:`ScheduleMatch.key`, so the result is a pure
    function of its inputs.

    ``observable_end_s`` (used for the stale band, where large lags push
    responses off the end of the clip) removes an expected time from a
    candidate's *denominator* when ``expected + lag`` falls beyond it:
    evidence that physically cannot be inside the clip is not counted as
    missing.
    """
    if not expected_times or not observed_times:
        return _NO_MATCH
    candidates = sorted(
        {
            o - e
            for e in expected_times
            for o in observed_times
            if lag_lo_s <= o - e <= lag_hi_s
        },
        key=lambda lag: (abs(lag), lag),
    )
    best = _NO_MATCH
    for lag in candidates:
        included = [
            e
            for e in expected_times
            if observable_end_s is None or e + lag <= observable_end_s
        ]
        if not included:
            continue
        errors = []
        for e in included:
            err = min(abs(o - (e + lag)) for o in observed_times)
            if err <= tolerance_s:
                errors.append(err)
        if not errors:
            continue
        candidate = ScheduleMatch(
            fraction=len(errors) / len(included),
            lag_s=lag,
            residual_s=sum(errors) / len(errors),
            matched=len(errors),
        )
        if candidate.key > best.key:
            best = candidate
    return best


def classify_binding(
    current: DerivedSchedule,
    priors: Iterable[DerivedSchedule],
    transmitted_peak_times: Sequence[float],
    received_peak_times: Sequence[float],
    tolerance_s: float,
    protocol: ProtocolConfig,
) -> tuple[BindingOutcome, ScheduleMatch]:
    """Classify one clip's response against the issued schedules.

    ``transmitted_peak_times`` / ``received_peak_times`` are the
    clip-relative peak times the feature extractor already computes.
    Returns the outcome plus the match that decided it (its ``lag_s`` is
    net of the transmitted signal's own chain delay).
    """
    # Step 1: did the challenges actually go out?  The verifier checks
    # its own transmitted video against the schedule; the measured lag
    # is the smoothing chain's group delay and becomes the zero point
    # for response lags.
    tx = match_schedule(
        current.times,
        transmitted_peak_times,
        tolerance_s,
        lag_lo_s=-_SKEW_TOLERANCE_S,
        lag_hi_s=protocol.stale_max_lag_s,
    )
    if tx.fraction < protocol.bind_fraction:
        return BindingOutcome.UNDELIVERED, tx
    if not received_peak_times:
        return BindingOutcome.NO_EVIDENCE, _NO_MATCH

    chain_lag = tx.lag_s

    def net(match: ScheduleMatch) -> ScheduleMatch:
        return dataclasses.replace(match, lag_s=match.lag_s - chain_lag)

    # Step 2: does the response echo the current schedule, and how late?
    fresh = net(
        match_schedule(
            current.times,
            received_peak_times,
            tolerance_s,
            lag_lo_s=chain_lag - _SKEW_TOLERANCE_S,
            lag_hi_s=chain_lag + protocol.freshness_window_s,
        )
    )
    stale = net(
        match_schedule(
            current.times,
            received_peak_times,
            tolerance_s,
            lag_lo_s=chain_lag + protocol.freshness_window_s,
            lag_hi_s=chain_lag + protocol.stale_max_lag_s,
            # Stale lags are large enough to push a late challenge's
            # response past the end of the clip; such challenges leave
            # the denominator instead of counting as unanswered.
            observable_end_s=current.clip_duration_s - _OBSERVABLE_MARGIN_S,
        )
    )
    # Step 3: or does it echo something the tenant was challenged with
    # before?  A replayed recording answers an old schedule *exactly*
    # (near-zero residual), which is how it outranks the coincidental
    # partial fits random peaks produce against the current schedule.
    replay = _NO_MATCH
    for prior in priors:
        candidate = net(
            match_schedule(
                prior.times,
                received_peak_times,
                tolerance_s,
                lag_lo_s=chain_lag - _SKEW_TOLERANCE_S,
                lag_hi_s=chain_lag + protocol.stale_max_lag_s,
            )
        )
        if candidate.key > replay.key:
            replay = candidate
    fresh_ok = fresh.fraction >= protocol.bind_fraction
    stale_ok = stale.fraction >= protocol.bind_fraction
    # A replay claim must look like an actual echo: full fraction *and*
    # a residual inside the cap (see ProtocolConfig.replay_residual_cap_s).
    replay_ok = (
        replay.fraction >= protocol.bind_fraction
        and replay.residual_s <= protocol.replay_residual_cap_s
    )
    # With two challenges per clip and a ~1 s tolerance, some prior
    # schedule's gap collides with a genuine response's gap in a sizable
    # fraction of sessions, and peak-detection jitter makes the
    # coincidence's residual land within noise of the true echo's.  A
    # replay claim therefore has to beat the fresh interpretation by
    # more than the jitter floor (``echo_margin_s``) — or match strictly
    # more challenges — before it outranks a full fresh match.
    handicapped_fresh = dataclasses.replace(
        fresh, residual_s=max(fresh.residual_s - protocol.echo_margin_s, 0.0)
    )
    if fresh_ok and (not replay_ok or handicapped_fresh.key >= replay.key):
        return BindingOutcome.BOUND, fresh
    if replay_ok and (not stale_ok or replay.key >= stale.key):
        return BindingOutcome.REPLAY, replay
    if stale_ok:
        return BindingOutcome.STALE, stale
    best = max((fresh, stale, replay), key=lambda m: m.key)
    return BindingOutcome.UNBOUND, best
