"""Cryptographic challenge-response binding for the active challenge.

The luminance challenge of the base system is unauthenticated: the
verifier's metering touches happen whenever they happen, and nothing
ties the *response* on the received video to *this* session.  An
attacker who recorded one genuine call can replay the footage — the
reflection pattern is perfectly plausible, just bound to yesterday's
challenges — and the LOF cannot tell (Face Flashing, Tang et al., makes
the case for nonce-derived light challenges).

This package closes that gap end to end:

* :mod:`~repro.protocol.nonce` — the HMAC-SHA256 key hierarchy
  (tenant key, session nonce, ack tags);
* :mod:`~repro.protocol.schedule` — deterministic expansion of
  ``(key, nonce, attempt)`` into challenge times / spot flips /
  brightness deltas on the dyadic time grid;
* :mod:`~repro.protocol.commitment` — the freshness-window binding
  check (``BOUND`` / ``STALE`` / ``REPLAY`` / ``UNBOUND``);
* :mod:`~repro.protocol.gate` — the per-session
  :class:`ProtocolGate` the streaming verifier consults per clip;
* :mod:`~repro.protocol.provision` — per-tenant nonce issuance and the
  bounded commitment ledger the service layer uses.
"""

from .commitment import (
    BindingOutcome,
    ChallengeCommitment,
    ScheduleMatch,
    classify_binding,
    match_schedule,
)
from .gate import BindingReport, ProtocolGate
from .nonce import (
    ack_tag,
    derive_session_nonce,
    derive_tenant_key,
    handshake_payload,
    verify_ack,
)
from .provision import ProtocolProvisioner, derive_session_schedules
from .schedule import (
    DerivedChallenge,
    DerivedSchedule,
    ProtocolConfig,
    derive_schedule,
)

__all__ = [
    "BindingOutcome",
    "BindingReport",
    "ChallengeCommitment",
    "DerivedChallenge",
    "DerivedSchedule",
    "ProtocolConfig",
    "ProtocolGate",
    "ProtocolProvisioner",
    "ScheduleMatch",
    "ack_tag",
    "classify_binding",
    "derive_schedule",
    "derive_session_nonce",
    "derive_session_schedules",
    "derive_tenant_key",
    "handshake_payload",
    "match_schedule",
    "verify_ack",
]
