"""Per-tenant nonce provisioning and the commitment ledger.

:class:`ProtocolProvisioner` is the verifier-side authority: it holds
the deployment secret, derives each tenant's key and each session's
nonce, and keeps a bounded per-tenant ledger of issued commitments so a
later session can recognize a *replayed* response as belonging to an
earlier schedule.

Provisioning is the synchronization point for determinism: the priors a
gate will ever compare against are snapshotted at :meth:`provision`
time (submit order — identical between a concurrent service run and its
serial replay), and the new session's own commitments are appended to
the ledger in the same breath.  Nothing reads the ledger afterwards, so
no interleaving of in-flight sessions can change any verdict.
"""

from __future__ import annotations

from collections import deque

from ..core.config import DetectorConfig
from ..core.redact import redact
from ..obs.instrument import Instrumentation
from .commitment import ChallengeCommitment
from .gate import ProtocolGate
from .nonce import derive_session_nonce, derive_tenant_key
from .schedule import ProtocolConfig, derive_schedule

__all__ = ["ProtocolProvisioner", "derive_session_schedules"]


def derive_session_schedules(
    secret: bytes | str,
    tenant_id: str,
    session_id: str,
    attempts: int,
    config: DetectorConfig | None = None,
    protocol: ProtocolConfig | None = None,
):
    """Pure derivation of one session's schedules from the secret.

    The prover-side (and workload-generator) mirror of what
    :meth:`ProtocolProvisioner.provision` commits: both ends call this
    one function, so they cannot disagree.
    """
    tenant_key = derive_tenant_key(secret, tenant_id)
    nonce = derive_session_nonce(tenant_key, session_id)
    return tuple(
        derive_schedule(tenant_key, nonce, i, config, protocol)
        for i in range(attempts)
    )


class ProtocolProvisioner:
    """Issues per-session gates and remembers what was committed."""

    def __init__(
        self,
        secret: bytes | str,
        config: DetectorConfig | None = None,
        protocol: ProtocolConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.secret = secret
        self.config = config or DetectorConfig()
        self.protocol = protocol or ProtocolConfig()
        self.instrumentation = Instrumentation.ensure(instrumentation)
        self._tenant_keys: dict[str, bytes] = {}
        # tenant -> recent sessions' commitments, oldest evicted first.
        self._ledger: dict[str, deque[tuple[ChallengeCommitment, ...]]] = {}

    def tenant_key(self, tenant_id: str) -> bytes:
        key = self._tenant_keys.get(tenant_id)
        if key is None:
            key = derive_tenant_key(self.secret, tenant_id)
            self._tenant_keys[tenant_id] = key
        return key

    def provision(self, tenant_id: str, session_id: str) -> ProtocolGate:
        """A gate for one new session, priors frozen as of right now."""
        key = self.tenant_key(tenant_id)
        nonce = derive_session_nonce(key, session_id)
        ledger = self._ledger.setdefault(
            tenant_id, deque(maxlen=max(self.protocol.ledger_depth, 1))
        )
        priors = tuple(c for session in ledger for c in session)
        committed = tuple(
            ChallengeCommitment(
                tenant_id=tenant_id,
                session_id=session_id,
                schedule=derive_schedule(key, nonce, i, self.config, self.protocol),
            )
            for i in range(self.protocol.commit_attempts)
        )
        if self.protocol.ledger_depth > 0:
            ledger.append(committed)
        self.instrumentation.count("protocol_nonces_issued_total")
        return ProtocolGate(
            tenant_id=tenant_id,
            session_id=session_id,
            tenant_key=key,
            nonce=nonce,
            config=self.config,
            protocol=self.protocol,
            priors=priors,
            instrumentation=self.instrumentation,
        )

    def ledger_size(self, tenant_id: str) -> int:
        """Sessions currently remembered for one tenant."""
        return len(self._ledger.get(tenant_id, ()))

    def __repr__(self) -> str:
        # The deployment secret and every derived tenant key live on
        # this object; the default repr would spill them into any log
        # line that formats the provisioner.
        return (
            f"ProtocolProvisioner(secret={redact(self.secret)}, "
            f"tenants={len(self._tenant_keys)})"
        )
