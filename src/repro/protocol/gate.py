"""The per-session binding gate the streaming verifier consults.

A :class:`ProtocolGate` owns one session's cryptographic state: the
session nonce, the schedule commitments derived from it, and a frozen
snapshot of the tenant's recent *prior* commitments (what a recording
attacker could have observed).  :class:`~repro.core.streaming
.StreamingVerifier` calls :meth:`ProtocolGate.grade` once per completed
clip with the peak times the feature extractor already produced; the
returned :class:`BindingReport` folds into the attempt verdict
(``REPLAY`` / ``STALE`` / ordinary).

The priors are snapshotted when the gate is provisioned — not read from
a live ledger at grade time — so a session's verdict is a pure function
of its own submit-order position, never of which other sessions happen
to be in flight.  That is what keeps the service's concurrent run
byte-identical to its serial replay.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..core.config import DetectorConfig
from ..obs.instrument import Instrumentation
from .commitment import (
    BindingOutcome,
    ChallengeCommitment,
    ScheduleMatch,
    classify_binding,
)
from .nonce import verify_ack
from .schedule import DerivedSchedule, ProtocolConfig, derive_schedule

__all__ = ["BindingReport", "ProtocolGate"]


@dataclasses.dataclass(frozen=True)
class BindingReport:
    """Outcome of the binding check for one clip."""

    attempt_index: int
    outcome: BindingOutcome
    match: ScheduleMatch
    schedule: DerivedSchedule
    #: True when an ``UNBOUND`` outcome must count as a rejection because
    #: the protocol runs with ``enforce_binding`` on.
    enforced: bool = False

    @property
    def lag_s(self) -> float:
        """Response lag net of the smoothing chain's group delay."""
        return self.match.lag_s

    @property
    def rejects(self) -> bool:
        """Whether this binding alone condemns the attempt."""
        if self.outcome in (BindingOutcome.REPLAY, BindingOutcome.STALE):
            return True
        return self.enforced


class ProtocolGate:
    """One session's challenge-binding state.

    Parameters
    ----------
    tenant_id, session_id:
        Identity of the session (labels on the commitments).
    tenant_key, nonce:
        The keyed-derivation inputs (see :mod:`repro.protocol.nonce`).
    config:
        Detector constants (clip geometry, match tolerance,
        ``min_challenges`` / ``min_gap_s``).
    protocol:
        Binding-protocol tunables.
    priors:
        Commitments of the tenant's recent prior sessions, frozen at
        provision time.
    instrumentation:
        Optional observability handle; binding outcomes land in
        ``protocol_bindings_total{outcome=}`` and handshake checks in
        ``protocol_acks_total{result=}``.
    """

    def __init__(
        self,
        tenant_id: str,
        session_id: str,
        tenant_key: bytes,
        nonce: bytes,
        config: DetectorConfig | None = None,
        protocol: ProtocolConfig | None = None,
        priors: Sequence[ChallengeCommitment] = (),
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.tenant_id = tenant_id
        self.session_id = session_id
        self.tenant_key = tenant_key
        self.nonce = nonce
        self.config = config or DetectorConfig()
        self.protocol = protocol or ProtocolConfig()
        self.priors = tuple(priors)
        self.instrumentation = Instrumentation.ensure(instrumentation)
        self._schedules: dict[int, DerivedSchedule] = {}
        self._attempt = 0

    def schedule_for(self, attempt_index: int) -> DerivedSchedule:
        """The (cached) derived schedule of one attempt."""
        schedule = self._schedules.get(attempt_index)
        if schedule is None:
            schedule = derive_schedule(
                self.tenant_key, self.nonce, attempt_index, self.config, self.protocol
            )
            self._schedules[attempt_index] = schedule
        return schedule

    def schedules(self, attempts: int) -> tuple[DerivedSchedule, ...]:
        """Schedules for the first ``attempts`` clips (prover-side use)."""
        return tuple(self.schedule_for(i) for i in range(attempts))

    def grade(
        self,
        transmitted_peak_times: Sequence[float],
        received_peak_times: Sequence[float],
    ) -> BindingReport:
        """Bind one completed clip; advances the attempt counter."""
        attempt = self._attempt
        self._attempt += 1
        schedule = self.schedule_for(attempt)
        outcome, match = classify_binding(
            current=schedule,
            priors=(c.schedule for c in self.priors),
            transmitted_peak_times=[float(t) for t in transmitted_peak_times],
            received_peak_times=[float(t) for t in received_peak_times],
            tolerance_s=self.config.match_tolerance_s,
            protocol=self.protocol,
        )
        self.instrumentation.count(
            "protocol_bindings_total", outcome=outcome.value
        )
        return BindingReport(
            attempt_index=attempt,
            outcome=outcome,
            match=match,
            schedule=schedule,
            enforced=(
                outcome is BindingOutcome.UNBOUND and self.protocol.enforce_binding
            ),
        )

    def note_ack(self, tag: bytes | str) -> bool:
        """Check a prover's handshake acknowledgement tag."""
        raw = bytes.fromhex(tag) if isinstance(tag, str) else tag
        ok = verify_ack(self.tenant_key, self.nonce, raw)
        self.instrumentation.count(
            "protocol_acks_total", result="ok" if ok else "bad"
        )
        return ok

    @property
    def attempts_graded(self) -> int:
        return self._attempt
