"""Deterministic challenge schedules derived from a session nonce.

:func:`derive_schedule` expands ``(tenant_key, nonce, attempt_index)``
into one clip's worth of challenge times, metering-spot flips and
brightness deltas.  Both ends of the call run the same expansion — the
schedule itself never crosses the network — and every derived time is
quantized to the dyadic grid (multiples of 2^-20 s, the same grid the
service's VirtualScheduler runs on), so replaying a session under
virtual time reproduces the schedule byte for byte.

Placement uses the classic stick-breaking trick: with ``n`` challenges
at minimum gap ``g`` inside the usable window ``[start, end]``, the free
slack ``(end - start) - (n - 1) * g`` is split by ``n`` sorted uniforms
(drawn from the PRF stream), and challenge ``j`` lands at
``start + u_(j) * slack + j * g``.  Every draw keeps the pairwise gaps
>= ``g`` by construction, so the Sec. V smoothing chain always resolves
the challenges as distinct peaks.
"""

from __future__ import annotations

import dataclasses
import hashlib

from ..core.config import DetectorConfig
from .nonce import prf, prf_stream

__all__ = [
    "DerivedChallenge",
    "DerivedSchedule",
    "ProtocolConfig",
    "derive_schedule",
]

#: Dyadic time grid (2^20 slots per second) — the VirtualScheduler's
#: grid.  Quantizing to it keeps virtual-time arithmetic exact in
#: binary floating point, so schedule times survive any summation order.
_TIME_GRID = float(1 << 20)

#: Metering-spot names a challenge can flip to.
_SPOTS = ("bright", "dark")


def _quantize(t: float) -> float:
    return round(t * _TIME_GRID) / _TIME_GRID


@dataclasses.dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the challenge-binding protocol.

    Attributes
    ----------
    freshness_window_s:
        Maximum response lag (beyond the transmitted signal's own chain
        delay) for a clip to count as *bound* to the live schedule.
        Covers the network round trip plus display latency with margin;
        a relay that re-synthesizes the reflection needs processing time
        and lands beyond it.
    stale_max_lag_s:
        Largest lag at which a response is still recognized as a late
        echo of the current schedule (``STALE``).  Beyond it the signal
        is simply unbound.
    bind_fraction:
        Fraction of a schedule's challenges that must find a received
        peak (at one common lag) for the schedule to count as matched.
        Defaults to 1.0: with the paper-default two challenges per clip,
        anything less degenerates into single-peak coincidences.  A clip
        that lost a response to channel damage is already the quality
        gate's business (``CHALLENGE_OBSCURED``), not the protocol's.
    start_margin_s:
        Earliest challenge time inside a clip — leaves room for the
        response of the *previous* clip's last challenge to drain, and
        for the smoothing chain to resolve the peak at all (the RMS
        window is 3 s wide; a change in the first second of a clip
        produces a malformed, often undetected peak).
    end_margin_s:
        Extra margin *beyond* the detector's ``boundary_guard_s`` kept
        free at the end of a clip.  A challenge needs its response —
        chain lag plus path delay — to land inside the same clip to be
        matched, so the last usable challenge time backs off by both
        margins.
    ledger_depth:
        Prior sessions per tenant whose commitments the verifier keeps
        for replay matching.  An attacker replaying anything older is
        still rejected — just as ``FAKE`` rather than ``REPLAY``.
    commit_attempts:
        Attempts (clips) per session the provisioner commits to the
        ledger.  Sessions longer than this stay verifiable; only the
        replay-attribution memory is bounded.
    delta_range_lux:
        Brightness-delta band a challenge requests, quantized to 0.5;
        carried for provers that synthesize their signal directly from
        the schedule (the load generator, the CLI demo).
    echo_margin_s:
        Peak-detection jitter floor.  A replay match must have a
        residual more than this far below the fresh match's (or match
        strictly more challenges) before it outranks a full fresh match
        — residual differences inside the margin are noise, and prior
        schedules collide with genuine responses often enough that a
        bare tie-break would condemn real users.
    replay_residual_cap_s:
        Largest mean residual a prior-schedule match may carry and
        still claim ``REPLAY``.  A replayed recording answers its old
        schedule with one common path delay, so every peak lands within
        detection jitter of expected + lag (residual <= ~0.05 s even on
        the full chat path); a coincidental gap collision spreads its
        errors over the whole tolerance band.  Without the cap, sloppy
        two-peak collisions outrank correct one-peak stale matches.
    enforce_binding:
        When true, a conclusive clip whose response binds to *no* known
        schedule counts as a rejection even if the LOF accepts it.
        Off by default: the LOF path already condemns unbound signals,
        and keeping the channels independent preserves the seed ROC.
    """

    freshness_window_s: float = 2.5
    stale_max_lag_s: float = 8.0
    bind_fraction: float = 1.0
    start_margin_s: float = 1.5
    end_margin_s: float = 2.0
    ledger_depth: int = 3
    commit_attempts: int = 2
    delta_range_lux: tuple[float, float] = (35.0, 60.0)
    echo_margin_s: float = 0.08
    replay_residual_cap_s: float = 0.25
    enforce_binding: bool = False

    def __post_init__(self) -> None:
        if self.freshness_window_s <= 0:
            raise ValueError("freshness_window_s must be positive")
        if self.stale_max_lag_s <= self.freshness_window_s:
            raise ValueError("stale_max_lag_s must exceed freshness_window_s")
        if not 0 < self.bind_fraction <= 1:
            raise ValueError("bind_fraction must lie in (0, 1]")
        if self.start_margin_s < 0:
            raise ValueError("start_margin_s must be non-negative")
        if self.end_margin_s < 0:
            raise ValueError("end_margin_s must be non-negative")
        if self.ledger_depth < 0:
            raise ValueError("ledger_depth must be >= 0")
        if self.commit_attempts < 1:
            raise ValueError("commit_attempts must be >= 1")
        lo, hi = self.delta_range_lux
        if not 0 < lo <= hi:
            raise ValueError("delta_range_lux must satisfy 0 < lo <= hi")
        if self.echo_margin_s < 0:
            raise ValueError("echo_margin_s must be non-negative")
        if self.replay_residual_cap_s <= 0:
            raise ValueError("replay_residual_cap_s must be positive")


@dataclasses.dataclass(frozen=True)
class DerivedChallenge:
    """One scheduled challenge inside a clip."""

    time_s: float  # clip-relative, dyadic-grid quantized
    spot: str  # "bright" | "dark": metering zone to flip to
    delta_lux: float  # requested brightness swing (0.5-lux quantized)


@dataclasses.dataclass(frozen=True)
class DerivedSchedule:
    """One clip's challenge schedule, bound to ``(nonce, attempt)``."""

    #: The raw session nonce is key material: it never renders in the
    #: default __repr__ (R021) and must not be emitted or compared
    #: non-constant-time downstream.
    nonce: bytes = dataclasses.field(repr=False)
    attempt_index: int
    clip_duration_s: float
    challenges: tuple[DerivedChallenge, ...]

    @property
    def times(self) -> tuple[float, ...]:
        return tuple(c.time_s for c in self.challenges)

    def fingerprint(self) -> str:
        """Short stable identifier for logs and CLI output.

        Digest-truncated over the *public* challenge plan only (times,
        spots, deltas, clip duration, attempt index) — the plan is what
        the prover receives anyway, so the fingerprint reveals nothing
        about the nonce that derived it.  The old nonce-prefix form was
        key-recoverable from ``repro protocol`` output.
        """
        material = "|".join(
            f"{c.time_s:.6f}:{c.spot}:{c.delta_lux:.6f}"
            for c in self.challenges
        )
        digest = hashlib.sha256(
            f"{material}|{self.clip_duration_s:.6f}|{self.attempt_index}".encode()
        ).hexdigest()
        return digest[:12] + f"/{self.attempt_index}"


def _uniforms(key: bytes, nonce: bytes, attempt_index: int, count: int) -> list[float]:
    """``count`` PRF-derived values in [0, 1), 8 bytes each."""
    blocks = (count * 8 + 31) // 32
    stream = prf_stream(key, "sched", nonce, attempt_index, blocks=blocks)
    out = []
    for j in range(count):
        chunk = stream[j * 8 : j * 8 + 8]
        out.append(int.from_bytes(chunk, "big") / float(1 << 64))
    return out


def derive_schedule(
    tenant_key: bytes,
    nonce: bytes,
    attempt_index: int,
    config: DetectorConfig | None = None,
    protocol: ProtocolConfig | None = None,
) -> DerivedSchedule:
    """Expand the keyed stream into one clip's challenge schedule.

    Uses ``config.min_challenges`` challenges spaced >=
    ``config.min_gap_s`` inside ``[start_margin_s, clip_duration_s -
    boundary_guard_s - end_margin_s]``; raises when they do not fit (the
    same guard :class:`~repro.core.challenge.ChallengeScheduler`
    applies, tightened by the protocol margins).
    """
    config = config or DetectorConfig()
    protocol = protocol or ProtocolConfig()
    if attempt_index < 0:
        raise ValueError("attempt_index must be >= 0")
    n = config.min_challenges
    gap = config.min_gap_s
    start = protocol.start_margin_s
    end = config.clip_duration_s - config.boundary_guard_s - protocol.end_margin_s
    slack = (end - start) - (n - 1) * gap
    if slack < 0:
        raise ValueError(
            f"{n} challenges at {gap}s spacing do not fit the "
            f"[{start:.1f}, {end:.1f}]s usable window"
        )
    # n uniforms place the times, one is reserved (layout stability), n
    # pick the per-challenge deltas.
    draws = _uniforms(tenant_key, nonce, attempt_index, 2 * n + 1)
    placements = sorted(draws[:n])
    # Spots alternate *continuously across attempts*: challenge j of
    # attempt a sits at (base + a*n + j) % 2, with the base spot derived
    # from the nonce alone.  A per-attempt starting spot would let the
    # first challenge of a clip land on the zone the meter already
    # points at — a no-op flip that produces no luminance change and
    # reads as CHALLENGE_UNDELIVERED.
    base_spot = prf(tenant_key, "spot", nonce)[0] & 1
    spot_index = (base_spot + attempt_index * n) % 2
    lo, hi = protocol.delta_range_lux
    challenges = []
    for j in range(n):
        t = _quantize(start + placements[j] * slack + j * gap)
        delta = lo + draws[n + 1 + j] * (hi - lo)
        challenges.append(
            DerivedChallenge(
                time_s=t,
                spot=_SPOTS[(spot_index + j) % 2],
                delta_lux=round(delta * 2.0) / 2.0,
            )
        )
    return DerivedSchedule(
        nonce=nonce,
        attempt_index=attempt_index,
        clip_duration_s=config.clip_duration_s,
        challenges=tuple(challenges),
    )
