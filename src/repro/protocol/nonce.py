"""Keyed derivation for the challenge protocol (HMAC-SHA256 as a PRF).

Everything the protocol randomizes — session nonces, challenge times,
spot flips, brightness deltas, acknowledgement tags — is derived from a
single tenant secret through HMAC-SHA256, never from an RNG.  That makes
the whole protocol a pure function of ``(secret, tenant, session)``:
bit-identical under the VirtualScheduler, across process pools, and
across serial replays, which is the same determinism contract the rest
of the tree lives by (reprolint R001 has nothing to flag here — there is
no random state to seed).

Key hierarchy (domain-separated by a literal tag in each derivation)::

    tenant_key   = HMAC(secret,      "tenant" | tenant_id)
    session_nonce= HMAC(tenant_key,  "nonce"  | session_id)
    stream block = HMAC(tenant_key,  "sched"  | nonce | attempt | counter)
    ack tag      = HMAC(tenant_key,  "ack"    | nonce)

The verifier sends ``(session_id, nonce)`` to the prover at call start
(over the ordinary media path, as frame metadata); the prover proves
possession of the shared tenant key by echoing the ack tag.  Schedule
bytes never travel — both ends re-derive them.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = [
    "ack_tag",
    "derive_session_nonce",
    "derive_tenant_key",
    "handshake_payload",
    "prf_stream",
    "verify_ack",
]

#: Separator between PRF input parts.  A dedicated byte keeps the
#: concatenation injective for the tag/id strings used here (none of
#: which may contain it).
_SEP = b"\x1f"


def _as_bytes(part: bytes | str | int) -> bytes:
    if isinstance(part, bytes):
        return part
    if isinstance(part, str):
        return part.encode("utf-8")
    return str(int(part)).encode("ascii")


def prf(key: bytes, *parts: bytes | str | int) -> bytes:
    """One 32-byte HMAC-SHA256 block over the separator-joined parts."""
    if not key:
        raise ValueError("key must be non-empty")
    message = _SEP.join(_as_bytes(p) for p in parts)
    return hmac.new(key, message, hashlib.sha256).digest()


def prf_stream(key: bytes, *parts: bytes | str | int, blocks: int = 1) -> bytes:
    """``blocks`` concatenated PRF blocks (a counter-mode byte stream)."""
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    return b"".join(prf(key, *parts, i) for i in range(blocks))


def derive_tenant_key(secret: bytes | str, tenant_id: str) -> bytes:
    """Per-tenant key: compromise of one tenant's key stays contained."""
    return prf(_as_bytes(secret) or b"\x00", "tenant", tenant_id)


def derive_session_nonce(tenant_key: bytes, session_id: str) -> bytes:
    """The session's 32-byte nonce (what the handshake carries)."""
    return prf(tenant_key, "nonce", session_id)


def ack_tag(tenant_key: bytes, nonce: bytes) -> bytes:
    """The prover's response to the handshake: proof it holds the key."""
    return prf(tenant_key, "ack", nonce)


def verify_ack(tenant_key: bytes, nonce: bytes, tag: bytes) -> bool:
    """Constant-time check of a received acknowledgement tag."""
    return hmac.compare_digest(ack_tag(tenant_key, nonce), tag)


def handshake_payload(session_id: str, nonce: bytes) -> dict[str, str]:
    """The verifier -> prover handshake as frame metadata.

    Flat strings only: frame metadata crosses the media links (and the
    loss-concealment copy path) untouched, but keeping it JSON-trivial
    means a trace sink can serialize it as-is.
    """
    return {"session_id": session_id, "nonce": nonce.hex()}
