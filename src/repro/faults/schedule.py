"""Seeded, deterministic fault schedules for the live-call path.

Real conferencing channels fail in *bursts*, not i.i.d. drizzle: routers
queue and then dump (Gilbert–Elliott loss), wireless links jitter in
spikes, face trackers lose the face for whole windows, receivers freeze
frames, and endpoint clocks drift.  A :class:`FaultSpec` names the
severity of each of these modes; :meth:`FaultSpec.schedule` compiles it
into a :class:`FaultSchedule` — plain per-tick arrays, fully determined
by ``(spec, duration, tick rate, seed)`` — that the injection layer
(:mod:`repro.faults.injector`) replays against the network stack and the
recorded session without touching either one's happy path.

Because the schedule is data, the same fault pattern can be replayed
against different configurations (the apples-to-apples requirement of
robustness ablations) and two runs with equal seeds are bit-identical.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["FaultSpec", "FaultSchedule"]


def _markov_windows(
    ticks: int,
    occupancy: float,
    mean_len_ticks: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Two-state (Gilbert–Elliott) on/off chain as a boolean tick array.

    ``occupancy`` is the stationary fraction of ticks spent in the "on"
    (faulty) state; ``mean_len_ticks`` the mean length of an "on" burst.
    The chain's exit probability is ``1/mean_len`` and the entry
    probability follows from the stationary balance
    ``p_enter = p_exit * occupancy / (1 - occupancy)``.
    """
    if ticks <= 0:
        return np.zeros(0, dtype=bool)
    if occupancy <= 0.0:
        return np.zeros(ticks, dtype=bool)
    if occupancy >= 1.0:
        return np.ones(ticks, dtype=bool)
    p_exit = min(1.0, 1.0 / max(mean_len_ticks, 1.0))
    p_enter = min(1.0, p_exit * occupancy / (1.0 - occupancy))
    draws = rng.random(ticks)
    out = np.zeros(ticks, dtype=bool)
    state = bool(draws[0] < occupancy)  # start from the stationary law
    out[0] = state
    for i in range(1, ticks):
        if state:
            state = not (draws[i] < p_exit)
        else:
            state = draws[i] < p_enter
        out[i] = state
    return out


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Severity knobs for one fault profile (all rates are per-call
    stationary tick fractions; ``scaled`` multiplies them by a severity).

    Attributes
    ----------
    loss_burst_rate:
        Fraction of ticks inside a Gilbert–Elliott bad state, during
        which every packet of the tick is dropped.
    mean_burst_s:
        Mean length of one loss burst.
    jitter_spike_rate:
        Fraction of ticks inside a jitter spike window.
    jitter_spike_s:
        Mean extra one-way delay added to packets sent during a spike.
    landmark_dropout_rate:
        Fraction of ticks whose received frame carries no detectable
        face (tracker dropout, occlusion, re-encode artifacts).
    mean_dropout_s:
        Mean length of one landmark-dropout window.
    freeze_rate:
        Fraction of ticks whose received frame is a stale repeat
        (receiver-side frame freeze independent of channel loss).
    mean_freeze_s:
        Mean length of one freeze window.
    clock_skew:
        Relative receiver-clock drift applied to packet arrival times
        (0.01 = arrivals stretch 1 % late over the call).
    """

    loss_burst_rate: float = 0.0
    mean_burst_s: float = 0.8
    jitter_spike_rate: float = 0.0
    jitter_spike_s: float = 0.15
    landmark_dropout_rate: float = 0.0
    mean_dropout_s: float = 1.0
    freeze_rate: float = 0.0
    mean_freeze_s: float = 0.5
    clock_skew: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_burst_rate", "jitter_spike_rate",
                     "landmark_dropout_rate", "freeze_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        for name in ("mean_burst_s", "jitter_spike_s", "mean_dropout_s",
                     "mean_freeze_s"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.clock_skew < -0.5 or self.clock_skew > 0.5:
            raise ValueError("clock_skew must lie in [-0.5, 0.5]")

    def scaled(self, severity: float) -> "FaultSpec":
        """This profile with every rate (and the skew) scaled by
        ``severity`` in [0, 1+]; burst/window lengths are kept."""
        if severity < 0.0:
            raise ValueError("severity must be non-negative")
        return dataclasses.replace(
            self,
            loss_burst_rate=min(1.0, self.loss_burst_rate * severity),
            jitter_spike_rate=min(1.0, self.jitter_spike_rate * severity),
            landmark_dropout_rate=min(1.0, self.landmark_dropout_rate * severity),
            freeze_rate=min(1.0, self.freeze_rate * severity),
            clock_skew=self.clock_skew * severity,
        )

    def schedule(
        self,
        duration_s: float,
        tick_rate_hz: float,
        seed: int = 0,
    ) -> "FaultSchedule":
        """Compile the profile into a deterministic per-tick schedule."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if tick_rate_hz <= 0:
            raise ValueError("tick_rate_hz must be positive")
        ticks = max(1, int(round(duration_s * tick_rate_hz)))
        rng = np.random.default_rng([seed, 0xFA017])
        loss = _markov_windows(
            ticks, self.loss_burst_rate, self.mean_burst_s * tick_rate_hz, rng
        )
        spikes = _markov_windows(
            ticks, self.jitter_spike_rate, self.mean_burst_s * tick_rate_hz, rng
        )
        # The extra delay inside a spike window is itself drawn once per
        # tick at build time so replaying the schedule is pure array
        # lookup (no runtime randomness to keep in sync).
        jitter_extra = np.where(
            spikes, rng.exponential(self.jitter_spike_s, size=ticks), 0.0
        )
        dropout = _markov_windows(
            ticks, self.landmark_dropout_rate, self.mean_dropout_s * tick_rate_hz, rng
        )
        freeze = _markov_windows(
            ticks, self.freeze_rate, self.mean_freeze_s * tick_rate_hz, rng
        )
        return FaultSchedule(
            spec=self,
            tick_rate_hz=float(tick_rate_hz),
            loss_burst=loss,
            jitter_extra_s=jitter_extra,
            landmark_dropout=dropout,
            freeze=freeze,
            clock_skew=float(self.clock_skew),
        )


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A compiled fault timeline: one entry per simulation tick."""

    spec: FaultSpec
    tick_rate_hz: float
    loss_burst: np.ndarray  # bool per tick: drop all packets sent this tick
    jitter_extra_s: np.ndarray  # float per tick: extra one-way delay
    landmark_dropout: np.ndarray  # bool per tick: face undetectable
    freeze: np.ndarray  # bool per tick: received frame is a stale repeat
    clock_skew: float

    def __post_init__(self) -> None:
        n = self.loss_burst.size
        for name in ("jitter_extra_s", "landmark_dropout", "freeze"):
            if getattr(self, name).size != n:
                raise ValueError("all schedule arrays must share one length")

    @property
    def ticks(self) -> int:
        return int(self.loss_burst.size)

    @property
    def duration_s(self) -> float:
        return self.ticks / self.tick_rate_hz

    def tick_of(self, t: float) -> int:
        """Tick index covering time ``t`` (clamped to the schedule)."""
        idx = int(t * self.tick_rate_hz)
        return min(max(idx, 0), self.ticks - 1)

    def summary(self) -> dict[str, float]:
        """Stationary fault fractions actually realized by the draw."""
        return {
            "loss_burst_fraction": float(self.loss_burst.mean()),
            "jitter_spike_fraction": float((self.jitter_extra_s > 0).mean()),
            "landmark_dropout_fraction": float(self.landmark_dropout.mean()),
            "freeze_fraction": float(self.freeze.mean()),
            "clock_skew": self.clock_skew,
        }
