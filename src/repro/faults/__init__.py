"""Deterministic fault injection for the live-call path.

``repro.faults`` answers one question the paper's evaluation never has
to: what happens to the defense when the call itself degrades?  It
provides seeded fault schedules (:class:`FaultSpec` →
:class:`FaultSchedule`: Gilbert–Elliott loss bursts, jitter spikes,
landmark-dropout windows, frame freezes, clock skew) and the wrappers
that replay them against the network stack and a recorded session
without modifying either's happy path.  The robustness sweep over a
severity grid lives in :func:`repro.experiments.faultmatrix.run_fault_matrix`.
"""

from .injector import FaultyChannel, apply_faults_to_record, build_faulty_links
from .schedule import FaultSchedule, FaultSpec

__all__ = [
    "FaultSchedule",
    "FaultSpec",
    "FaultyChannel",
    "apply_faults_to_record",
    "build_faulty_links",
]
