"""Fault injection wrappers: replay a schedule against the live path.

Three injection points, none of which modifies the wrapped component's
happy path:

* :class:`FaultyChannel` wraps a :class:`~repro.net.channel.NetworkChannel`
  and applies scheduled loss bursts, jitter spikes, and clock skew to the
  packets flowing through it.  The inner channel is always consulted
  first (even for packets a burst will drop), so its seeded RNG consumes
  the same draws with or without faults — fault ablations stay
  apples-to-apples against the clean run.
* :func:`build_faulty_links` mirrors
  :func:`repro.experiments.simulate.build_links` but wraps both channel
  directions with one schedule.
* :func:`apply_faults_to_record` replays the receiver-side vision faults
  (landmark-dropout windows, frame freezes) over a finished
  :class:`~repro.chat.session.SessionRecord` — the faults that live
  *after* the jitter buffer, in the capture/track half of the stack.

Injected frames are marked in their metadata (``fresh=False`` for
freezes, ``landmark_dropout=True`` for dropout) so the streaming quality
gate can count frozen samples exactly like real loss concealment.
"""

from __future__ import annotations

from ..chat.session import SessionRecord
from ..net.channel import DeliveredPacket, NetworkChannel
from ..net.link import MediaLink
from ..net.packet import Packet
from ..obs.instrument import Instrumentation
from ..video.frame import Frame
from ..video.stream import VideoStream
from .schedule import FaultSchedule

__all__ = ["FaultyChannel", "build_faulty_links", "apply_faults_to_record"]


class FaultyChannel:
    """A :class:`NetworkChannel` with a fault schedule riding on top.

    Duck-typed to the channel interface the :class:`MediaLink` uses
    (``transmit``/``transmit_all``/``stats``/``base_delay_s``); the inner
    channel keeps owning the statistics so session bookkeeping is
    unchanged.
    """

    def __init__(
        self,
        inner: NetworkChannel,
        schedule: FaultSchedule,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self._instr = Instrumentation.ensure(instrumentation)

    @property
    def stats(self):
        return self.inner.stats

    @property
    def base_delay_s(self) -> float:
        return self.inner.base_delay_s

    def transmit(self, packet: Packet) -> DeliveredPacket | None:
        # Always run the inner channel first: its RNG must consume the
        # same per-packet draws whether or not a burst eats the packet.
        delivered = self.inner.transmit(packet)
        tick = self.schedule.tick_of(packet.send_time)
        if self.schedule.loss_burst[tick]:
            if delivered is not None:
                self.inner.stats.lost += 1
            self._instr.count("faults_injected_total", kind="loss_burst")
            return None
        if delivered is None:
            return None
        extra = float(self.schedule.jitter_extra_s[tick])
        if extra > 0.0:
            self._instr.count("faults_injected_total", kind="jitter_spike")
        arrival = delivered.arrival_time + extra
        arrival *= 1.0 + self.schedule.clock_skew
        return DeliveredPacket(packet=delivered.packet, arrival_time=arrival)

    def transmit_all(self, packets: list[Packet]) -> list[DeliveredPacket]:
        delivered = []
        for packet in packets:
            result = self.transmit(packet)
            if result is not None:
                delivered.append(result)
        return delivered


def build_faulty_links(
    uplink: MediaLink,
    downlink: MediaLink,
    schedule: FaultSchedule,
    instrumentation: Instrumentation | None = None,
) -> tuple[MediaLink, MediaLink]:
    """Wrap both directions of an existing link pair with one schedule.

    Fresh :class:`MediaLink` objects are returned (codec, packetizer and
    jitter buffer are shared with the originals) so the clean links stay
    usable for a no-fault control run.
    """
    def _wrap(link: MediaLink) -> MediaLink:
        wrapped = MediaLink(
            codec=link.codec,
            packetizer=link.packetizer,
            jitter_buffer=link.jitter_buffer,
        )
        wrapped.channel = FaultyChannel(link.channel, schedule, instrumentation)
        return wrapped

    return _wrap(uplink), _wrap(downlink)


def apply_faults_to_record(
    record: SessionRecord,
    schedule: FaultSchedule,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """Replay receiver-side vision faults over a finished session.

    Freeze windows repeat the previous (possibly already frozen) frame
    and mark it stale; landmark-dropout windows black the frame out so
    the landmark detector misses, exactly like a tracker losing the
    face.  The transmitted stream is never touched — Alice's own capture
    does not ride the faulty path.
    """
    received = VideoStream(fps=record.fps)
    previous: Frame | None = None
    frozen_ticks = 0
    dropout_ticks = 0
    for frame in record.received:
        tick = schedule.tick_of(frame.timestamp)
        if schedule.freeze[tick] and previous is not None:
            frame = Frame(
                pixels=previous.pixels,
                timestamp=frame.timestamp,
                metadata=dict(previous.metadata, fresh=False, fault_frozen=True),
            )
            frozen_ticks += 1
        elif schedule.landmark_dropout[tick]:
            frame = Frame(
                pixels=frame.pixels * 0.0,
                timestamp=frame.timestamp,
                metadata=dict(frame.metadata, landmark_dropout=True),
            )
            dropout_ticks += 1
        received.append(frame)
        previous = frame
    instr = Instrumentation.ensure(instrumentation)
    if frozen_ticks:
        instr.count("faults_injected_total", frozen_ticks, kind="freeze")
    if dropout_ticks:
        instr.count("faults_injected_total", dropout_ticks, kind="landmark_dropout")
    stats = dict(
        record.stats,
        fault_frozen_ticks=frozen_ticks,
        fault_dropout_ticks=dropout_ticks,
        fault_summary=schedule.summary(),
    )
    return SessionRecord(
        transmitted=record.transmitted,
        received=received,
        fps=record.fps,
        stats=stats,
    )
