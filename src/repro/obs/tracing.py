"""Span-based tracing with a stable JSONL sink.

A *span* is one timed operation (a pipeline stage, an engine map, a
simulated chat session) with a name, an optional stage tag from
:data:`PIPELINE_STAGES`, a parent span, and a monotonic duration read
through the :mod:`repro.obs.clock` abstraction — the only way timing
enters the subsystem.

The JSONL schema (one object per line) is a compatibility surface the
``repro trace`` CLI and external tooling parse::

    {"schema": "repro-trace-v1", "span": 3, "parent": 1,
     "name": "features.preprocess", "stage": "preprocessing",
     "start_s": 12.25, "duration_s": 0.0042, "attrs": {...}}

Keys are emitted in exactly that order.  Spans are written when they
*close*, so children precede their parents in the file; consumers must
not assume topological order.
"""

from __future__ import annotations

import contextlib
import json
from collections.abc import Iterator
from typing import IO, Protocol

from .clock import MONOTONIC_CLOCK, Clock

__all__ = [
    "TRACE_SCHEMA",
    "PIPELINE_STAGES",
    "TraceSink",
    "InMemoryTraceSink",
    "JsonlTraceSink",
    "Tracer",
    "validate_trace_record",
    "read_trace",
]

TRACE_SCHEMA = "repro-trace-v1"

#: The stage vocabulary of the verification hot path, in pipeline order.
#: ``repro simulate --trace`` emits at least one span per stage.
PIPELINE_STAGES = ("simulate", "luminance", "preprocessing", "matching", "verdict")

_RECORD_KEYS = ("schema", "span", "parent", "name", "stage", "start_s", "duration_s", "attrs")


class TraceSink(Protocol):
    """Destination for closed-span records."""

    def emit(self, record: dict) -> None: ...


class InMemoryTraceSink:
    """Collects records in a list (tests, worker-side buffering)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)


class JsonlTraceSink:
    """Writes one canonical JSON object per line to a file."""

    def __init__(self, path_or_file: str | IO[str]) -> None:
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False

    def emit(self, record: dict) -> None:
        self._file.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Tracer:
    """Builds the span tree: sequential ids, a stack for parenting.

    A tracer is process-local and single-threaded, like everything else
    in the simulation.  Worker processes run their own tracer into an
    :class:`InMemoryTraceSink` and ship the records home, where
    :meth:`adopt` re-numbers them into the parent's id space.
    """

    def __init__(self, sink: TraceSink | None = None, clock: Clock | None = None) -> None:
        self.sink = sink if sink is not None else InMemoryTraceSink()
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._next_id = 1
        self._stack: list[int] = []

    @contextlib.contextmanager
    def span(self, name: str, stage: str | None = None, **attrs: object) -> Iterator[int]:
        """Time one operation; yields the span id (for correlation)."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = self.clock.now()
        try:
            yield span_id
        finally:
            duration = self.clock.now() - start
            self._stack.pop()
            self.sink.emit(
                {
                    "schema": TRACE_SCHEMA,
                    "span": span_id,
                    "parent": parent,
                    "name": name,
                    "stage": stage,
                    "start_s": start,
                    "duration_s": duration,
                    "attrs": dict(attrs),
                }
            )

    def adopt(self, records: list[dict], parent: int | None = None) -> None:
        """Re-emit foreign (worker) records under this tracer's id space.

        Ids are renumbered deterministically in input order; records
        without a parent are attached to ``parent``.  Timestamps are kept
        verbatim — they are monotonic in the *worker's* clock domain.
        """
        mapping: dict[int, int] = {}
        for record in records:
            mapping[record["span"]] = self._next_id
            self._next_id += 1
        for record in records:
            old_parent = record.get("parent")
            self.sink.emit(
                {
                    **record,
                    "span": mapping[record["span"]],
                    "parent": mapping.get(old_parent, parent),
                }
            )


def validate_trace_record(record: object) -> dict:
    """Check one parsed JSONL object against the v1 schema; raise
    ``ValueError`` with a precise message otherwise."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be an object, got {type(record).__name__}")
    missing = [key for key in _RECORD_KEYS if key not in record]
    if missing:
        raise ValueError(f"trace record missing key(s) {missing}")
    if record["schema"] != TRACE_SCHEMA:
        raise ValueError(f"unknown trace schema {record['schema']!r}")
    if not isinstance(record["span"], int):
        raise ValueError("span id must be an integer")
    if record["parent"] is not None and not isinstance(record["parent"], int):
        raise ValueError("parent must be an integer or null")
    if not isinstance(record["name"], str) or not record["name"]:
        raise ValueError("span name must be a non-empty string")
    if record["stage"] is not None and not isinstance(record["stage"], str):
        raise ValueError("stage must be a string or null")
    for key in ("start_s", "duration_s"):
        if not isinstance(record[key], (int, float)):
            raise ValueError(f"{key} must be a number")
    if record["duration_s"] < 0:
        raise ValueError("duration_s must be non-negative")
    if not isinstance(record["attrs"], dict):
        raise ValueError("attrs must be an object")
    return record


def read_trace(path: str) -> Iterator[dict]:
    """Yield validated span records from a JSONL trace file."""
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from exc
            try:
                yield validate_trace_record(parsed)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
