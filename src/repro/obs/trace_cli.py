"""Argument wiring for ``python -m repro trace``.

Reads a JSONL trace (schema-validated line by line), folds every span's
duration into a fixed-bucket latency histogram per stage, and reports
per-stage span counts, total time, and latency percentiles estimated
from the buckets — the same estimator a Prometheus ``histogram_quantile``
would apply to the exported series.

Exit codes: 0 = report printed, 2 = unreadable or schema-invalid trace.
"""

from __future__ import annotations

import argparse
import json

from .export import render_prometheus
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    quantile_from_buckets,
)
from .tracing import read_trace

__all__ = ["add_trace_arguments", "run_trace"]

_QUANTILES = (0.5, 0.9, 0.99)


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="JSONL trace file written by --trace")
    parser.add_argument(
        "--format",
        choices=("text", "json", "prom"),
        default="text",
        help="text = per-stage latency table, json = stable machine form, "
        "prom = the aggregated histograms in Prometheus text format",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="keep only the N stages with the largest total time",
    )


def _aggregate(path: str) -> tuple[MetricsRegistry, int]:
    """Fold span durations into per-stage histograms; returns (registry,
    total span count).  Spans without a stage tag aggregate under their
    name's first dotted component."""
    registry = MetricsRegistry()
    spans = 0
    for record in read_trace(path):
        spans += 1
        stage = record["stage"] or record["name"].split(".", 1)[0]
        registry.histogram(
            "trace_span_duration_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS_S,
            stage=stage,
        ).observe(record["duration_s"])
    return registry, spans


def _stage_rows(registry: MetricsRegistry, top: int | None) -> list[dict]:
    rows = []
    for series in registry.snapshot().series:
        stage = dict(series.labels)["stage"]
        quantiles = {
            f"p{int(q * 100)}_s": quantile_from_buckets(
                series.bounds, series.bucket_counts, q
            )
            for q in _QUANTILES
        }
        rows.append(
            {"stage": stage, "spans": series.count, "total_s": series.sum, **quantiles}
        )
    rows.sort(key=lambda row: (-row["total_s"], row["stage"]))
    if top is not None:
        if top < 1:
            raise ValueError("--top must be >= 1")
        rows = rows[:top]
    return rows


def run_trace(args: argparse.Namespace) -> int:
    try:
        registry, spans = _aggregate(args.trace)
        rows = _stage_rows(registry, args.top)
    except (OSError, ValueError) as exc:
        print(f"repro trace: {exc}")
        return 2

    if args.format == "prom":
        print(render_prometheus(registry.snapshot()), end="")
        return 0
    if args.format == "json":
        print(json.dumps({"spans": spans, "stages": rows}, sort_keys=True, indent=2))
        return 0

    print(f"trace: {spans} span(s), {len(rows)} stage(s)")
    print(
        f"{'stage':>14s} {'spans':>7s} {'total_s':>9s} "
        f"{'p50_ms':>8s} {'p90_ms':>8s} {'p99_ms':>8s}"
    )
    for row in rows:
        print(
            f"{row['stage']:>14s} {row['spans']:7d} {row['total_s']:9.3f} "
            f"{row['p50_s'] * 1e3:8.2f} {row['p90_s'] * 1e3:8.2f} "
            f"{row['p99_s'] * 1e3:8.2f}"
        )
    return 0
