"""Observability subsystem: metrics registry, span tracing, exporters.

Public surface:

* :class:`Instrumentation` / :data:`NULL` — the one handle instrumented
  code holds (zero-overhead when disabled).
* :class:`MetricsRegistry`, :class:`MetricsSnapshot` — counters, gauges,
  fixed-bucket histograms with an associative, bit-identical merge.
* :class:`Tracer`, :class:`JsonlTraceSink`, :func:`read_trace` — span
  tracing with the stable ``repro-trace-v1`` JSONL schema.
* :func:`render_prometheus` / :func:`render_json` — text exporters.
* :class:`ManualClock` / :data:`MONOTONIC_CLOCK` — the clock abstraction
  (``obs/clock.py`` is the subsystem's only direct ``time.*`` site).

Design rule: registry contents are *deterministic* quantities only;
wall-clock durations travel in spans.  See DESIGN.md §3e.
"""

from .clock import MONOTONIC_CLOCK, Clock, ManualClock, MonotonicClock
from .export import render_json, render_prometheus
from .instrument import NULL, Instrumentation
from .metrics import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SeriesSnapshot,
    quantile_from_buckets,
)
from .tracing import (
    PIPELINE_STAGES,
    TRACE_SCHEMA,
    InMemoryTraceSink,
    JsonlTraceSink,
    Tracer,
    read_trace,
    validate_trace_record,
)

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_FRACTION_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "InMemoryTraceSink",
    "Instrumentation",
    "JsonlTraceSink",
    "MONOTONIC_CLOCK",
    "ManualClock",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MonotonicClock",
    "NULL",
    "PIPELINE_STAGES",
    "SeriesSnapshot",
    "TRACE_SCHEMA",
    "Tracer",
    "quantile_from_buckets",
    "read_trace",
    "render_json",
    "render_prometheus",
    "validate_trace_record",
]
