"""The one handle instrumented code holds: metrics + tracing, or nothing.

Every instrumented constructor takes ``instrumentation: Instrumentation
| None = None`` and normalizes it with :data:`NULL` — so the hot path
never branches on ``None`` and the disabled case costs one attribute
read plus a no-op call (the smoke benchmark bounds it at <5 % of the
simulate path).

An enabled handle is **process-local**: its registry and tracer live in
this process.  Shipping one to an ``ExecutionEngine`` worker would fork
the state and silently drop whatever the worker records, so pickling an
enabled handle raises; workers build their own handle and return a
:class:`~repro.obs.metrics.MetricsSnapshot` (plus buffered span records)
for the parent to merge — the pattern ``repro simulate --jobs N`` uses
to stay bit-identical with serial runs.
"""

from __future__ import annotations

import contextlib

from .clock import Clock
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    MetricsSnapshot,
)
from .tracing import InMemoryTraceSink, Tracer, TraceSink

__all__ = ["Instrumentation", "NULL"]


class _NullSpan:
    """Reusable no-op context manager (allocation-free disabled spans)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def _null_instrumentation() -> "Instrumentation":
    return NULL


class Instrumentation:
    """Facade over a :class:`MetricsRegistry` and a :class:`Tracer`.

    Either side may be absent: ``Instrumentation(registry=...)`` counts
    without tracing (the engine's perf view), ``Instrumentation()`` with
    neither is fully disabled — use the shared :data:`NULL` instead of
    constructing new disabled handles.
    """

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer

    @classmethod
    def enabled(
        cls,
        sink: TraceSink | None = None,
        clock: Clock | None = None,
    ) -> "Instrumentation":
        """A fresh fully-enabled handle (in-memory sink by default)."""
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(sink=sink or InMemoryTraceSink(), clock=clock),
        )

    @staticmethod
    def ensure(instrumentation: "Instrumentation | None") -> "Instrumentation":
        """Normalize an optional argument to a usable handle."""
        return instrumentation if instrumentation is not None else NULL

    @property
    def is_enabled(self) -> bool:
        return self.registry is not None or self.tracer is not None

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def span(
        self, name: str, stage: str | None = None, **attrs: object
    ) -> contextlib.AbstractContextManager:
        if self.tracer is None:
            return _NULL_SPAN
        return self.tracer.span(name, stage=stage, **attrs)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def count(self, name: str, n: float = 1, **labels: object) -> None:
        if self.registry is not None:
            self.registry.counter(name, **labels).inc(n)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels: object,
    ) -> None:
        if self.registry is not None:
            self.registry.histogram(name, buckets=buckets, **labels).observe(value)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        if self.registry is not None:
            self.registry.gauge(name, **labels).set(value)

    def snapshot(self) -> MetricsSnapshot:
        if self.registry is None:
            return MetricsSnapshot()
        return self.registry.snapshot()

    def drain_spans(self) -> list[dict]:
        """Buffered span records (in-memory sinks only) — what a worker
        ships back to the parent tracer's :meth:`~repro.obs.tracing.
        Tracer.adopt`."""
        if self.tracer is None or not isinstance(self.tracer.sink, InMemoryTraceSink):
            return []
        records = list(self.tracer.sink.records)
        self.tracer.sink.records.clear()
        return records

    # ------------------------------------------------------------------

    def __reduce__(self):
        if not self.is_enabled:
            return (_null_instrumentation, ())
        raise TypeError(
            "an enabled Instrumentation is process-local and cannot be "
            "pickled; build one inside the worker and return its snapshot"
        )

    def __repr__(self) -> str:
        return (
            f"Instrumentation(metrics={self.registry is not None}, "
            f"tracing={self.tracer is not None})"
        )


#: The shared disabled handle every un-instrumented call path uses.
NULL = Instrumentation()
