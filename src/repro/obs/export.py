"""Render a :class:`~repro.obs.metrics.MetricsSnapshot` as text.

Two formats:

* :func:`render_prometheus` — the Prometheus exposition text format
  (``# TYPE`` headers, ``{label="value"}`` series, cumulative
  ``_bucket``/``_sum``/``_count`` for histograms).  Deterministic: series
  come out in the snapshot's canonical order.
* :func:`render_json` — the snapshot's dict form as stable JSON
  (sorted keys, 2-space indent), for machine diffing — this is what the
  pool-vs-serial identity check compares.
"""

from __future__ import annotations

import json
import re

from .metrics import MetricsSnapshot, SeriesSnapshot

__all__ = ["render_prometheus", "render_json"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    if _NAME_OK.match(name):
        return name
    cleaned = _SANITIZE.sub("_", name)
    return cleaned if not cleaned[:1].isdigit() else "_" + cleaned


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _render_histogram(series: SeriesSnapshot, name: str, lines: list[str]) -> None:
    cumulative = 0
    for bound, count in zip(series.bounds, series.bucket_counts):
        cumulative += count
        le = 'le="{:g}"'.format(bound)
        lines.append(f"{name}_bucket{_label_text(series.labels, le)} {cumulative}")
    cumulative += series.bucket_counts[-1]
    le_inf = 'le="+Inf"'
    lines.append(f"{name}_bucket{_label_text(series.labels, le_inf)} {cumulative}")
    lines.append(f"{name}_sum{_label_text(series.labels)} {_format_value(series.sum)}")
    lines.append(f"{name}_count{_label_text(series.labels)} {series.count}")


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The snapshot in Prometheus exposition text format."""
    lines: list[str] = []
    typed: set[str] = set()
    for series in snapshot.series:
        name = _metric_name(series.name)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {series.kind}")
        if series.kind == "histogram":
            _render_histogram(series, name, lines)
        else:
            lines.append(
                f"{name}{_label_text(series.labels)} {_format_value(series.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: MetricsSnapshot) -> str:
    """The snapshot as stable, diffable JSON."""
    return json.dumps(snapshot.to_dict(), sort_keys=True, indent=2)
