"""The one blessed wall-clock site of the observability subsystem.

Everything in ``repro.obs`` (and the engine's :class:`~repro.engine.perf.
PerfRecorder`) measures durations through the :class:`Clock` protocol
instead of calling ``time.*`` directly.  That buys two things:

* **Determinism in tests** — a :class:`ManualClock` makes span durations
  and perf wall times exact, so timing-shaped code paths can be asserted
  bit-for-bit instead of with sleeps and tolerances.
* **A single audit point** — reprolint's R002 allows direct ``time.*``
  reads only here (and in the historical ``engine/perf.py`` site); any
  other module reaching for the wall clock is a lint finding.

Timing is *observability only*: no simulation result may depend on a
clock reading, which is why the abstraction lives in ``obs`` and not in
the core pipeline.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "ManualClock", "MonotonicClock", "MONOTONIC_CLOCK"]


class Clock(Protocol):
    """Source of monotonic timestamps in seconds."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        ...


class MonotonicClock:
    """Real monotonic time via ``time.perf_counter``."""

    def now(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:
        return "MonotonicClock()"


class ManualClock:
    """Deterministic clock for tests: advances only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds

    def __repr__(self) -> str:
        return f"ManualClock(now={self._now})"


#: Shared process-wide real clock (stateless, so sharing is free).
MONOTONIC_CLOCK = MonotonicClock()
