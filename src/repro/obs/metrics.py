"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

One registry serves every layer of the stack (pipeline, streaming gate,
engine, fault injector, chat/net).  Its design constraint comes from the
execution engine's determinism promise: per-worker metrics collected
under ``ExecutionEngine.map`` must combine to the *bit-identical* result
whether the tasks ran serially or on a process pool.  Hence:

* every instrument merges **associatively and commutatively** — counters
  and gauges add, histograms add bucket-wise (same bounds required);
* snapshots are **canonically ordered** (sorted by name, labels, kind),
  so two equal registries produce equal snapshots regardless of the
  order series were first touched;
* only *deterministic* quantities belong in the registry (counts,
  seeded draws, signal-quality fractions).  Wall-clock durations go to
  spans (:mod:`repro.obs.tracing`) — never into metrics that are part
  of a pool-vs-serial identity check.
"""

from __future__ import annotations

import bisect
import dataclasses

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SeriesSnapshot",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_FRACTION_BUCKETS",
    "quantile_from_buckets",
]

#: Log-spaced duration buckets (seconds): 100 µs .. 10 s, the range a
#: 10 Hz pipeline stage or a network jitter draw can plausibly land in.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Linear buckets for [0, 1] quantities (quality fractions, hit rates).
DEFAULT_FRACTION_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Canonical label encoding: sorted (key, value) string pairs.
LabelSet = tuple[tuple[str, str], ...]


def _label_set(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (ints stay ints; floats allowed
    for accumulated quantities like seconds)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-set value; merges additively (see :meth:`MetricsRegistry.merge`)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Histogram:
    """Fixed-bucket histogram: finite upper bounds plus an implicit +inf.

    Bounds are part of the series identity — merging histograms with
    different bounds is an error, not a silent resample.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        return quantile_from_buckets(self.bounds, tuple(self.bucket_counts), q)


def quantile_from_buckets(
    bounds: tuple[float, ...], bucket_counts: tuple[int, ...], q: float
) -> float:
    """Estimate the q-quantile from fixed-bucket counts.

    Prometheus-style: linear interpolation inside the bucket the rank
    falls into; the overflow (+inf) bucket reports the highest finite
    bound (there is no upper edge to interpolate toward).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must lie in [0, 1]")
    if len(bucket_counts) != len(bounds) + 1:
        raise ValueError("bucket_counts must have len(bounds) + 1 entries")
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, n in enumerate(bucket_counts):
        if n == 0:
            continue
        if cumulative + n >= rank:
            if i == len(bounds):  # overflow bucket
                return bounds[-1]
            lower = 0.0 if i == 0 else bounds[i - 1]
            upper = bounds[i]
            within = max(rank - cumulative, 0.0) / n
            return lower + (upper - lower) * within
        cumulative += n
    return bounds[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


@dataclasses.dataclass(frozen=True)
class SeriesSnapshot:
    """Immutable state of one (kind, name, labels) series."""

    kind: str
    name: str
    labels: LabelSet
    value: float = 0  # counter / gauge
    bounds: tuple[float, ...] = ()  # histogram
    bucket_counts: tuple[int, ...] = ()
    sum: float = 0.0
    count: int = 0

    @property
    def sort_key(self) -> tuple:
        return (self.name, self.labels, self.kind)

    def merged(self, other: "SeriesSnapshot") -> "SeriesSnapshot":
        if (self.kind, self.name, self.labels) != (other.kind, other.name, other.labels):
            raise ValueError("cannot merge different series")
        if self.kind == "histogram":
            if self.bounds != other.bounds:
                raise ValueError(
                    f"histogram {self.name!r}: bucket bounds differ "
                    f"({self.bounds} vs {other.bounds})"
                )
            return dataclasses.replace(
                self,
                bucket_counts=tuple(
                    a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
                ),
                sum=self.sum + other.sum,
                count=self.count + other.count,
            )
        return dataclasses.replace(self, value=self.value + other.value)

    def to_dict(self) -> dict:
        out: dict = {
            "kind": self.kind,
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
        }
        if self.kind == "histogram":
            out["bounds"] = list(self.bounds)
            out["bucket_counts"] = list(self.bucket_counts)
            out["sum"] = self.sum
            out["count"] = self.count
        else:
            out["value"] = self.value
        return out


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """Canonically ordered, immutable view of a whole registry.

    ``merge`` is associative and commutative, so per-worker snapshots
    combine to the same result in any grouping — the property the
    pool-vs-serial identity tests pin down.
    """

    series: tuple[SeriesSnapshot, ...] = ()

    def merge(self, *others: "MetricsSnapshot") -> "MetricsSnapshot":
        combined: dict[tuple, SeriesSnapshot] = {
            (s.kind, s.name, s.labels): s for s in self.series
        }
        for snap in others:
            for s in snap.series:
                key = (s.kind, s.name, s.labels)
                held = combined.get(key)
                combined[key] = s if held is None else held.merged(s)
        return MetricsSnapshot(
            series=tuple(sorted(combined.values(), key=lambda s: s.sort_key))
        )

    def _lookup(self, name: str, kind: str | None, labels: dict[str, object]):
        wanted = _label_set(labels)
        for s in self.series:
            if s.name == name and s.labels == wanted and (kind is None or s.kind == kind):
                return s
        return None

    # ``kind`` is positional-or-keyword here but label kwargs go through
    # ``labels`` internally, so a metric may itself carry a label literally
    # named "kind" (counter_value does: faults_injected_total{kind=...}).
    def get(self, name: str, kind: str | None = None, **labels: object):
        """The matching series, or ``None``."""
        return self._lookup(name, kind, labels)

    def counter_value(self, name: str, **labels: object) -> float:
        found = self._lookup(name, "counter", labels)
        return found.value if found is not None else 0

    def to_dict(self) -> dict:
        return {"series": [s.to_dict() for s in self.series]}


class MetricsRegistry:
    """Mutable home of every instrument; hand out via get-or-create.

    A (name, labels) pair is bound to one kind for the registry's
    lifetime — asking for the same series as a different kind raises
    instead of silently shadowing.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelSet], object] = {}

    def __len__(self) -> int:
        return len(self._series)

    def _get_or_create(self, cls, name: str, labels: dict[str, object], **kwargs):
        key = (name, _label_set(labels))
        found = self._series.get(key)
        if found is None:
            found = cls(name, key[1], **kwargs)
            self._series[key] = found
        elif not isinstance(found, cls):
            raise TypeError(
                f"series {name!r} {dict(key[1])} is a {type(found).kind}, "
                f"not a {cls.kind}"
            )
        return found

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels: object,
    ) -> Histogram:
        found = self._get_or_create(Histogram, name, labels, bounds=buckets)
        if found.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with bounds {found.bounds}"
            )
        return found

    def get(self, name: str, **labels: object):
        """The live instrument for (name, labels), or ``None``."""
        return self._series.get((name, _label_set(labels)))

    def snapshot(self) -> MetricsSnapshot:
        out = []
        for instrument in self._series.values():
            if isinstance(instrument, Histogram):
                out.append(
                    SeriesSnapshot(
                        kind="histogram",
                        name=instrument.name,
                        labels=instrument.labels,
                        bounds=instrument.bounds,
                        bucket_counts=tuple(instrument.bucket_counts),
                        sum=instrument.sum,
                        count=instrument.count,
                    )
                )
            else:
                out.append(
                    SeriesSnapshot(
                        kind=instrument.kind,
                        name=instrument.name,
                        labels=instrument.labels,
                        value=instrument.value,
                    )
                )
        return MetricsSnapshot(series=tuple(sorted(out, key=lambda s: s.sort_key)))

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into the live instruments."""
        for s in snapshot.series:
            labels = dict(s.labels)
            if s.kind == "counter":
                self.counter(s.name, **labels).inc(s.value)
            elif s.kind == "gauge":
                self.gauge(s.name, **labels).inc(s.value)
            else:
                hist = self.histogram(s.name, buckets=s.bounds, **labels)
                for i, n in enumerate(s.bucket_counts):
                    hist.bucket_counts[i] += n
                hist.sum += s.sum
                hist.count += s.count

    def clear(self) -> None:
        """Drop every series (the registry object itself stays bound)."""
        self._series.clear()

    def __repr__(self) -> str:
        return f"MetricsRegistry(series={len(self._series)})"
