"""Lint run configuration, loaded once from ``[tool.reprolint]``.

Knobs that used to be hardcoded in the rules (the R002/R008 wall-clock
allowlist, the facade module R010 audits, the packages R009 considers
project-owned) live in ``pyproject.toml``::

    [tool.reprolint]
    wall-clock-allowlist = ["engine/perf.py", "obs/clock.py"]
    facade = "repro/api.py"
    project-packages = ["repro"]

    [tool.reprolint.rules.R009]
    ignore-names = ["some_callback"]

A missing section (or a missing pyproject.toml) yields the defaults
below, which reproduce the historical hardcoded behavior exactly — so
repositories without the section lint identically to before.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

__all__ = [
    "LintConfig",
    "TaintConfig",
    "DEFAULT_LINT_CONFIG",
    "DEFAULT_TAINT_CONFIG",
    "load_lint_config",
]


@dataclasses.dataclass(frozen=True)
class TaintConfig:
    """Parsed ``[tool.reprolint.taint]`` options for R017-R021.

    Three matcher grammars, chosen by shape:

    * a **bare name** (``print``, ``redact``) matches the final callable
      segment of any call;
    * a **dotted entry** matches the resolved dotted target — trailing
      ``.`` is a prefix match (``hashlib.`` hits every hash
      constructor), otherwise exact or ``.``-suffix match;
    * ``method@receiver`` matches an attribute call whose receiver text
      contains the substring (``write@stdout`` hits
      ``sys.stdout.write``); an empty receiver part (``counter@``)
      matches any attribute call of that method.

    Name entries in ``source_attrs`` / ``tag_names`` match identifiers
    case-insensitively after stripping underscores, exactly or as a
    ``_``-separated suffix (``secret`` hits ``_DEMO_SECRET`` and
    ``protocol_secret``).
    """

    #: Identifiers (attributes, parameters, dataclass fields) that ARE
    #: key material wherever they appear.
    source_attrs: tuple[str, ...] = (
        "secret",
        "protocol_secret",
        "tenant_key",
        "session_nonce",
        "nonce",
    )
    #: Callables whose return value is key material regardless of
    #: arguments (the PRF hierarchy).
    source_returns: tuple[str, ...] = (
        "prf",
        "prf_stream",
        "derive_tenant_key",
        "derive_session_nonce",
    )
    #: Calls that cap taint at TAG: cryptographic one-way digests whose
    #: output is emit-safe but still compare-sensitive.
    sanitizers: tuple[str, ...] = (
        "hashlib.",
        "hmac.new",
        "ack_tag",
    )
    #: Calls that clear taint entirely (explicit redaction, and
    #: value-shape builtins that never echo their argument).
    redactors: tuple[str, ...] = (
        "redact",
        "len",
        "bool",
        "isinstance",
        "type",
        "id",
    )
    #: Identifiers that are TAG-typed by name (emit-safe, but R020
    #: still demands constant-time comparison).  ``digest`` is
    #: deliberately absent: content-hash digests (cache keys, finding
    #: fingerprints) are legitimately compared with ``==``, and a
    #: digest actually derived from key material is already TAG via
    #: the sanitizer dataflow.
    tag_names: tuple[str, ...] = ("tag", "hmac")
    #: Output sinks for R017: anything the verifier emits where an
    #: attacker could read it.
    output_sinks: tuple[str, ...] = (
        "print",
        "pprint",
        "logging.",
        "json.dump",
        "json.dumps",
        "write@stdout",
        "write@stderr",
        "debug@log",
        "info@log",
        "warning@log",
        "error@log",
        "exception@log",
        "critical@log",
        "span@trac",
        "emit@",
        "counter@",
        "gauge@",
        "histogram@",
    )
    #: Pickle-boundary sinks for R019: payloads serialized into worker
    #: processes or shared memory.
    pickle_sinks: tuple[str, ...] = (
        "map@engine",
        "map_batches@engine",
        "pickle.",
        "SignalPack",
    )


DEFAULT_TAINT_CONFIG = TaintConfig()


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Parsed ``[tool.reprolint]`` options (defaults == historical behavior)."""

    #: Path suffixes of the only modules allowed to read the real clock
    #: (R002 per-file; R008 masks propagation out of these modules).
    wall_clock_allowlist: tuple[str, ...] = ("engine/perf.py", "obs/clock.py")
    #: Path suffix of the public facade whose re-exports R010 audits.
    facade: str = "repro/api.py"
    #: Top-level packages whose public functions R009 audits for
    #: reachability (files outside these packages are exempt).
    project_packages: tuple[str, ...] = ("repro",)
    #: Path suffixes of the modules that *implement* the scheduler
    #: primitives — the only places R012-R015 bless raw asyncio usage,
    #: foreign awaits, and timeout-less parks.
    scheduler_modules: tuple[str, ...] = (
        "service/scheduler.py",
        "service/realtime.py",
    )
    #: Per-rule option tables from ``[tool.reprolint.rules.Rxxx]``.
    rule_options: tuple[tuple[str, tuple[tuple[str, tuple[str, ...]], ...]], ...] = ()
    #: Secret-flow policy from ``[tool.reprolint.taint]`` (R017-R021).
    taint: TaintConfig = DEFAULT_TAINT_CONFIG

    def options_for(self, rule_id: str) -> dict[str, tuple[str, ...]]:
        for rid, options in self.rule_options:
            if rid == rule_id:
                return dict(options)
        return {}


DEFAULT_LINT_CONFIG = LintConfig()


def _string_tuple(value: object, where: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ValueError(f"[tool.reprolint] {where} must be a list of strings")
    return tuple(value)


def load_lint_config(root: str | Path | None = None) -> LintConfig:
    """Parse ``<root>/pyproject.toml``'s ``[tool.reprolint]`` section.

    Returns the defaults when the file or section is absent, or when no
    TOML parser is available (Python < 3.11 without tomli).
    """
    pyproject = Path(root or ".") / "pyproject.toml"
    if not pyproject.is_file():
        return DEFAULT_LINT_CONFIG
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10 fallback, no tomli baked in
        return DEFAULT_LINT_CONFIG
    try:
        document = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"unparseable pyproject.toml: {exc}") from exc
    section = document.get("tool", {}).get("reprolint")
    if not isinstance(section, dict):
        return DEFAULT_LINT_CONFIG

    kwargs: dict = {}
    if "wall-clock-allowlist" in section:
        kwargs["wall_clock_allowlist"] = _string_tuple(
            section["wall-clock-allowlist"], "wall-clock-allowlist"
        )
    if "facade" in section:
        facade = section["facade"]
        if not isinstance(facade, str):
            raise ValueError("[tool.reprolint] facade must be a string path")
        kwargs["facade"] = facade
    if "project-packages" in section:
        kwargs["project_packages"] = _string_tuple(
            section["project-packages"], "project-packages"
        )
    if "scheduler-modules" in section:
        kwargs["scheduler_modules"] = _string_tuple(
            section["scheduler-modules"], "scheduler-modules"
        )
    taint = section.get("taint")
    if taint is not None:
        if not isinstance(taint, dict):
            raise ValueError("[tool.reprolint.taint] must be a table")
        taint_kwargs: dict = {}
        for toml_key, attr in (
            ("source-attrs", "source_attrs"),
            ("source-returns", "source_returns"),
            ("sanitizers", "sanitizers"),
            ("redactors", "redactors"),
            ("tag-names", "tag_names"),
            ("output-sinks", "output_sinks"),
            ("pickle-sinks", "pickle_sinks"),
        ):
            if toml_key in taint:
                taint_kwargs[attr] = _string_tuple(
                    taint[toml_key], f"taint.{toml_key}"
                )
        unknown = set(taint) - {
            "source-attrs",
            "source-returns",
            "sanitizers",
            "redactors",
            "tag-names",
            "output-sinks",
            "pickle-sinks",
        }
        if unknown:
            raise ValueError(
                f"[tool.reprolint.taint] unknown keys: {sorted(unknown)}"
            )
        kwargs["taint"] = TaintConfig(**taint_kwargs)
    rules = section.get("rules", {})
    if rules:
        if not isinstance(rules, dict):
            raise ValueError("[tool.reprolint.rules] must be a table")
        parsed = []
        for rule_id in sorted(rules):
            options = rules[rule_id]
            if not isinstance(options, dict):
                raise ValueError(f"[tool.reprolint.rules.{rule_id}] must be a table")
            parsed.append(
                (
                    rule_id,
                    tuple(
                        (key, _string_tuple(value, f"rules.{rule_id}.{key}"))
                        for key, value in sorted(options.items())
                    ),
                )
            )
        kwargs["rule_options"] = tuple(parsed)
    return LintConfig(**kwargs)
