"""Lint run configuration, loaded once from ``[tool.reprolint]``.

Knobs that used to be hardcoded in the rules (the R002/R008 wall-clock
allowlist, the facade module R010 audits, the packages R009 considers
project-owned) live in ``pyproject.toml``::

    [tool.reprolint]
    wall-clock-allowlist = ["engine/perf.py", "obs/clock.py"]
    facade = "repro/api.py"
    project-packages = ["repro"]

    [tool.reprolint.rules.R009]
    ignore-names = ["some_callback"]

A missing section (or a missing pyproject.toml) yields the defaults
below, which reproduce the historical hardcoded behavior exactly — so
repositories without the section lint identically to before.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

__all__ = ["LintConfig", "DEFAULT_LINT_CONFIG", "load_lint_config"]


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Parsed ``[tool.reprolint]`` options (defaults == historical behavior)."""

    #: Path suffixes of the only modules allowed to read the real clock
    #: (R002 per-file; R008 masks propagation out of these modules).
    wall_clock_allowlist: tuple[str, ...] = ("engine/perf.py", "obs/clock.py")
    #: Path suffix of the public facade whose re-exports R010 audits.
    facade: str = "repro/api.py"
    #: Top-level packages whose public functions R009 audits for
    #: reachability (files outside these packages are exempt).
    project_packages: tuple[str, ...] = ("repro",)
    #: Path suffixes of the modules that *implement* the scheduler
    #: primitives — the only places R012-R015 bless raw asyncio usage,
    #: foreign awaits, and timeout-less parks.
    scheduler_modules: tuple[str, ...] = (
        "service/scheduler.py",
        "service/realtime.py",
    )
    #: Per-rule option tables from ``[tool.reprolint.rules.Rxxx]``.
    rule_options: tuple[tuple[str, tuple[tuple[str, tuple[str, ...]], ...]], ...] = ()

    def options_for(self, rule_id: str) -> dict[str, tuple[str, ...]]:
        for rid, options in self.rule_options:
            if rid == rule_id:
                return dict(options)
        return {}


DEFAULT_LINT_CONFIG = LintConfig()


def _string_tuple(value: object, where: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ValueError(f"[tool.reprolint] {where} must be a list of strings")
    return tuple(value)


def load_lint_config(root: str | Path | None = None) -> LintConfig:
    """Parse ``<root>/pyproject.toml``'s ``[tool.reprolint]`` section.

    Returns the defaults when the file or section is absent, or when no
    TOML parser is available (Python < 3.11 without tomli).
    """
    pyproject = Path(root or ".") / "pyproject.toml"
    if not pyproject.is_file():
        return DEFAULT_LINT_CONFIG
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10 fallback, no tomli baked in
        return DEFAULT_LINT_CONFIG
    try:
        document = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"unparseable pyproject.toml: {exc}") from exc
    section = document.get("tool", {}).get("reprolint")
    if not isinstance(section, dict):
        return DEFAULT_LINT_CONFIG

    kwargs: dict = {}
    if "wall-clock-allowlist" in section:
        kwargs["wall_clock_allowlist"] = _string_tuple(
            section["wall-clock-allowlist"], "wall-clock-allowlist"
        )
    if "facade" in section:
        facade = section["facade"]
        if not isinstance(facade, str):
            raise ValueError("[tool.reprolint] facade must be a string path")
        kwargs["facade"] = facade
    if "project-packages" in section:
        kwargs["project_packages"] = _string_tuple(
            section["project-packages"], "project-packages"
        )
    if "scheduler-modules" in section:
        kwargs["scheduler_modules"] = _string_tuple(
            section["scheduler-modules"], "scheduler-modules"
        )
    rules = section.get("rules", {})
    if rules:
        if not isinstance(rules, dict):
            raise ValueError("[tool.reprolint.rules] must be a table")
        parsed = []
        for rule_id in sorted(rules):
            options = rules[rule_id]
            if not isinstance(options, dict):
                raise ValueError(f"[tool.reprolint.rules.{rule_id}] must be a table")
            parsed.append(
                (
                    rule_id,
                    tuple(
                        (key, _string_tuple(value, f"rules.{rule_id}.{key}"))
                        for key, value in sorted(options.items())
                    ),
                )
            )
        kwargs["rule_options"] = tuple(parsed)
    return LintConfig(**kwargs)
