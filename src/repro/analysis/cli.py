"""Argument wiring for ``python -m repro lint``.

Kept inside the analysis package so ``repro.cli`` only registers the
subcommand; everything lint-specific (defaults, exit codes, baseline
handling) lives next to the code it drives.

The whole-program pass (R007-R011, the concurrency rules R012-R016 and
the secret-flow taint rules R017-R021) is on by default; ``--no-graph``
restores the per-file-only behavior, ``--no-async`` keeps the graph
pass but skips R012-R016, and ``--no-taint`` likewise skips R017-R021.
``--explain RULE_ID`` prints one rule's rationale, an example finding
and the suppression syntax.  ``--changed-only`` is the fast
pre-commit path: per-file rules and findings are restricted to files
``git diff --name-only HEAD`` reports as modified, while module
summaries for the unchanged rest come from the content-hash cache
(``.cache/reprolint/summaries.json``).  Outside a git checkout it
silently falls back to a full run.

Exit codes: 0 = clean (no non-baselined findings), 1 = findings
(including ``E000`` for files that cannot be analyzed), 2 = bad
invocation (missing path, malformed [tool.reprolint]).
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path, PurePath

from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_baselined,
    write_baseline,
)
from .config import load_lint_config
from .graph import SummaryCache, dump_dot, dump_json
from .linter import lint_paths
from .reporters import render_json, render_text
from .rulebase import explain_rule, rule_metadata

__all__ = ["add_lint_arguments", "run_lint"]

#: Where the incremental summary cache lives, relative to the cwd.
CACHE_PATH = Path(".cache") / "reprolint" / "summaries.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is stable and machine-parseable)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE_NAME}; ignored when absent)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, including baselined ones",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE_ID",
        default=None,
        help="print one rule's rationale, an example finding, and the "
        "suppression syntax (R001-R021, W001/W002), then exit",
    )
    parser.add_argument(
        "--graph",
        dest="graph",
        action="store_true",
        default=True,
        help="run the whole-program rules R007-R021 (default: on)",
    )
    parser.add_argument(
        "--no-graph",
        dest="graph",
        action="store_false",
        help="per-file rules only; skip call-graph analysis",
    )
    parser.add_argument(
        "--no-async",
        dest="async_rules",
        action="store_false",
        default=True,
        help="skip the concurrency-safety rules R012-R016",
    )
    parser.add_argument(
        "--no-taint",
        dest="taint_rules",
        action="store_false",
        default=True,
        help="skip the secret-flow taint rules R017-R021",
    )
    parser.add_argument(
        "--dump-graph",
        choices=("json", "dot"),
        default=None,
        help="print the program graph (json: stable schema; dot: Graphviz) "
        "instead of the findings report",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs. git HEAD (summaries for the rest "
        "come from the cache); full run when not in a git checkout",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the summary cache",
    )


def _changed_report_paths(cwd: Path) -> set[str] | None:
    """Report paths of files modified vs. HEAD, or None outside git."""
    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, cwd=cwd, timeout=30, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=30, check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    changed: set[str] = set()
    root = Path(toplevel)
    for line in diff.splitlines():
        name = line.strip()
        if not name.endswith(".py"):
            continue
        try:
            changed.add(PurePath((root / name).resolve().relative_to(cwd.resolve())).as_posix())
        except ValueError:
            continue  # changed file outside the lint cwd
    return changed


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in rule_metadata():
            print(f"{rule['id']}  [{rule['category']}]  {rule['title']}")
            print(f"      {rule['rationale']}")
        return 0

    if args.explain is not None:
        info = explain_rule(args.explain.strip().upper())
        if info is None:
            print(f"reprolint: unknown rule id '{args.explain}' "
                  "(see --list-rules)")
            return 2
        print(f"{info['id']}  {info['title']}  [{info['category']}]")
        print(f"  why       {info['rationale']}")
        if info["example"]:
            print(f"  example   {info['example']}")
        print(f"  suppress  # reprolint: disable={info['id']}  "
              "(on the reported line, with a justification)")
        return 0

    cwd = Path.cwd()
    try:
        config = load_lint_config(cwd)
    except ValueError as exc:
        print(f"reprolint: {exc}")
        return 2

    only: set[str] | None = None
    if args.changed_only:
        only = _changed_report_paths(cwd)  # None -> full run fallback

    cache = None
    if args.graph and not args.no_cache:
        cache = SummaryCache(cwd / CACHE_PATH)

    try:
        result = lint_paths(
            args.paths,
            relative_to=cwd,
            graph=args.graph,
            config=config,
            cache=cache,
            only=only,
            async_rules=args.async_rules,
            taint_rules=args.taint_rules,
        )
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}")
        return 2

    if args.dump_graph is not None:
        if result.graph is None:
            print("reprolint: --dump-graph requires the graph pass (drop --no-graph)")
            return 2
        renderer = dump_json if args.dump_graph == "json" else dump_dot
        print(renderer(result.graph))
        return 0

    if args.write_baseline:
        write_baseline(args.baseline, result.findings)
        print(
            f"reprolint: wrote {len(result.findings)} finding(s) to {args.baseline}"
        )
        return 0

    baseline: set[str] = set()
    if not args.no_baseline and Path(args.baseline).is_file():
        baseline = load_baseline(args.baseline)
    new, baselined = split_baselined(result.findings, baseline)

    renderer = render_json if args.format == "json" else render_text
    print(renderer(new, baselined, result.files_scanned))
    return 1 if new else 0
