"""Argument wiring for ``python -m repro lint``.

Kept inside the analysis package so ``repro.cli`` only registers the
subcommand; everything lint-specific (defaults, exit codes, baseline
handling) lives next to the code it drives.

Exit codes: 0 = clean (no non-baselined findings), 1 = findings.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_baselined,
    write_baseline,
)
from .linter import lint_paths
from .reporters import render_json, render_text
from .rulebase import rule_metadata

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is stable and machine-parseable)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE_NAME}; ignored when absent)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, including baselined ones",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in rule_metadata():
            print(f"{rule['id']}  {rule['title']}")
            print(f"      {rule['rationale']}")
        return 0

    try:
        result = lint_paths(args.paths, relative_to=Path.cwd())
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}")
        return 2

    if args.write_baseline:
        write_baseline(args.baseline, result.findings)
        print(
            f"reprolint: wrote {len(result.findings)} finding(s) to {args.baseline}"
        )
        return 0

    baseline: set[str] = set()
    if not args.no_baseline and Path(args.baseline).is_file():
        baseline = load_baseline(args.baseline)
    new, baselined = split_baselined(result.findings, baseline)

    renderer = render_json if args.format == "json" else render_text
    print(renderer(new, baselined, result.files_scanned))
    return 1 if new else 0
