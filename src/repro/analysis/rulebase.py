"""Rule framework: base visitor class, metadata, and the registry.

A rule is an :class:`ast.NodeVisitor` with identity metadata (id, title,
rationale).  Rules are registered with :func:`register` at import time;
the linter instantiates every registered rule once per module and runs
it over the module's AST.  ``report`` funnels every diagnostic through
the context's suppression check, so inline ``# reprolint: disable=``
comments work uniformly across rules.

Adding a rule:

1. subclass :class:`Rule`, set ``id`` (``Rxxx``), ``title`` and
   ``rationale``;
2. implement ``visit_*`` methods calling ``self.report(node, message)``;
3. decorate with ``@register``;
4. add a fixture snippet to ``tests/analysis/test_rules.py`` that
   triggers it exactly once.
"""

from __future__ import annotations

import ast

from .context import ModuleContext
from .findings import Finding

__all__ = ["Rule", "register", "registered_rules", "rule_metadata"]


class Rule(ast.NodeVisitor):
    """Base class for one reprolint rule over one module."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        if self.ctx.is_suppressed(node, self.id):
            return
        lineno = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
                snippet=self.ctx.snippet_at(lineno),
                end_line=getattr(node, "end_lineno", lineno) or lineno,
            )
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def registered_rules() -> list[type[Rule]]:
    """All rules, in id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_metadata() -> list[dict[str, str]]:
    """JSON-friendly rule table (id, title, rationale)."""
    return [
        {"id": cls.id, "title": cls.title, "rationale": " ".join(cls.rationale.split())}
        for cls in registered_rules()
    ]
