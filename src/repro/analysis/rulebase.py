"""Rule framework: base visitor class, metadata, and the registry.

A rule is an :class:`ast.NodeVisitor` with identity metadata (id, title,
rationale).  Rules are registered with :func:`register` at import time;
the linter instantiates every registered rule once per module and runs
it over the module's AST.  ``report`` funnels every diagnostic through
the context's suppression check, so inline ``# reprolint: disable=``
comments work uniformly across rules.

Adding a rule:

1. subclass :class:`Rule`, set ``id`` (``Rxxx``), ``title`` and
   ``rationale``;
2. implement ``visit_*`` methods calling ``self.report(node, message)``;
3. decorate with ``@register``;
4. add a fixture snippet to ``tests/analysis/test_rules.py`` that
   triggers it exactly once.
"""

from __future__ import annotations

import ast

from .context import ModuleContext
from .findings import Finding

__all__ = [
    "Rule",
    "GraphRule",
    "explain_rule",
    "register",
    "register_graph",
    "registered_rules",
    "registered_graph_rules",
    "registered_rule_ids",
    "rule_category",
    "rule_metadata",
]


class Rule(ast.NodeVisitor):
    """Base class for one reprolint rule over one module."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: One-line offending snippet shown by ``repro lint --explain``.
    example: str = ""
    category: str = "per-file"

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        if self.ctx.is_suppressed(node, self.id):
            return
        lineno = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
                snippet=self.ctx.snippet_at(lineno),
                end_line=getattr(node, "end_lineno", lineno) or lineno,
            )
        )


class GraphRule:
    """Base class for one whole-program (interprocedural) rule.

    Unlike :class:`Rule`, a graph rule runs once over the assembled
    :class:`~repro.analysis.graph.callgraph.ProgramGraph` rather than
    once per module; it anchors each finding at a concrete file/line and
    must route it through :meth:`report` so inline suppressions keep
    working.  Findings may carry an ``evidence`` tuple — one call-chain
    hop per entry, each with its own file:line.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: One-line offending snippet shown by ``repro lint --explain``.
    example: str = ""
    category: str = "whole-program"

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    def run(self, graph) -> list[Finding]:  # graph: ProgramGraph
        raise NotImplementedError

    def report(
        self,
        graph,
        path: str,
        line: int,
        message: str,
        snippet: str = "",
        evidence: tuple[str, ...] = (),
    ) -> None:
        if graph.is_suppressed(path, line, self.id):
            return
        self.findings.append(
            Finding(
                path=path,
                line=line,
                col=1,
                rule=self.id,
                message=message,
                snippet=snippet,
                end_line=line,
                evidence=evidence,
            )
        )


_REGISTRY: dict[str, type[Rule]] = {}
_GRAPH_REGISTRY: dict[str, type[GraphRule]] = {}


def _register_into(registry: dict, rule_cls):
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY or rule_cls.id in _GRAPH_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    registry[rule_cls.id] = rule_cls
    return rule_cls


def register(rule_cls: type[Rule]) -> type[Rule]:
    return _register_into(_REGISTRY, rule_cls)


def register_graph(rule_cls: type[GraphRule]) -> type[GraphRule]:
    return _register_into(_GRAPH_REGISTRY, rule_cls)


def registered_rules() -> list[type[Rule]]:
    """All per-file rules, in id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def registered_graph_rules() -> list[type[GraphRule]]:
    """All whole-program rules, in id order."""
    return [_GRAPH_REGISTRY[rule_id] for rule_id in sorted(_GRAPH_REGISTRY)]


def registered_rule_ids() -> frozenset[str]:
    """Every registered rule id — what ``disable=`` comments and
    ``[tool.reprolint.rules.*]`` tables may legally name."""
    return frozenset(_REGISTRY) | frozenset(_GRAPH_REGISTRY)


def rule_category(rule_id: str) -> str:
    """The category of a registered rule; meta/error ids (``W...``,
    ``E000``) are synthesized by the linter, not registered here."""
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id].category
    if rule_id in _GRAPH_REGISTRY:
        return _GRAPH_REGISTRY[rule_id].category
    if rule_id.startswith("W"):
        return "meta"
    return "error"


def rule_metadata() -> list[dict[str, str]]:
    """JSON-friendly rule table (id, title, category, rationale,
    example), per-file and graph rules interleaved in id order."""
    merged = {**_REGISTRY, **_GRAPH_REGISTRY}
    return [
        {
            "id": rule_id,
            "title": merged[rule_id].title,
            "category": merged[rule_id].category,
            "rationale": " ".join(merged[rule_id].rationale.split()),
            "example": merged[rule_id].example,
        }
        for rule_id in sorted(merged)
    ]


#: Diagnostics the linter synthesizes outside the registry (suppression
#: hygiene), described here so ``--explain`` covers every id a report
#: can carry.
_META_METADATA: dict[str, dict[str, str]] = {
    "W001": {
        "id": "W001",
        "title": "suppression silences nothing",
        "category": "meta",
        "rationale": (
            "A '# reprolint: disable=' comment whose rule no longer fires "
            "on that line is dead weight today and camouflage for a real "
            "finding tomorrow — delete it."
        ),
        "example": "x = 1.0  # reprolint: disable=R004  <- no comparison here",
    },
    "W002": {
        "id": "W002",
        "title": "unknown rule id in a suppression or config table",
        "category": "meta",
        "rationale": (
            "A suppression (or [tool.reprolint.rules.*] table) naming an id "
            "no rule has silences nothing and usually means a typo is "
            "letting the intended rule fire elsewhere."
        ),
        "example": "tag = compute()  # reprolint: disable=R099",
    },
}


def explain_rule(rule_id: str) -> dict[str, str] | None:
    """Full metadata for one rule id (registered or meta), or None."""
    merged = {**_REGISTRY, **_GRAPH_REGISTRY}
    if rule_id in merged:
        cls = merged[rule_id]
        return {
            "id": rule_id,
            "title": cls.title,
            "category": cls.category,
            "rationale": " ".join(cls.rationale.split()),
            "example": cls.example,
        }
    return _META_METADATA.get(rule_id)
