"""The six codebase-specific reprolint rules (R001-R006).

Each rule encodes one determinism or contract invariant this repo's
runtime guarantees depend on (pool==serial bit-identity, seeded fault
schedules, reproducible z1-z4 features).  They are deliberately
*specific to this codebase*: a generic linter cannot know that
``obs/clock.py`` and ``engine/perf.py`` are the blessed wall-clock
sites, or what the field set of ``DetectorConfig`` is.
"""

from __future__ import annotations

import ast
import dataclasses

from ..core.config import DetectorConfig
from .effects import RNG_ALLOWED_NUMPY, WALL_CLOCK_PATHS
from .rulebase import Rule, register

__all__ = ["CONFIG_FIELDS"]

#: The real field set of DetectorConfig — R006 checks string-level uses
#: against it, the static twin of ``with_overrides``'s runtime check.
CONFIG_FIELDS = frozenset(field.name for field in dataclasses.fields(DetectorConfig))


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _contains_call(node: ast.expr) -> bool:
    return any(isinstance(sub, ast.Call) for sub in ast.walk(node))


def _root_name(node: ast.expr) -> str | None:
    """Peel attribute/subscript layers down to the base ``Name``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class UnseededRandomnessRule(Rule):
    id = "R001"
    title = "unseeded global randomness"
    example = "values = [random.random() for _ in range(count)]"
    rationale = """Module-level np.random.* / random.* calls draw from hidden
    global state, so results depend on import order and worker scheduling —
    breaking the engine's pool==serial bit-identity.  Construct a generator
    via numpy.random.default_rng / SeedSequence (see core.seeding.spawn_seeds)
    and pass it down."""

    #: Shared with the whole-program layer (see analysis.effects) so the
    #: two passes cannot disagree about what counts as seeded.
    _ALLOWED_NUMPY = RNG_ALLOWED_NUMPY

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve_dotted(node.func)
        if target is not None:
            if (
                len(target) == 3
                and target[:2] == ["numpy", "random"]
                and target[2] not in self._ALLOWED_NUMPY
            ):
                self.report(
                    node,
                    f"call to numpy.random.{target[2]} uses the global RNG; "
                    "seed an explicit numpy.random.default_rng instead",
                )
            elif len(target) == 2 and target[0] == "random":
                self.report(
                    node,
                    f"call to stdlib random.{target[1]} uses the global RNG; "
                    "use a seeded numpy.random.default_rng instead",
                )
        self.generic_visit(node)


@register
class WallClockRule(Rule):
    id = "R002"
    title = "wall-clock read outside the blessed clock sites"
    example = "started = time.time()"
    rationale = """time.time / perf_counter / datetime.now make results depend
    on when the code ran.  Simulated time must come from the session clock;
    the blessed real-clock sites are the clock abstraction in obs/clock.py
    (which everything else, including the rest of obs/, must go through)
    and the historical perf instrumentation in engine/perf.py."""

    #: Shared with the whole-program layer (see analysis.effects).
    _WALL_CLOCK = WALL_CLOCK_PATHS

    def run(self) -> list:
        # The modules allowed to touch the real clock come from the
        # [tool.reprolint] wall-clock-allowlist (default: obs/clock.py
        # alone — not obs/ wholesale — plus the historical engine/perf.py).
        if self.ctx.path.endswith(tuple(self.ctx.config.wall_clock_allowlist)):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        target = self.ctx.resolve_dotted(node.func)
        if target is not None and tuple(target) in self._WALL_CLOCK:
            self.report(
                node,
                f"wall-clock read {'.'.join(target)}() outside obs/clock.py; "
                "derive time from the session clock or route timing through "
                "the obs.clock abstraction",
            )
        self.generic_visit(node)


@register
class UnpicklableTaskRule(Rule):
    id = "R003"
    title = "unpicklable payload handed to ExecutionEngine.map"
    example = "engine.map(lambda clip: grade(clip), clips)"
    rationale = """ExecutionEngine.map sends the task function to worker
    processes by pickling; lambdas, closures and local defs fail there —
    but only once jobs > 1, so the defect hides in serial test runs.
    Task functions must be module-level."""

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "map":
            receiver = ast.unparse(func.value).lower()
            if "engine" in receiver:
                fn_arg: ast.expr | None = node.args[0] if node.args else None
                if fn_arg is None:
                    for keyword in node.keywords:
                        if keyword.arg == "fn":
                            fn_arg = keyword.value
                if isinstance(fn_arg, ast.Lambda):
                    self.report(
                        node,
                        "lambda passed to ExecutionEngine.map cannot be pickled "
                        "to worker processes; use a module-level function",
                    )
                elif isinstance(fn_arg, ast.Name) and (
                    fn_arg.id in self.ctx.nested_function_names
                    or fn_arg.id in self.ctx.lambda_names
                ):
                    self.report(
                        node,
                        f"'{fn_arg.id}' is a nested def/lambda; ExecutionEngine.map "
                        "payloads must be module-level functions (picklable)",
                    )
        self.generic_visit(node)


@register
class FloatEqualityRule(Rule):
    id = "R004"
    title = "exact float equality comparison"
    example = "if report.lag_s == 0.45:"
    rationale = """== / != against a float literal is only meaningful for
    values set verbatim; anything that went through the signal chain carries
    rounding that a refactor (e.g. the cumsum-vectorized moving windows) may
    legally change.  Use pytest.approx / math.isclose for computed values; a
    verbatim check keeps == with an inline suppression."""

    def run(self) -> list:
        self._checked: set[int] = set()
        if self.ctx.is_test:
            self._run_over_test_asserts()
        else:
            self.visit(self.ctx.tree)
        return self.findings

    # --- library code: every float-literal equality is suspect ---------

    def visit_Compare(self, node: ast.Compare) -> None:
        for left, op, right in self._equality_pairs(node):
            if _is_float_literal(left) or _is_float_literal(right):
                self.report(
                    node,
                    "exact float equality; computed floats need a tolerance "
                    "(math.isclose) — suppress inline if the value is set verbatim",
                )
                break
        self.generic_visit(node)

    # --- test code: only asserts, and only on computed values ----------

    def _run_over_test_asserts(self) -> None:
        module_scope: list[ast.Assert] = [
            stmt for stmt in self.ctx.tree.body if isinstance(stmt, ast.Assert)
        ]
        self._check_asserts(module_scope, computed=set())
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                asserts = [
                    sub for sub in ast.walk(node) if isinstance(sub, ast.Assert)
                ]
                self._check_asserts(asserts, computed=self._computed_names(node))

    @staticmethod
    def _computed_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Names assigned (directly or transitively) from a call result."""
        computed: set[str] = set()
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            root = _root_name(value)
            if _contains_call(value) or (root is not None and root in computed):
                for target in targets:
                    if isinstance(target, ast.Name):
                        computed.add(target.id)
                    elif isinstance(target, ast.Tuple):
                        computed.update(
                            el.id for el in target.elts if isinstance(el, ast.Name)
                        )
        return computed

    def _check_asserts(self, asserts: list[ast.Assert], computed: set[str]) -> None:
        for stmt in asserts:
            for node in ast.walk(stmt.test):
                if not isinstance(node, ast.Compare) or id(node) in self._checked:
                    continue
                self._checked.add(id(node))
                for left, op, right in self._equality_pairs(node):
                    literal, other = None, None
                    if _is_float_literal(left):
                        literal, other = left, right
                    elif _is_float_literal(right):
                        literal, other = right, left
                    if literal is None:
                        continue
                    root = _root_name(other)
                    if _contains_call(other) or (root is not None and root in computed):
                        self.report(
                            node,
                            "assert compares a computed float with exact ==; use "
                            "pytest.approx — suppress inline if set verbatim",
                        )
                        break

    @staticmethod
    def _equality_pairs(node: ast.Compare):
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                yield operands[i], op, operands[i + 1]


@register
class MutableDefaultRule(Rule):
    id = "R005"
    title = "mutable default argument / dataclass field default"
    example = "def collect(out=[]):"
    rationale = """A mutable default is created once and shared across calls
    (or across dataclass instances), so one caller's mutation leaks into the
    next — state the engine's task isolation assumes cannot exist.  Use None
    plus an inner default, or dataclasses.field(default_factory=...)."""

    _MUTABLE_CTORS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
    )
    _NUMPY_CTORS = frozenset({"array", "zeros", "ones", "empty", "full"})

    def _is_mutable(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in self._MUTABLE_CTORS:
                return True
            target = self.ctx.resolve_dotted(node.func)
            if (
                target is not None
                and len(target) == 2
                and target[0] == "numpy"
                and target[1] in self._NUMPY_CTORS
            ):
                return True
        return False

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_dataclass(node):
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                    continue
                value = stmt.value
                if self._is_field_call(value):
                    for keyword in value.keywords:  # type: ignore[union-attr]
                        if keyword.arg == "default" and self._is_mutable(keyword.value):
                            self.report(
                                keyword.value,
                                "mutable dataclass field default is shared across "
                                "instances; use field(default_factory=...)",
                            )
                elif self._is_mutable(value):
                    self.report(
                        value,
                        "mutable dataclass field default is shared across "
                        "instances; use field(default_factory=...)",
                    )
        self.generic_visit(node)

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            expr = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = expr.attr if isinstance(expr, ast.Attribute) else (
                expr.id if isinstance(expr, ast.Name) else ""
            )
            if name == "dataclass":
                return True
        return False

    @staticmethod
    def _is_field_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name == "field"


@register
class ConfigContractRule(Rule):
    id = "R006"
    title = "DetectorConfig contract violation"
    example = "tuned = config.replace(clip_duration_s=12.0)"
    rationale = """DetectorConfig.replace is deprecated (with_overrides is the
    validated path), and config field names written as strings or keywords
    must exist on the dataclass — the static twin of with_overrides' runtime
    unknown-field check, catching typos before a sweep runs."""

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "with_overrides":
                self._check_override_keywords(node)
            elif func.attr == "replace":
                self._check_replace(node)
        elif isinstance(func, ast.Name) and func.id in {"getattr", "setattr", "hasattr"}:
            self._check_getattr(node)
        self.generic_visit(node)

    def _check_override_keywords(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg not in CONFIG_FIELDS:
                self.report(
                    node,
                    f"with_overrides keyword '{keyword.arg}' is not a "
                    "DetectorConfig field (would raise at runtime)",
                )
            elif keyword.arg is None and isinstance(keyword.value, ast.Dict):
                for key in keyword.value.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value not in CONFIG_FIELDS
                    ):
                        self.report(
                            node,
                            f"with_overrides key '{key.value}' is not a "
                            "DetectorConfig field (would raise at runtime)",
                        )

    def _check_replace(self, node: ast.Call) -> None:
        func = node.func
        assert isinstance(func, ast.Attribute)
        receiver = ast.unparse(func.value)
        receiver_base = receiver.split(".")[0].split("(")[0]
        # dataclasses.replace on other dataclasses is fine; str.replace
        # et al. take positional arguments and are excluded below.
        if receiver_base in {"dataclasses", "dc"}:
            return
        named = [keyword.arg for keyword in node.keywords if keyword.arg is not None]
        if node.args or not named:
            return
        if all(name in CONFIG_FIELDS for name in named):
            self.report(
                node,
                f"{receiver}.replace(...) uses the deprecated DetectorConfig "
                "alias; call with_overrides instead",
            )

    def _check_getattr(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        obj, name = node.args[0], node.args[1]
        if "config" not in ast.unparse(obj).lower():
            return
        if not (isinstance(name, ast.Constant) and isinstance(name.value, str)):
            return
        value = name.value
        if value.isidentifier() and not value.startswith("_") and value not in CONFIG_FIELDS:
            self.report(
                node,
                f"config attribute string '{value}' does not name a "
                "DetectorConfig field",
            )
