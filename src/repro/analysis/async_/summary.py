"""Async-aware additions to the per-function summary.

:func:`collect_async_info` walks one function body and records, in a
JSON-serializable form, everything the concurrency rules need:

* **await sites** — what a coroutine suspends on, whether the wait is
  bounded (a ``timeout=``/``wall_guard_s=`` keyword or the positional
  timeout slot of the known primitives), and the method name so R015
  can recognize ``park``/``get``/``join`` on unresolvable receivers;
* **lock regions** — ``with``/``async with`` spans whose context
  expression *shapes* like a lock (``self._lock``, ``self._locks[i]``,
  a local/module variable, or a getter call).  Whether the shape really
  is a lock is decided at graph time against the recorded constructors,
  so summaries stay config-independent and cache-stable;
* **spawn/run sites** — ``<sched>.spawn(coro(...))`` and
  ``<sched>.run(coro(...))`` with the statically resolvable task
  target and, for runs, whether a ``wall_guard_s`` guard is passed;
* **blocking calls** — ``time.sleep``, ``open``/``io.open``,
  ``subprocess.*``/``os.system``: wall-clock work no scheduler task or
  lock region may do;
* **state writes** — assignments to ``self.<attr>`` and declared
  module globals, the raw material of the R016 race check.

The collector deliberately takes the target classifier as a callback
(rather than importing :mod:`..graph.summarize`) so the import edge
between the graph and async layers points one way only.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable

__all__ = [
    "AsyncInfo",
    "AwaitSite",
    "BlockingSite",
    "LockSite",
    "RunSite",
    "SpawnSite",
    "StateWrite",
    "collect_async_info",
]

#: Keyword names that bound a wait or a run.
_TIMEOUT_KEYWORDS = frozenset({"timeout", "wall_guard_s"})

#: Positional-argument count at which a known primitive's wait becomes
#: bounded (``park(waiter, timeout)``, ``get(timeout)``,
#: ``run(main, wall_guard_s)``).
_TIMEOUT_ARITY = {"park": 2, "get": 1, "run": 2}

#: Dotted externals that block the hosting thread.
_BLOCKING_PREFIXES = ("subprocess.", "os.system", "shutil.")


def _ct_from_dict(data: dict):
    from ..graph.summarize import CallTarget

    return CallTarget.from_dict(data)


def _opt_ct(value) -> dict | None:
    return value.to_dict() if value is not None else None


def _opt_ct_from(data) -> object | None:
    return _ct_from_dict(data) if data else None


@dataclasses.dataclass(frozen=True)
class AwaitSite:
    """One ``await <call>(...)`` inside a coroutine."""

    target: object | None  # CallTarget when statically classifiable
    line: int
    method: str  # last attribute segment ("park", "get", "join", ...)
    receiver: str  # lowercased receiver text, "" for bare names
    has_timeout: bool

    def to_dict(self) -> dict:
        return {
            "target": _opt_ct(self.target),
            "line": self.line,
            "method": self.method,
            "receiver": self.receiver,
            "has_timeout": self.has_timeout,
        }

    @staticmethod
    def from_dict(data: dict) -> "AwaitSite":
        return AwaitSite(
            target=_opt_ct_from(data.get("target")),
            line=data["line"],
            method=data["method"],
            receiver=data["receiver"],
            has_timeout=data["has_timeout"],
        )


@dataclasses.dataclass(frozen=True)
class LockSite:
    """One ``with``/``async with`` item whose context expression shapes
    like a lock.  ``shape`` is how the expression was spelled:
    ``self_attr``/``self_item`` (``self._lock`` / ``self._locks[i]``),
    ``name`` (local or module variable), or ``call``/``self_call`` (a
    getter whose return the graph layer resolves)."""

    shape: str
    name: str  # attribute / variable / getter text
    line: int
    end_line: int
    ctor: object | None = None  # CallTarget the variable was assigned from
    getter: object | None = None  # CallTarget of the lock-returning call

    def to_dict(self) -> dict:
        return {
            "shape": self.shape,
            "name": self.name,
            "line": self.line,
            "end_line": self.end_line,
            "ctor": _opt_ct(self.ctor),
            "getter": _opt_ct(self.getter),
        }

    @staticmethod
    def from_dict(data: dict) -> "LockSite":
        return LockSite(
            shape=data["shape"],
            name=data["name"],
            line=data["line"],
            end_line=data["end_line"],
            ctor=_opt_ct_from(data.get("ctor")),
            getter=_opt_ct_from(data.get("getter")),
        )


@dataclasses.dataclass(frozen=True)
class SpawnSite:
    """``<sched>.spawn(task(...))`` — a task root when resolvable."""

    target: object | None
    line: int

    def to_dict(self) -> dict:
        return {"target": _opt_ct(self.target), "line": self.line}

    @staticmethod
    def from_dict(data: dict) -> "SpawnSite":
        return SpawnSite(target=_opt_ct_from(data.get("target")), line=data["line"])


@dataclasses.dataclass(frozen=True)
class RunSite:
    """``<sched>.run(main(...))`` — the root task plus guard status."""

    target: object | None
    line: int
    has_guard: bool

    def to_dict(self) -> dict:
        return {
            "target": _opt_ct(self.target),
            "line": self.line,
            "has_guard": self.has_guard,
        }

    @staticmethod
    def from_dict(data: dict) -> "RunSite":
        return RunSite(
            target=_opt_ct_from(data.get("target")),
            line=data["line"],
            has_guard=data["has_guard"],
        )


@dataclasses.dataclass(frozen=True)
class BlockingSite:
    """A call that blocks the hosting thread (sleep, file I/O, ...)."""

    detail: str
    line: int

    def to_dict(self) -> dict:
        return {"detail": self.detail, "line": self.line}

    @staticmethod
    def from_dict(data: dict) -> "BlockingSite":
        return BlockingSite(detail=data["detail"], line=data["line"])


@dataclasses.dataclass(frozen=True)
class StateWrite:
    """An assignment to shared state: ``Class.attr`` for ``self.<attr>``
    targets, a bare name for declared module globals."""

    attr: str
    line: int
    is_global: bool = False

    def to_dict(self) -> dict:
        return {"attr": self.attr, "line": self.line, "is_global": self.is_global}

    @staticmethod
    def from_dict(data: dict) -> "StateWrite":
        return StateWrite(
            attr=data["attr"], line=data["line"], is_global=data["is_global"]
        )


@dataclasses.dataclass(frozen=True)
class AsyncInfo:
    """Everything the concurrency rules need from one function."""

    is_async: bool = False
    awaits: tuple[AwaitSite, ...] = ()
    locks: tuple[LockSite, ...] = ()
    spawns: tuple[SpawnSite, ...] = ()
    runs: tuple[RunSite, ...] = ()
    blocking: tuple[BlockingSite, ...] = ()
    writes: tuple[StateWrite, ...] = ()
    returns_lock_attr: str | None = None
    returns_lock_item: bool = False

    def is_empty(self) -> bool:
        return self == _EMPTY

    def to_dict(self) -> dict:
        out: dict = {}
        if self.is_async:
            out["is_async"] = True
        for key, items in (
            ("awaits", self.awaits),
            ("locks", self.locks),
            ("spawns", self.spawns),
            ("runs", self.runs),
            ("blocking", self.blocking),
            ("writes", self.writes),
        ):
            if items:
                out[key] = [item.to_dict() for item in items]
        if self.returns_lock_attr is not None:
            out["returns_lock_attr"] = self.returns_lock_attr
            out["returns_lock_item"] = self.returns_lock_item
        return out

    @staticmethod
    def from_dict(data: dict) -> "AsyncInfo":
        return AsyncInfo(
            is_async=data.get("is_async", False),
            awaits=tuple(AwaitSite.from_dict(d) for d in data.get("awaits", ())),
            locks=tuple(LockSite.from_dict(d) for d in data.get("locks", ())),
            spawns=tuple(SpawnSite.from_dict(d) for d in data.get("spawns", ())),
            runs=tuple(RunSite.from_dict(d) for d in data.get("runs", ())),
            blocking=tuple(BlockingSite.from_dict(d) for d in data.get("blocking", ())),
            writes=tuple(StateWrite.from_dict(d) for d in data.get("writes", ())),
            returns_lock_attr=data.get("returns_lock_attr"),
            returns_lock_item=data.get("returns_lock_item", False),
        )


_EMPTY = AsyncInfo()

EMPTY_ASYNC_INFO = _EMPTY


def _receiver_text(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        try:
            return ast.unparse(func.value).lower()
        except Exception:  # pragma: no cover - unparse is total on valid ASTs
            return ""
    return ""


def _method_name(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _looks_like_scheduler(receiver: str) -> bool:
    return "sched" in receiver


def _has_timeout(call: ast.Call, method: str) -> bool:
    for keyword in call.keywords:
        if keyword.arg in _TIMEOUT_KEYWORDS:
            return True
    arity = _TIMEOUT_ARITY.get(method)
    return arity is not None and len(call.args) >= arity


def _first_call_in(expr: ast.expr) -> ast.Call | None:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            return sub
    return None


def _lock_name_heuristic(name: str) -> bool:
    lowered = name.lower()
    return "lock" in lowered and "clock" not in lowered


class _AsyncCollector:
    def __init__(
        self,
        classify: Callable[[ast.expr], object | None],
        resolve_dotted: Callable[[ast.expr], list[str] | None],
        is_open: Callable[[ast.Call], bool],
        assigns: dict[str, ast.expr],
        cls_name: str | None,
    ) -> None:
        self.classify = classify
        self.resolve_dotted = resolve_dotted
        self.is_open = is_open
        self.assigns = assigns
        self.cls_name = cls_name
        self.awaits: list[AwaitSite] = []
        self.locks: list[LockSite] = []
        self.spawns: list[SpawnSite] = []
        self.runs: list[RunSite] = []
        self.blocking: list[BlockingSite] = []
        self.writes: list[StateWrite] = []
        self.globals_declared: set[str] = set()

    # -- await sites ----------------------------------------------------

    def _visit_await(self, node: ast.Await) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        method = _method_name(call.func)
        self.awaits.append(
            AwaitSite(
                target=self.classify(call.func),
                line=node.lineno,
                method=method,
                receiver=_receiver_text(call.func),
                has_timeout=_has_timeout(call, method),
            )
        )

    # -- lock regions ---------------------------------------------------

    def _lock_site(self, expr: ast.expr, line: int, end_line: int) -> LockSite | None:
        # self._lock / self._locks[i]
        if isinstance(expr, ast.Subscript):
            inner = expr.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                return LockSite("self_item", inner.attr, line, end_line)
            if isinstance(inner, ast.Name):
                return self._name_lock(inner.id, line, end_line)
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return LockSite("self_attr", expr.attr, line, end_line)
            return None
        if isinstance(expr, ast.Name):
            return self._name_lock(expr.id, line, end_line)
        if isinstance(expr, ast.Call):
            getter = self.classify(expr.func)
            if getter is None:
                return None
            return LockSite(
                "call", _method_name(expr.func), line, end_line, getter=getter
            )
        return None

    def _name_lock(self, name: str, line: int, end_line: int) -> LockSite:
        ctor = None
        assigned = self.assigns.get(name)
        if isinstance(assigned, ast.Call):
            ctor = self.classify(assigned.func)
        elif assigned is not None:
            call = _first_call_in(assigned)
            if call is not None:
                ctor = self.classify(call.func)
        return LockSite("name", name, line, end_line, ctor=ctor)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        end_line = node.end_lineno or node.lineno
        for item in node.items:
            site = self._lock_site(item.context_expr, node.lineno, end_line)
            if site is not None:
                self.locks.append(site)

    # -- calls: spawn/run/blocking --------------------------------------

    def _task_target(self, call: ast.Call) -> object | None:
        if not call.args or not isinstance(call.args[0], ast.Call):
            return None
        return self.classify(call.args[0].func)

    def _visit_call(self, node: ast.Call) -> None:
        method = _method_name(node.func)
        receiver = _receiver_text(node.func)
        if method == "spawn" and _looks_like_scheduler(receiver):
            self.spawns.append(SpawnSite(self._task_target(node), node.lineno))
        elif method == "run" and _looks_like_scheduler(receiver):
            self.runs.append(
                RunSite(
                    self._task_target(node), node.lineno, _has_timeout(node, "run")
                )
            )
        self._record_blocking(node)

    def _record_blocking(self, node: ast.Call) -> None:
        if self.is_open(node):
            self.blocking.append(BlockingSite("open", node.lineno))
            return
        resolved = self.resolve_dotted(node.func)
        if resolved is not None and tuple(resolved) == ("time", "sleep"):
            self.blocking.append(BlockingSite("time.sleep", node.lineno))
            return
        target = self.classify(node.func)
        if target is None or getattr(target, "kind", "") != "dotted":
            return
        dotted = target.target
        if dotted.startswith(_BLOCKING_PREFIXES) or dotted == "os.system":
            self.blocking.append(BlockingSite(dotted, node.lineno))

    # -- shared-state writes --------------------------------------------

    def _write_targets(self, node: ast.AST) -> list[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target] if getattr(node, "value", None) is not None else []
        return []

    def _visit_write(self, node: ast.AST) -> None:
        for target in self._write_targets(node):
            expr = target
            if isinstance(expr, ast.Subscript):
                expr = expr.value
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.cls_name is not None
            ):
                self.writes.append(
                    StateWrite(f"{self.cls_name}.{expr.attr}", node.lineno)
                )
            elif isinstance(expr, ast.Name) and expr.id in self.globals_declared:
                self.writes.append(StateWrite(expr.id, node.lineno, is_global=True))

    # -- the walk -------------------------------------------------------

    def run(self, func_node: ast.FunctionDef | ast.AsyncFunctionDef) -> AsyncInfo:
        for node in ast.walk(func_node):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
        for node in ast.walk(func_node):
            if isinstance(node, ast.Await):
                self._visit_await(node)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                self._visit_with(node)
            elif isinstance(node, ast.Call):
                self._visit_call(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._visit_write(node)
        info = AsyncInfo(
            is_async=isinstance(func_node, ast.AsyncFunctionDef),
            awaits=tuple(self.awaits),
            locks=tuple(self.locks),
            spawns=tuple(self.spawns),
            runs=tuple(self.runs),
            blocking=tuple(self.blocking),
            writes=tuple(self.writes),
            returns_lock_attr=self._returned_attr(func_node)[0],
            returns_lock_item=self._returned_attr(func_node)[1],
        )
        return _EMPTY if info == _EMPTY else info

    def _returned_attr(
        self, func_node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[str | None, bool]:
        """``return self.<attr>`` / ``return self.<attr>[...]`` — the
        shape of a lock getter; lockness is decided at graph time."""
        for node in ast.walk(func_node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            expr = node.value
            item = isinstance(expr, ast.Subscript)
            if item:
                expr = expr.value
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return expr.attr, item
        return None, False


def collect_async_info(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    classify: Callable[[ast.expr], object | None],
    resolve_dotted: Callable[[ast.expr], list[str] | None],
    is_open: Callable[[ast.Call], bool],
    assigns: dict[str, ast.expr],
    cls_name: str | None,
) -> AsyncInfo:
    """Collect the concurrency summary of one function body."""
    collector = _AsyncCollector(classify, resolve_dotted, is_open, assigns, cls_name)
    return collector.run(func_node)
