"""reproasync: static concurrency-safety analysis (R012-R016).

The service layer's load-bearing contract — "a registered task may only
suspend through scheduler primitives" — plus lock ordering, blocking
calls, bounded waits, and cross-task shared state are all properties of
the *call graph*, not of any single module.  This package extends the
reprograph layer with an async-aware per-function summary
(:mod:`.summary`), a fixed-point lock-set dataflow over the program
graph (:mod:`.lockset`), and the five whole-program rules R012-R016
(:mod:`.rules`).

This ``__init__`` is deliberately empty of imports: ``graph.summarize``
imports :mod:`.summary` while this package's rules import the graph
layer, and keeping the package root inert makes that order insensitive.
"""
