"""The five concurrency-safety rules (R012-R016).

All five run over the assembled program graph through the shared
:class:`~repro.analysis.async_.lockset.ConcurrencyModel` — one lock-set
dataflow and one task-reachability pass feed every rule.  Findings
carry the spawn/run chain as evidence (``task root 'x' spawned at
file:line -> a -> b``), the same per-hop file:line idiom as R007-R011.
"""

from __future__ import annotations

from ..findings import Finding
from ..rulebase import GraphRule, register_graph
from .lockset import PARKING_METHODS, concurrency_model

__all__ = ["ASYNC_RULE_IDS"]

#: The rule ids ``--no-async`` switches off.
ASYNC_RULE_IDS = frozenset({"R012", "R013", "R014", "R015", "R016"})


class _ConcurrencyRule(GraphRule):
    category = "concurrency"


@register_graph
class ForeignAwaitRule(_ConcurrencyRule):
    id = "R012"
    title = "task-reachable coroutine awaits a non-scheduler primitive"
    example = "await asyncio.sleep(0.5)  # inside a scheduler task"
    rationale = """The service's deterministic mode only works because the
    virtual driver sees every suspension: a registered task may only suspend
    through scheduler primitives (sleep, park, join, the lock/queue built on
    them).  A coroutine reachable from Scheduler.spawn/run that awaits raw
    asyncio.sleep, a bare future, or gather parks where the driver cannot
    look, so virtual time stalls and the run wedges.  The scheduler modules
    themselves are exempt — they are where the primitives bottom out."""

    def run(self, graph) -> list[Finding]:
        model = concurrency_model(graph)
        allowlist = tuple(
            graph.config.options_for(self.id).get("primitive-allowlist", ())
        )
        for node_id in sorted(model.task_reach):
            info = graph.nodes[node_id]
            if model.is_scheduler_path(info.path):
                continue
            for site in model.async_info(node_id).awaits:
                if site.target is None:
                    continue
                resolved = graph.resolve_target(info.module, site.target)
                if resolved is None or resolved[0] != "external":
                    continue
                dotted = ".".join(resolved[1])
                if any(
                    dotted == allowed or dotted.startswith(allowed + ".")
                    for allowed in allowlist
                ):
                    continue
                self.report(
                    graph,
                    info.path,
                    site.line,
                    f"task-reachable coroutine '{info.dotted}' awaits foreign "
                    f"'{dotted}' — only scheduler primitives may suspend a "
                    "registered task (anything else stalls virtual time)",
                    evidence=(
                        *model.chain(node_id),
                        f"{info.dotted} awaits {dotted}() "
                        f"({info.path}:{site.line})",
                    ),
                )
        return self.findings


@register_graph
class LockOrderInversionRule(_ConcurrencyRule):
    id = "R013"
    title = "lock-order inversion across ServiceLock acquisitions"
    example = "async with self._b:  # elsewhere: a taken before b"
    rationale = """Two tasks acquiring the same locks in opposite orders
    deadlock the moment their schedules interleave — and under the virtual
    scheduler that interleaving is deterministic, so the hang reproduces
    every run.  This rule builds the acquisition graph from the lock-set
    dataflow (an edge per lock acquired while another is held, including
    sharded pools like TenantBankCache's crc32 shards, which count as one
    identity) and flags every cycle with each acquisition site."""

    def run(self, graph) -> list[Finding]:
        model = concurrency_model(graph)
        edges: dict[str, dict[str, tuple[str, int, str]]] = {}
        for node_id in sorted(graph.nodes):
            info = graph.nodes[node_id]
            entry = model.entry.get(node_id, frozenset())
            regions = model.regions.get(node_id, ())
            for start, _end, key in regions:
                held = set(entry)
                held.update(
                    other_key
                    for o_start, o_end, other_key in regions
                    if o_start <= start <= o_end and other_key != key
                )
                for holder in held:
                    if holder != key:
                        edges.setdefault(holder, {}).setdefault(
                            key, (info.path, start, info.dotted)
                        )
        for cycle in self._cycles(edges):
            path, line, _dotted = edges[cycle[0]][cycle[1]]
            pretty = " -> ".join([*cycle, cycle[0]])
            evidence = []
            for i, held in enumerate(cycle):
                acquired = cycle[(i + 1) % len(cycle)]
                e_path, e_line, e_dotted = edges[held][acquired]
                evidence.append(
                    f"{e_dotted} acquires {acquired} while holding {held} "
                    f"({e_path}:{e_line})"
                )
            self.report(
                graph,
                path,
                line,
                f"lock-order inversion: {pretty} — tasks taking these locks "
                "in opposite orders deadlock",
                evidence=tuple(evidence),
            )
        return self.findings

    @staticmethod
    def _cycles(edges) -> list[tuple[str, ...]]:
        """Simple cycles, each enumerated once, rooted at its smallest
        lock key; bounded depth keeps pathological graphs cheap."""
        cycles: list[tuple[str, ...]] = []
        for start in sorted(edges):
            stack = [(start, (start,))]
            while stack:
                node, trail = stack.pop()
                for nxt in sorted(edges.get(node, ()), reverse=True):
                    if nxt == start and len(trail) >= 2:
                        cycles.append(trail)
                    elif nxt > start and nxt not in trail and len(trail) < 8:
                        stack.append((nxt, trail + (nxt,)))
        return cycles


@register_graph
class BlockingCallRule(_ConcurrencyRule):
    id = "R014"
    title = "blocking call under a ServiceLock or inside a scheduler task"
    example = "async with self._lock: results = engine.map(fn, clips)"
    rationale = """time.sleep, file I/O, or a whole ExecutionEngine.map fan-out
    executed while a ServiceLock is held serializes every contending session
    behind wall-clock work; executed inside a scheduler task it freezes the
    cooperative event loop outright (and deadlocks the virtual driver, which
    may only advance when every task is parked).  Blocking work belongs
    before the spawn or behind an executor boundary."""

    def run(self, graph) -> list[Finding]:
        model = concurrency_model(graph)
        for node_id in sorted(graph.nodes):
            info = graph.nodes[node_id]
            if model.is_scheduler_path(info.path):
                continue
            for site in model.async_info(node_id).blocking:
                self._check(graph, model, node_id, site.line, site.detail)
        for module, summary in sorted(graph.modules.items()):
            if model.is_scheduler_path(summary.path):
                continue
            for site in summary.map_sites:
                node_id = f"{module}:{site.func}"
                if node_id in graph.nodes:
                    self._check(
                        graph, model, node_id, site.line, "ExecutionEngine.map"
                    )
        return self.findings

    def _check(self, graph, model, node_id: str, line: int, detail: str) -> None:
        info = graph.nodes[node_id]
        held = model.locks_at(node_id, line)
        if held:
            locks = ", ".join(sorted(held))
            self.report(
                graph,
                info.path,
                line,
                f"'{info.dotted}' performs blocking {detail} while holding "
                f"{locks} — every contender stalls behind wall-clock work",
                evidence=(
                    *model.chain(node_id),
                    f"{info.dotted} blocks on {detail} holding [{locks}] "
                    f"({info.path}:{line})",
                ),
            )
        elif node_id in model.task_reach:
            self.report(
                graph,
                info.path,
                line,
                f"scheduler task '{info.dotted}' performs blocking {detail} — "
                "a task must never block the cooperative event loop",
                evidence=(
                    *model.chain(node_id),
                    f"{info.dotted} blocks on {detail} ({info.path}:{line})",
                ),
            )


@register_graph
class UnboundedWaitRule(_ConcurrencyRule):
    id = "R015"
    title = "unbounded wait with no wall_guard_s anywhere up the chain"
    example = "item = await queue.get()  # no timeout on any caller"
    rationale = """A park/get/join with no timeout only resolves if some other
    task resolves it; when that task died or never ran, the service hangs
    forever.  Scheduler.run's wall_guard_s is the safety net that turns the
    hang into a TimeoutError, so every run site must pass it — and a
    timeout-less wait is only tolerable when every run root above it is
    guarded.  Both halves are flagged with their chain."""

    def run(self, graph) -> list[Finding]:
        model = concurrency_model(graph)
        for node_id in sorted(graph.nodes):
            info = graph.nodes[node_id]
            if model.is_scheduler_path(info.path):
                continue
            for site in model.async_info(node_id).runs:
                if not site.has_guard:
                    self.report(
                        graph,
                        info.path,
                        site.line,
                        f"'{info.dotted}' drives a scheduler run without "
                        "wall_guard_s — a wedged task hangs the process "
                        "instead of raising TimeoutError",
                    )
        for node_id in sorted(model.unguarded):
            info = graph.nodes[node_id]
            if model.is_scheduler_path(info.path):
                continue
            for site in model.async_info(node_id).awaits:
                if site.method not in PARKING_METHODS or site.has_timeout:
                    continue
                self.report(
                    graph,
                    info.path,
                    site.line,
                    f"'{info.dotted}' awaits {site.method}() with no timeout "
                    "and no wall_guard_s anywhere up the chain — nothing "
                    "bounds this wait",
                    evidence=(
                        *model.chain(node_id),
                        f"{info.dotted} awaits {site.method}() unbounded "
                        f"({info.path}:{site.line})",
                    ),
                )
        return self.findings


@register_graph
class SharedStateRaceRule(_ConcurrencyRule):
    id = "R016"
    title = "shared state written from distinct spawn sites with no common lock"
    example = "self._sessions[sid] = state  # two tasks, no shared lock"
    rationale = """Cooperative tasks interleave at every await: two tasks from
    different spawn sites writing the same object attribute or module global
    with no lock in both writers' may-hold locksets is a check-then-act race
    — rare enough to pass tests, deterministic enough under the virtual
    scheduler to corrupt a load test run.  Writers that never suspend are
    exempt (they are atomic between awaits by construction)."""

    def run(self, graph) -> list[Finding]:
        model = concurrency_model(graph)
        ignore = frozenset(
            graph.config.options_for(self.id).get("ignore-attrs", ())
        )
        writers: dict[str, list[tuple[str, object]]] = {}
        for node_id in sorted(model.task_reach):
            info = graph.nodes[node_id]
            if model.is_scheduler_path(info.path):
                continue
            if not model.origins.get(node_id):
                continue
            for write in model.async_info(node_id).writes:
                if write.attr in ignore:
                    continue
                scope = "<global>." if write.is_global else ""
                writers.setdefault(
                    f"{info.module}:{scope}{write.attr}", []
                ).append((node_id, write))
        for attr_key in sorted(writers):
            self._check_attr(graph, model, attr_key, writers[attr_key])
        return self.findings

    @staticmethod
    def _racy(model, node_id: str) -> bool:
        info = model.async_info(node_id)
        return info.is_async and bool(info.awaits)

    def _check_attr(self, graph, model, attr_key: str, sites) -> None:
        for i, (node_a, write_a) in enumerate(sites):
            for node_b, write_b in sites[i:]:
                origins_a = model.origins[node_a]
                origins_b = model.origins[node_b]
                if not any(a != b for a in origins_a for b in origins_b):
                    continue
                if model.locks_at(node_a, write_a.line) & model.locks_at(
                    node_b, write_b.line
                ):
                    continue
                if not (self._racy(model, node_a) or self._racy(model, node_b)):
                    continue
                info_a = graph.nodes[node_a]
                info_b = graph.nodes[node_b]
                attr = attr_key.split(":", 1)[1]
                self.report(
                    graph,
                    info_a.path,
                    write_a.line,
                    f"'{attr}' is written from distinct spawn sites with no "
                    "common lock — a cross-task check-then-act race",
                    evidence=(
                        f"{info_a.dotted} writes {attr} "
                        f"({info_a.path}:{write_a.line})",
                        *model.chain(node_a),
                        f"{info_b.dotted} writes {attr} "
                        f"({info_b.path}:{write_b.line})",
                        *model.chain(node_b),
                    ),
                )
                return
