"""Fixed-point lock-set dataflow and task reachability over the graph.

:class:`ConcurrencyModel` is built once per :class:`~repro.analysis.
graph.callgraph.ProgramGraph` (memoized on the graph object, so the
five rules R012-R016 share one computation) and answers four questions:

* **lock identity** — which ``with`` regions really guard a lock, and
  which lock.  Shapes recorded at summarize time are resolved here
  against the constructor tables (``ClassSummary.attr_ctors``,
  ``ModuleSummary.var_ctors``) and the configured lock classes, so the
  same ``TenantBankCache._locks[*]`` shard pool is one identity whether
  it is acquired directly or through a ``_shard_of``-style getter;
* **may-hold locksets** — a forward fixed point over the call graph:
  the locks possibly held at a function's entry are the union, over
  every call site reaching it, of the caller's entry set plus the
  regions enclosing that call site.  Monotone over a finite lattice,
  iterated in sorted order, hence terminating and deterministic;
* **task reachability** — BFS from every resolvable ``spawn``/``run``
  site, with first-discovery parent pointers so each finding can print
  a ``spawned at file:line -> a -> b`` chain;
* **guard status** — nodes reachable from a ``run`` site that passes no
  ``wall_guard_s`` (including tasks spawned from such nodes) are the
  only places R015 flags unbounded parks, because a guarded run bounds
  every wait under it.
"""

from __future__ import annotations

from ..config import LintConfig

__all__ = ["ConcurrencyModel", "concurrency_model", "DEFAULT_LOCK_CLASSES"]

#: Class names (last dotted segment) treated as locks by default;
#: ``[tool.reprolint.rules.R013] lock-classes`` extends the set.
DEFAULT_LOCK_CLASSES = frozenset(
    {"ServiceLock", "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}
)

#: Await-method names that park until externally resolved (R015's
#: unbounded-wait candidates); ``sleep`` always has a timer.
PARKING_METHODS = frozenset({"park", "get", "join"})


def _scheduler_modules(config: LintConfig) -> tuple[str, ...]:
    return tuple(config.scheduler_modules)


class ConcurrencyModel:
    """Lock identities, may-hold locksets, and task reachability."""

    def __init__(self, graph) -> None:
        self.graph = graph
        config = graph.config
        self._scheduler_suffixes = _scheduler_modules(config)
        self.lock_classes = DEFAULT_LOCK_CLASSES | frozenset(
            config.options_for("R013").get("lock-classes", ())
        )
        #: node_id -> sorted tuple of (start, end, lock_key) regions.
        self.regions: dict[str, tuple[tuple[int, int, str], ...]] = {}
        #: node_id -> locks possibly held at entry.
        self.entry: dict[str, frozenset[str]] = {}
        #: (site_path, site_line, kind, target_node, guarded) roots.
        self.roots: list[tuple[str, int, str, str, bool]] = []
        #: nodes reachable from any spawn/run root.
        self.task_reach: set[str] = set()
        #: nodes reachable from an unguarded run root (incl. spawns).
        self.unguarded: set[str] = set()
        #: BFS tree: node -> (parent_node | None, hop_line, root_index).
        self._parents: dict[str, tuple[str | None, int, int]] = {}
        #: node -> spawn-site origins {(path, line), ...} for R016.
        self.origins: dict[str, frozenset[tuple[str, int]]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Scheduler-module blessing
    # ------------------------------------------------------------------

    def is_scheduler_path(self, path: str) -> bool:
        """The blessed modules that *implement* the primitives — the one
        place foreign awaits and raw asyncio are the point, not a bug."""
        return path.endswith(self._scheduler_suffixes)

    # ------------------------------------------------------------------
    # Lock identity
    # ------------------------------------------------------------------

    def _is_lock_ctor(self, ctor) -> bool:
        return ctor is not None and ctor.target.split(".")[-1] in self.lock_classes

    def _class_lock_attr(self, module: str, cls: str, attr: str) -> bool | None:
        """True/False when the class records a ctor for ``attr``; None
        when it records nothing (fall back to the name heuristic)."""
        summary = self.graph.modules.get(module)
        cls_summary = summary.classes.get(cls) if summary is not None else None
        if cls_summary is None:
            return None
        for name, ctor, _container in cls_summary.attr_ctors:
            if name == attr:
                return self._is_lock_ctor(ctor)
        return None

    @staticmethod
    def _name_heuristic(name: str) -> bool:
        lowered = name.lower()
        return "lock" in lowered and "clock" not in lowered

    def _lock_key(self, node_id: str, site) -> str | None:
        """Resolve one recorded lock region to a project-wide identity,
        or None when the shape turns out not to be a lock."""
        info = self.graph.nodes[node_id]
        module = info.module
        if site.shape in ("self_attr", "self_item"):
            cls = info.qual.split(".")[0] if "." in info.qual else None
            if cls is None:
                return None
            known = self._class_lock_attr(module, cls, site.name)
            if known is False:
                return None
            if known is None and not self._name_heuristic(site.name):
                return None
            suffix = "[*]" if site.shape == "self_item" else ""
            return f"{module}.{cls}.{site.name}{suffix}"
        if site.shape == "name":
            summary = self.graph.modules.get(module)
            module_ctor = (
                summary.var_ctors.get(site.name) if summary is not None else None
            )
            if site.ctor is not None:
                if not self._is_lock_ctor(site.ctor):
                    return None
                return f"{module}.{info.qual}.{site.name}"
            if module_ctor is not None:
                if not self._is_lock_ctor(module_ctor):
                    return None
                return f"{module}.{site.name}"
            if self._name_heuristic(site.name):
                return f"{module}.{info.qual}.{site.name}"
            return None
        if site.shape == "call":
            resolved = self.graph.resolve_target(module, site.getter)
            if resolved is None or resolved[0] != "func":
                return None
            getter = self.graph.nodes.get(resolved[1])
            if getter is None:
                return None
            g_summary = self.graph.modules[getter.module]
            g_fn = g_summary.functions.get(getter.qual)
            if g_fn is None:
                return None
            attr = g_fn.async_info.returns_lock_attr
            if attr is None:
                return None
            cls = getter.qual.split(".")[0] if "." in getter.qual else None
            if cls is not None:
                known = self._class_lock_attr(getter.module, cls, attr)
                if known is False:
                    return None
                if known is None and not self._name_heuristic(attr):
                    return None
                suffix = "[*]" if g_fn.async_info.returns_lock_item else ""
                return f"{getter.module}.{cls}.{attr}{suffix}"
            return None
        return None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _async_info(self, node_id: str):
        info = self.graph.nodes[node_id]
        return self.graph.modules[info.module].functions[info.qual].async_info

    def async_info(self, node_id: str):
        return self._async_info(node_id)

    def _build(self) -> None:
        graph = self.graph
        for node_id in sorted(graph.nodes):
            regions = []
            for site in self._async_info(node_id).locks:
                key = self._lock_key(node_id, site)
                if key is not None:
                    regions.append((site.line, site.end_line, key))
            self.regions[node_id] = tuple(sorted(regions))
        self._fixpoint_locksets()
        self._collect_roots()
        self._reach()
        self._propagate_origins()

    def _fixpoint_locksets(self) -> None:
        graph = self.graph
        entry: dict[str, set[str]] = {n: set() for n in graph.nodes}
        changed = True
        while changed:
            changed = False
            for caller in sorted(graph.nodes):
                for edge in graph.edges.get(caller, ()):
                    if edge.callee not in entry:
                        continue
                    held = entry[caller] | self._regions_at(caller, edge.line)
                    if not held <= entry[edge.callee]:
                        entry[edge.callee] |= held
                        changed = True
        self.entry = {n: frozenset(locks) for n, locks in entry.items()}

    def _regions_at(self, node_id: str, line: int) -> set[str]:
        return {
            key
            for start, end, key in self.regions.get(node_id, ())
            if start <= line <= end
        }

    def locks_at(self, node_id: str, line: int) -> frozenset[str]:
        """Locks possibly held when ``node_id`` executes ``line``."""
        return self.entry.get(node_id, frozenset()) | frozenset(
            self._regions_at(node_id, line)
        )

    def _collect_roots(self) -> None:
        graph = self.graph
        for node_id in sorted(graph.nodes):
            info = graph.nodes[node_id]
            async_info = self._async_info(node_id)
            for spawn in async_info.spawns:
                target = self._resolve_root(info.module, spawn.target)
                if target is not None:
                    self.roots.append((info.path, spawn.line, "spawn", target, True))
            for run in async_info.runs:
                target = self._resolve_root(info.module, run.target)
                if target is not None:
                    self.roots.append(
                        (info.path, run.line, "run", target, run.has_guard)
                    )

    def _resolve_root(self, module: str, target) -> str | None:
        if target is None:
            return None
        resolved = self.graph.resolve_target(module, target)
        if resolved is None or resolved[0] != "func":
            return None
        return resolved[1]

    def _spawn_targets(self, node_id: str) -> list[tuple[str, int]]:
        info = self.graph.nodes[node_id]
        out = []
        for spawn in self._async_info(node_id).spawns:
            target = self._resolve_root(info.module, spawn.target)
            if target is not None:
                out.append((target, spawn.line))
        return out

    def _reach(self) -> None:
        graph = self.graph
        frontier: list[str] = []
        for index, (_path, _line, _kind, target, _guarded) in enumerate(self.roots):
            if target not in self._parents:
                self._parents[target] = (None, 0, index)
                frontier.append(target)
        while frontier:
            frontier.sort()
            next_frontier: list[str] = []
            for node_id in frontier:
                self.task_reach.add(node_id)
                root_index = self._parents[node_id][2]
                for edge in graph.edges.get(node_id, ()):
                    if edge.callee in graph.nodes and edge.callee not in self._parents:
                        self._parents[edge.callee] = (node_id, edge.line, root_index)
                        next_frontier.append(edge.callee)
                for target, line in self._spawn_targets(node_id):
                    if target not in self._parents:
                        self._parents[target] = (node_id, line, root_index)
                        next_frontier.append(target)
            frontier = next_frontier
        self._reach_unguarded()

    def _reach_unguarded(self) -> None:
        graph = self.graph
        frontier = sorted(
            {
                target
                for (_p, _l, kind, target, guarded) in self.roots
                if kind == "run" and not guarded
            }
        )
        seen = set(frontier)
        while frontier:
            frontier.sort()
            next_frontier = []
            for node_id in frontier:
                self.unguarded.add(node_id)
                for edge in graph.edges.get(node_id, ()):
                    if edge.callee in graph.nodes and edge.callee not in seen:
                        seen.add(edge.callee)
                        next_frontier.append(edge.callee)
                for target, _line in self._spawn_targets(node_id):
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
            frontier = next_frontier

    def _propagate_origins(self) -> None:
        """Which *spawn sites* each node may execute under — the
        distinct-task relation R016 races are defined over.  (Run roots
        are excluded: two ``run`` calls are two executions, not two
        concurrent tasks.)"""
        graph = self.graph
        origins: dict[str, set[tuple[str, int]]] = {n: set() for n in graph.nodes}
        for path, line, kind, target, _guarded in self.roots:
            if kind == "spawn":
                origins[target].add((path, line))
        changed = True
        while changed:
            changed = False
            for node_id in sorted(graph.nodes):
                mine = origins[node_id]
                if not mine:
                    continue
                for edge in graph.edges.get(node_id, ()):
                    if edge.callee in origins and not mine <= origins[edge.callee]:
                        origins[edge.callee] |= mine
                        changed = True
        # Spawned tasks are their own origin (seeded above), not their
        # spawner's, so origins only flow along ordinary call edges.
        self.origins = {n: frozenset(o) for n, o in origins.items()}

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------

    def chain(self, node_id: str) -> tuple[str, ...]:
        """Hop list from the root site down to ``node_id``."""
        graph = self.graph
        hops: list[str] = []
        current: str | None = node_id
        root_index = None
        for _ in range(len(graph.nodes) + 1):
            if current is None or current not in self._parents:
                break
            parent, line, root_index = self._parents[current]
            if parent is None:
                break
            info = graph.nodes[parent]
            hops.append(
                f"{info.dotted} -> {graph.dotted_name(current)} ({info.path}:{line})"
            )
            current = parent
        if root_index is not None and current is not None:
            path, line, kind, _target, guarded = self.roots[root_index]
            guard = "" if kind == "spawn" else (
                " [guarded]" if guarded else " [no wall_guard_s]"
            )
            hops.append(
                f"task root '{graph.dotted_name(current)}' {kind}ed at "
                f"{path}:{line}{guard}"
            )
        hops.reverse()
        return tuple(hops)


def concurrency_model(graph) -> ConcurrencyModel:
    """The memoized :class:`ConcurrencyModel` for ``graph``."""
    model = getattr(graph, "_concurrency_model", None)
    if model is None:
        model = ConcurrencyModel(graph)
        graph._concurrency_model = model
    return model
