"""File walking and rule execution: the linter's outer loop.

``analyze_source`` runs the registered rules over one in-memory module
(what the analyzer's own tests use); ``lint_paths`` walks directories,
parses every ``.py`` file, and returns fingerprinted findings.  A file
that fails to parse is itself a finding (rule ``E999``) rather than a
crash, so one broken file cannot hide the rest of the report.
"""

from __future__ import annotations

from pathlib import Path, PurePath

from .context import ModuleContext
from .findings import Finding, fingerprint_findings
from .rulebase import Rule, registered_rules

__all__ = ["analyze_source", "collect_files", "lint_paths", "LintResult"]

#: Directories never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".cache", ".venv", "venv", "build", "dist", ".eggs"}
)


class LintResult:
    """Findings plus the file count, pre-sorted and fingerprinted."""

    def __init__(self, findings: list[Finding], files_scanned: int) -> None:
        self.findings = fingerprint_findings(findings)
        self.files_scanned = files_scanned


def analyze_source(
    source: str,
    path: str = "module.py",
    rules: list[type[Rule]] | None = None,
) -> list[Finding]:
    """Run rules over one source string; findings are fingerprinted."""
    try:
        ctx = ModuleContext(path, source)
    except SyntaxError as exc:
        return fingerprint_findings([_syntax_finding(path, exc)])
    findings: list[Finding] = []
    for rule_cls in rules if rules is not None else registered_rules():
        findings.extend(rule_cls(ctx).run())
    return fingerprint_findings(findings)


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=PurePath(path).as_posix(),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        rule="E999",
        message=f"file does not parse: {exc.msg}",
        snippet=(exc.text or "").strip(),
    )


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            if path.suffix == ".py":
                files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
    return sorted(files)


def lint_paths(
    paths: list[str | Path],
    rules: list[type[Rule]] | None = None,
    relative_to: str | Path | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    Finding paths are reported relative to ``relative_to`` when given
    (the CLI passes the working directory), else as provided.
    """
    files = collect_files(paths)
    findings: list[Finding] = []
    for file_path in files:
        report_path = file_path
        if relative_to is not None:
            try:
                report_path = file_path.resolve().relative_to(
                    Path(relative_to).resolve()
                )
            except ValueError:
                report_path = file_path
        findings.extend(
            analyze_source(
                file_path.read_text(encoding="utf-8"),
                path=str(report_path),
                rules=rules,
            )
        )
    return LintResult(findings, files_scanned=len(files))
