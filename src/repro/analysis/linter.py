"""File walking and rule execution: the linter's outer loop.

``analyze_source`` runs the registered per-file rules over one
in-memory module (what the analyzer's own tests use); ``lint_paths``
walks directories, parses every ``.py`` file, and returns
fingerprinted findings.  A file that cannot be analyzed at all — a
syntax error or bytes that are not UTF-8 — is itself a finding (rule
``E000``) rather than a crash, so one broken file cannot hide the rest
of the report.

With ``graph=True`` the walk additionally builds a per-module summary
for every file (served from the content-hash :class:`SummaryCache`
when the bytes are unchanged), assembles the program graph, and runs
the whole-program rules R007-R011, the concurrency rules R012-R016
(``async_rules=False`` skips them) and the secret-flow rules R017-R021
(``taint_rules=False`` skips them) over it.  ``only`` restricts
which files get per-file rule execution and which findings are
reported — the ``--changed-only`` fast path — while summaries still
cover the whole tree, because interprocedural analysis is only sound
over the whole program.

After the rules, suppression hygiene runs over every selected file:
a ``# reprolint: disable=`` declaration that silenced nothing is W001,
one naming an id no rule has is W002 (as is an unknown id configured
under ``[tool.reprolint.rules]``).
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePath

from .async_.rules import ASYNC_RULE_IDS  # noqa: F401 - import registers R012-R016
from .config import DEFAULT_LINT_CONFIG, LintConfig
from .taint.rules import TAINT_RULE_IDS  # noqa: F401 - import registers R017-R021
from .context import ModuleContext
from .findings import Finding, fingerprint_findings
from .graph import (
    ProgramGraph,
    SummaryCache,
    build_graph,
    content_hash,
    error_summary,
    summarize_module,
)
from .rulebase import (
    Rule,
    registered_graph_rules,
    registered_rule_ids,
    registered_rules,
)

__all__ = ["analyze_source", "collect_files", "lint_paths", "LintResult"]

#: Directories never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".cache", ".venv", "venv", "build", "dist", ".eggs"}
)


class LintResult:
    """Findings plus the file count, pre-sorted and fingerprinted.

    ``graph`` carries the assembled :class:`ProgramGraph` when the
    whole-program pass ran (``--dump-graph`` renders it), else None.
    """

    def __init__(
        self,
        findings: list[Finding],
        files_scanned: int,
        graph: ProgramGraph | None = None,
    ) -> None:
        self.findings = fingerprint_findings(findings)
        self.files_scanned = files_scanned
        self.graph = graph


def analyze_source(
    source: str,
    path: str = "module.py",
    rules: list[type[Rule]] | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Run rules over one source string; findings are fingerprinted."""
    try:
        ctx = ModuleContext(path, source, config=config)
    except SyntaxError as exc:
        return fingerprint_findings([_syntax_finding(path, exc)])
    findings: list[Finding] = []
    for rule_cls in rules if rules is not None else registered_rules():
        findings.extend(rule_cls(ctx).run())
    return fingerprint_findings(findings)


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=PurePath(path).as_posix(),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        rule="E000",
        message=f"file does not parse: {exc.msg}",
        snippet=(exc.text or "").strip(),
    )


def _encoding_finding(path: str, exc: UnicodeDecodeError) -> Finding:
    return Finding(
        path=PurePath(path).as_posix(),
        line=1,
        col=1,
        rule="E000",
        message=(
            f"file is not valid UTF-8 ({exc.reason} at byte {exc.start}); "
            "reprolint cannot analyze it"
        ),
    )


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            if path.suffix == ".py":
                files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
    return sorted(files)


def _report_path(file_path: Path, relative_to: str | Path | None) -> str:
    if relative_to is not None:
        try:
            return PurePath(
                file_path.resolve().relative_to(Path(relative_to).resolve())
            ).as_posix()
        except ValueError:
            pass
    return PurePath(file_path).as_posix()


def _count_summary(metrics, result: str) -> None:
    if metrics is not None:
        metrics.counter("reprograph_summaries_total", result=result).inc()


def lint_paths(
    paths: list[str | Path],
    rules: list[type[Rule]] | None = None,
    relative_to: str | Path | None = None,
    *,
    graph: bool = False,
    config: LintConfig | None = None,
    cache: SummaryCache | None = None,
    metrics=None,
    only: set[str] | None = None,
    async_rules: bool = True,
    taint_rules: bool = True,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    Finding paths are reported relative to ``relative_to`` when given
    (the CLI passes the working directory), else as provided.  ``only``
    is a set of report paths: files outside it are summarized (the
    graph needs the whole program) but get no per-file rule execution
    and contribute no findings.  ``async_rules=False`` (the CLI's
    ``--no-async``) skips the concurrency rules R012-R016;
    ``taint_rules=False`` (``--no-taint``) skips the secret-flow rules
    R017-R021.
    """
    config = config if config is not None else DEFAULT_LINT_CONFIG
    files = collect_files(paths)
    findings: list[Finding] = []
    summaries = []
    tracked: list[tuple[str, ModuleContext]] = []
    for file_path in files:
        report_path = _report_path(file_path, relative_to)
        selected = only is None or report_path in only
        raw = file_path.read_bytes()

        summary = None
        if graph:
            digest = content_hash(raw)
            if cache is not None:
                summary = cache.get(report_path, digest)
            if summary is not None:
                _count_summary(metrics, "hit")
                cache.mark_source(report_path, str(file_path))
                if not selected:
                    summaries.append(summary)
                    continue  # fast path: no parse needed at all

        try:
            source = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            if selected:
                findings.append(_encoding_finding(report_path, exc))
            if graph and summary is None:
                summary = error_summary(report_path, "not valid UTF-8")
                _count_summary(metrics, "miss")
                if cache is not None:
                    cache.put(report_path, digest, summary, str(file_path))
            if graph:
                summaries.append(summary)
            continue
        try:
            ctx = ModuleContext(report_path, source, config=config)
        except SyntaxError as exc:
            if selected:
                findings.append(_syntax_finding(report_path, exc))
            if graph and summary is None:
                summary = error_summary(report_path, f"syntax error: {exc.msg}")
                _count_summary(metrics, "miss")
                if cache is not None:
                    cache.put(report_path, digest, summary, str(file_path))
            if graph:
                summaries.append(summary)
            continue

        if selected:
            tracked.append((report_path, ctx))
            for rule_cls in rules if rules is not None else registered_rules():
                findings.extend(rule_cls(ctx).run())
        if graph:
            if summary is None:
                summary = summarize_module(ctx, report_path)
                _count_summary(metrics, "miss")
                if cache is not None:
                    cache.put(report_path, digest, summary, str(file_path))
            summaries.append(summary)

    per_file_ids = {
        rule_cls.id for rule_cls in (rules if rules is not None else registered_rules())
    }
    graph_rule_classes = [
        rule_cls
        for rule_cls in registered_graph_rules()
        if (async_rules or rule_cls.id not in ASYNC_RULE_IDS)
        and (taint_rules or rule_cls.id not in TAINT_RULE_IDS)
    ]

    program_graph: ProgramGraph | None = None
    if graph:
        if cache is not None:
            cache.save()
        program_graph = build_graph(summaries, config)
        for rule_cls in graph_rule_classes:
            for finding in rule_cls().run(program_graph):
                if only is None or finding.path in only:
                    findings.append(finding)

    assessable = set(per_file_ids)
    if graph:
        assessable.update(rule_cls.id for rule_cls in graph_rule_classes)
    findings.extend(
        _suppression_hygiene(tracked, program_graph, assessable, config, only)
    )
    return LintResult(findings, files_scanned=len(files), graph=program_graph)


def _meta_finding(
    rule: str, path: str, line: int, message: str, snippet: str = ""
) -> Finding:
    return Finding(
        path=path, line=line, col=1, rule=rule, message=message, snippet=snippet
    )


def _suppression_hygiene(
    tracked: list[tuple[str, ModuleContext]],
    program_graph: ProgramGraph | None,
    assessable: set[str],
    config: LintConfig,
    only: set[str] | None,
) -> list[Finding]:
    """W001 (suppression silenced nothing) and W002 (unknown rule id).

    A suppression is only judged unused when every rule it could have
    silenced actually ran — a graph-rule id with ``graph=False``, or an
    async id under ``--no-async``, is left alone.  Wildcards (``all``,
    ``*``) are always assessable: they claim to silence everything, so
    silencing nothing is always reportable.
    """
    known = registered_rule_ids()
    graph_uses = (
        program_graph.suppression_uses if program_graph is not None else set()
    )
    out: list[Finding] = []
    for report_path, ctx in tracked:
        used = set(ctx.used_suppressions)
        used.update(
            (line, token)
            for path, line, token in graph_uses
            if path == report_path
        )
        for line, tokens in sorted(ctx.suppression_table().items()):
            for token in tokens:
                wildcard = token in ("all", "*")
                if not wildcard and token not in known:
                    out.append(
                        _meta_finding(
                            "W002",
                            report_path,
                            line,
                            f"suppression names unknown rule id '{token}'",
                            ctx.snippet_at(line),
                        )
                    )
                elif (wildcard or token in assessable) and (line, token) not in used:
                    out.append(
                        _meta_finding(
                            "W001",
                            report_path,
                            line,
                            f"suppression for '{token}' silences nothing — "
                            "delete the stale comment",
                            ctx.snippet_at(line),
                        )
                    )
    config_path = "pyproject.toml"
    if only is None or config_path in only:
        for rule_id, _options in config.rule_options:
            if rule_id not in known:
                out.append(
                    _meta_finding(
                        "W002",
                        config_path,
                        1,
                        f"[tool.reprolint.rules.{rule_id}] configures an "
                        "unknown rule id",
                    )
                )
    return out
