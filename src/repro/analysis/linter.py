"""File walking and rule execution: the linter's outer loop.

``analyze_source`` runs the registered per-file rules over one
in-memory module (what the analyzer's own tests use); ``lint_paths``
walks directories, parses every ``.py`` file, and returns
fingerprinted findings.  A file that cannot be analyzed at all — a
syntax error or bytes that are not UTF-8 — is itself a finding (rule
``E000``) rather than a crash, so one broken file cannot hide the rest
of the report.

With ``graph=True`` the walk additionally builds a per-module summary
for every file (served from the content-hash :class:`SummaryCache`
when the bytes are unchanged), assembles the program graph, and runs
the whole-program rules R007-R011 over it.  ``only`` restricts which
files get per-file rule execution and which findings are reported —
the ``--changed-only`` fast path — while summaries still cover the
whole tree, because interprocedural analysis is only sound over the
whole program.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePath

from .config import DEFAULT_LINT_CONFIG, LintConfig
from .context import ModuleContext
from .findings import Finding, fingerprint_findings
from .graph import (
    ProgramGraph,
    SummaryCache,
    build_graph,
    content_hash,
    error_summary,
    summarize_module,
)
from .rulebase import Rule, registered_graph_rules, registered_rules

__all__ = ["analyze_source", "collect_files", "lint_paths", "LintResult"]

#: Directories never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".cache", ".venv", "venv", "build", "dist", ".eggs"}
)


class LintResult:
    """Findings plus the file count, pre-sorted and fingerprinted.

    ``graph`` carries the assembled :class:`ProgramGraph` when the
    whole-program pass ran (``--dump-graph`` renders it), else None.
    """

    def __init__(
        self,
        findings: list[Finding],
        files_scanned: int,
        graph: ProgramGraph | None = None,
    ) -> None:
        self.findings = fingerprint_findings(findings)
        self.files_scanned = files_scanned
        self.graph = graph


def analyze_source(
    source: str,
    path: str = "module.py",
    rules: list[type[Rule]] | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Run rules over one source string; findings are fingerprinted."""
    try:
        ctx = ModuleContext(path, source, config=config)
    except SyntaxError as exc:
        return fingerprint_findings([_syntax_finding(path, exc)])
    findings: list[Finding] = []
    for rule_cls in rules if rules is not None else registered_rules():
        findings.extend(rule_cls(ctx).run())
    return fingerprint_findings(findings)


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=PurePath(path).as_posix(),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        rule="E000",
        message=f"file does not parse: {exc.msg}",
        snippet=(exc.text or "").strip(),
    )


def _encoding_finding(path: str, exc: UnicodeDecodeError) -> Finding:
    return Finding(
        path=PurePath(path).as_posix(),
        line=1,
        col=1,
        rule="E000",
        message=(
            f"file is not valid UTF-8 ({exc.reason} at byte {exc.start}); "
            "reprolint cannot analyze it"
        ),
    )


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            if path.suffix == ".py":
                files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
    return sorted(files)


def _report_path(file_path: Path, relative_to: str | Path | None) -> str:
    if relative_to is not None:
        try:
            return PurePath(
                file_path.resolve().relative_to(Path(relative_to).resolve())
            ).as_posix()
        except ValueError:
            pass
    return PurePath(file_path).as_posix()


def _count_summary(metrics, result: str) -> None:
    if metrics is not None:
        metrics.counter("reprograph_summaries_total", result=result).inc()


def lint_paths(
    paths: list[str | Path],
    rules: list[type[Rule]] | None = None,
    relative_to: str | Path | None = None,
    *,
    graph: bool = False,
    config: LintConfig | None = None,
    cache: SummaryCache | None = None,
    metrics=None,
    only: set[str] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    Finding paths are reported relative to ``relative_to`` when given
    (the CLI passes the working directory), else as provided.  ``only``
    is a set of report paths: files outside it are summarized (the
    graph needs the whole program) but get no per-file rule execution
    and contribute no findings.
    """
    config = config if config is not None else DEFAULT_LINT_CONFIG
    files = collect_files(paths)
    findings: list[Finding] = []
    summaries = []
    for file_path in files:
        report_path = _report_path(file_path, relative_to)
        selected = only is None or report_path in only
        raw = file_path.read_bytes()

        summary = None
        if graph:
            digest = content_hash(raw)
            if cache is not None:
                summary = cache.get(report_path, digest)
            if summary is not None:
                _count_summary(metrics, "hit")
                cache.mark_source(report_path, str(file_path))
                if not selected:
                    summaries.append(summary)
                    continue  # fast path: no parse needed at all

        try:
            source = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            if selected:
                findings.append(_encoding_finding(report_path, exc))
            if graph and summary is None:
                summary = error_summary(report_path, "not valid UTF-8")
                _count_summary(metrics, "miss")
                if cache is not None:
                    cache.put(report_path, digest, summary, str(file_path))
            if graph:
                summaries.append(summary)
            continue
        try:
            ctx = ModuleContext(report_path, source, config=config)
        except SyntaxError as exc:
            if selected:
                findings.append(_syntax_finding(report_path, exc))
            if graph and summary is None:
                summary = error_summary(report_path, f"syntax error: {exc.msg}")
                _count_summary(metrics, "miss")
                if cache is not None:
                    cache.put(report_path, digest, summary, str(file_path))
            if graph:
                summaries.append(summary)
            continue

        if selected:
            for rule_cls in rules if rules is not None else registered_rules():
                findings.extend(rule_cls(ctx).run())
        if graph:
            if summary is None:
                summary = summarize_module(ctx, report_path)
                _count_summary(metrics, "miss")
                if cache is not None:
                    cache.put(report_path, digest, summary, str(file_path))
            summaries.append(summary)

    program_graph: ProgramGraph | None = None
    if graph:
        if cache is not None:
            cache.save()
        program_graph = build_graph(summaries, config)
        for rule_cls in registered_graph_rules():
            for finding in rule_cls().run(program_graph):
                if only is None or finding.path in only:
                    findings.append(finding)
    return LintResult(findings, files_scanned=len(files), graph=program_graph)
