"""Baseline file: grandfathered findings that don't fail the build.

The baseline is a checked-in JSON document listing finding fingerprints
(see :mod:`.findings`) that existed when the linter was adopted.  A run
subtracts baselined findings from its result, so ``repro lint`` can be
a hard gate while legacy debt is paid down incrementally.  This repo's
baseline is empty — the adoption PR fixed every finding — but the
mechanism is load-bearing for future rules.
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding

__all__ = ["DEFAULT_BASELINE_NAME", "load_baseline", "write_baseline", "split_baselined"]

DEFAULT_BASELINE_NAME = "reprolint-baseline.json"

_VERSION = 1


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints recorded in the baseline file."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or document.get("version") != _VERSION:
        raise ValueError(f"unrecognized baseline format in {path}")
    entries = document.get("findings", [])
    return {entry["fingerprint"] for entry in entries}


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Record ``findings`` as the new grandfathered set."""
    document = {
        "version": _VERSION,
        "findings": [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in sorted(findings, key=lambda f: f.sort_key)
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def split_baselined(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, grandfathered) by fingerprint."""
    new = [f for f in findings if f.fingerprint not in baseline]
    old = [f for f in findings if f.fingerprint in baseline]
    return new, old
