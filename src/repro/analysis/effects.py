"""Shared effect vocabulary: which external calls are RNG / wall-clock.

The per-file rules (R001/R002) and the whole-program summarizer
(:mod:`repro.analysis.graph.summarize`) must agree on what counts as
"unseeded randomness" and "a wall-clock read" — otherwise a call the
per-file rule flags could propagate differently through the call graph.
Both layers classify a fully resolved dotted path (``numpy.random.rand``,
``time.perf_counter``) through the two functions here.
"""

from __future__ import annotations

__all__ = [
    "RNG_ALLOWED_NUMPY",
    "WALL_CLOCK_PATHS",
    "rng_effect",
    "clock_effect",
]

#: numpy.random attributes that construct explicit generators/seeds
#: rather than drawing from the hidden global state.
RNG_ALLOWED_NUMPY = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Fully qualified callables that read the real clock.
WALL_CLOCK_PATHS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
        ("datetime", "datetime", "now"),
        ("datetime", "datetime", "utcnow"),
        ("datetime", "date", "today"),
    }
)


def rng_effect(path: tuple[str, ...]) -> str | None:
    """The offending dotted name when ``path`` draws from global RNG
    state, else None (seeded constructors are allowed)."""
    if len(path) == 3 and path[:2] == ("numpy", "random") and path[2] not in RNG_ALLOWED_NUMPY:
        return ".".join(path)
    if len(path) == 2 and path[0] == "random":
        return ".".join(path)
    return None


def clock_effect(path: tuple[str, ...]) -> str | None:
    """The offending dotted name when ``path`` reads the wall clock."""
    if path in WALL_CLOCK_PATHS:
        return ".".join(path)
    return None
