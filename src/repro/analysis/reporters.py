"""Reporters: render a lint result for terminals (text) or tools (JSON).

The JSON document is the machine interface: key order is fixed
(``sort_keys``), findings are emitted in ``(path, line, col, rule)``
order, and the schema is versioned, so downstream parsers can rely on
byte-stable output for identical inputs.  Schema v2 added the
``evidence`` array per finding — the call-chain hops (one file:line
per hop) behind whole-program findings, empty for per-file rules.
Schema v3 added ``category`` per finding and per rule-table entry
("per-file", "whole-program", "concurrency", "meta" for W001/W002,
"error" for E000).  Schema v4 added the "taint" category (secret-flow
rules R017-R021, whose ``evidence`` arrays carry dataflow chains
rather than call chains) and an ``example`` field per rule-table
entry.
"""

from __future__ import annotations

import json

from .findings import Finding
from .rulebase import rule_category, rule_metadata

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 4


def render_text(
    new: list[Finding], baselined: list[Finding], files_scanned: int
) -> str:
    lines = []
    for finding in sorted(new, key=lambda f: f.sort_key):
        lines.append(f"{finding.located()}: {finding.rule} {finding.message}")
        lines.extend(f"    via {hop}" for hop in finding.evidence)
    summary = (
        f"reprolint: {len(new)} finding(s) in {files_scanned} file(s)"
        + (f", {len(baselined)} baselined" if baselined else "")
    )
    if not new:
        summary = f"reprolint: clean ({files_scanned} file(s) scanned" + (
            f", {len(baselined)} baselined finding(s))" if baselined else ")"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: list[Finding], baselined: list[Finding], files_scanned: int
) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "counts": {
            "new": len(new),
            "baselined": len(baselined),
            "total": len(new) + len(baselined),
        },
        "rules": rule_metadata(),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "category": rule_category(finding.rule),
                "message": finding.message,
                "snippet": finding.snippet,
                "fingerprint": finding.fingerprint,
                "evidence": list(finding.evidence),
            }
            for finding in sorted(new, key=lambda f: f.sort_key)
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
