"""reprolint — an AST-based determinism & contract analyzer for this repo.

The system's headline guarantees (pool==serial bit-identity in the
execution engine, seeded fault schedules, reproducible z1-z4 features)
are invariants of *how code is written*, not just of what the tests
assert: one stray ``np.random.*`` global call, wall-clock read, or
unpicklable closure handed to the pool silently breaks them.  This
package is a static pass that catches exactly those defect classes
before a single frame is simulated.

Per-file rules (one module at a time):

========  ==========================================================
E000      file cannot be analyzed (syntax error / not UTF-8)
R001      unseeded global randomness (np.random.* / random.*)
R002      wall-clock reads outside the configured clock allowlist
R003      unpicklable payloads handed to ``ExecutionEngine.map``
R004      exact float equality on computed values
R005      mutable default arguments / dataclass field defaults
R006      DetectorConfig contract violations (deprecated ``replace``,
          unknown field names in strings/keywords)
========  ==========================================================

Whole-program rules (reprograph: project-wide call graph with
fixed-point effect propagation, see :mod:`repro.analysis.graph`):

========  ==========================================================
R007      transitively-unseeded randomness reachable from a pool
          payload or ``run_*`` entry point
R008      transitive wall-clock reachability outside the allowlist
R009      public functions never referenced anywhere (dead surface)
R010      ``repro.api`` facade drift (both directions)
R011      unpicklable objects flowing into pool payloads across
          module boundaries
========  ==========================================================

Run it as ``python -m repro lint [--format json]`` (the graph pass is
on by default; ``--no-graph`` for per-file only, ``--changed-only``
for the incremental pre-commit path); suppress a single finding inline
with ``# reprolint: disable=R001`` and grandfather legacy findings via
the checked-in baseline file (see :mod:`repro.analysis.baseline`).
How to add a rule is documented in :mod:`repro.analysis.rulebase` and
DESIGN.md §3d/§3f.  Knobs live in ``[tool.reprolint]`` in
pyproject.toml (see :mod:`repro.analysis.config`).
"""

from . import rules  # noqa: F401  (importing registers the per-file rules)
from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_baselined,
    write_baseline,
)
from .config import DEFAULT_LINT_CONFIG, LintConfig, load_lint_config
from .context import ModuleContext
from .findings import Finding, fingerprint_findings
from .graph import rules as graph_rules  # noqa: F401  (registers R007-R011)
from .linter import LintResult, analyze_source, collect_files, lint_paths
from .reporters import render_json, render_text
from .rulebase import (
    GraphRule,
    Rule,
    registered_graph_rules,
    registered_rules,
    rule_metadata,
)

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_LINT_CONFIG",
    "Finding",
    "GraphRule",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "Rule",
    "analyze_source",
    "collect_files",
    "fingerprint_findings",
    "lint_paths",
    "load_baseline",
    "load_lint_config",
    "registered_graph_rules",
    "registered_rules",
    "render_json",
    "render_text",
    "rule_metadata",
    "split_baselined",
    "write_baseline",
]
