"""reprolint — an AST-based determinism & contract analyzer for this repo.

The system's headline guarantees (pool==serial bit-identity in the
execution engine, seeded fault schedules, reproducible z1-z4 features)
are invariants of *how code is written*, not just of what the tests
assert: one stray ``np.random.*`` global call, wall-clock read, or
unpicklable closure handed to the pool silently breaks them.  This
package is a static pass that catches exactly those defect classes
before a single frame is simulated:

========  ==========================================================
R001      unseeded global randomness (np.random.* / random.*)
R002      wall-clock reads outside ``engine/perf.py``
R003      unpicklable payloads handed to ``ExecutionEngine.map``
R004      exact float equality on computed values
R005      mutable default arguments / dataclass field defaults
R006      DetectorConfig contract violations (deprecated ``replace``,
          unknown field names in strings/keywords)
========  ==========================================================

Run it as ``python -m repro lint [--format json]``; suppress a single
finding inline with ``# reprolint: disable=R001`` and grandfather
legacy findings via the checked-in baseline file (see
:mod:`repro.analysis.baseline`).  How to add a rule is documented in
:mod:`repro.analysis.rulebase` and DESIGN.md §3d.
"""

from . import rules  # noqa: F401  (importing registers the rules)
from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_baselined,
    write_baseline,
)
from .context import ModuleContext
from .findings import Finding, fingerprint_findings
from .linter import LintResult, analyze_source, collect_files, lint_paths
from .reporters import render_json, render_text
from .rulebase import Rule, registered_rules, rule_metadata

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "analyze_source",
    "collect_files",
    "fingerprint_findings",
    "lint_paths",
    "load_baseline",
    "registered_rules",
    "render_json",
    "render_text",
    "rule_metadata",
    "split_baselined",
    "write_baseline",
]
