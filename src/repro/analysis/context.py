"""Per-module analysis context shared by every reprolint rule.

One :class:`ModuleContext` is built per analyzed file.  It owns the
parsed AST plus the derived tables the rules need:

* an **import alias map** so a rule can ask "what module-level thing
  does this dotted call refer to?" (``np.random.rand`` resolves to
  ``numpy.random.rand`` whatever numpy was imported as);
* the **suppression table** from ``# reprolint: disable=R001[,R002]``
  comments (a suppression on any physical line of the offending
  statement silences it);
* whether the file is a **test module** (rules may scope themselves
  differently over tests, e.g. R004 only inspects ``assert``s there);
* the set of **function names defined in nested scopes** and names
  bound to lambdas, which R003 uses to spot unpicklable task payloads.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import PurePath

from .config import DEFAULT_LINT_CONFIG, LintConfig

__all__ = ["ModuleContext"]

#: Modules whose attribute calls the rules reason about.
_TRACKED_MODULES = frozenset(
    {"numpy", "numpy.random", "random", "time", "datetime"}
)

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_*,\s]+)")


class ModuleContext:
    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module | None = None,
        config: LintConfig | None = None,
    ) -> None:
        self.path = PurePath(path).as_posix()
        self.source = source
        self.config = config if config is not None else DEFAULT_LINT_CONFIG
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        parts = PurePath(self.path).parts
        name = PurePath(self.path).name
        self.is_test = "tests" in parts or name.startswith("test_")
        self.module_aliases: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        self.nested_function_names: set[str] = set()
        self.lambda_names: set[str] = set()
        #: ``(line, token)`` pairs that silenced at least one diagnostic
        #: this run — what W001 (unused suppression) is computed against.
        self.used_suppressions: set[tuple[int, str]] = set()
        self._suppressions = self._collect_suppressions()
        self._collect_imports()
        self._collect_nested_defs()

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------

    def _collect_suppressions(self) -> dict[int, set[str]]:
        """Suppression tokens per line, from *real* comments only.

        Tokenizing (rather than regex over raw lines) keeps fixture
        source embedded in string literals — common in this repo's own
        tests — from registering phantom suppressions, which would
        surface as false W001s.  Files that fail to tokenize fall back
        to the old line scan; they fail to parse too, so the only rule
        that could fire there is E000 anyway.
        """
        table: dict[int, set[str]] = {}

        def record(lineno: int, text: str) -> None:
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                rules = {r for r in rules if r}
                if rules:
                    table.setdefault(lineno, set()).update(rules)

        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    record(token.start[0], token.string)
        except (tokenize.TokenError, SyntaxError, IndentationError):
            table.clear()
            for lineno, line in enumerate(self.lines, start=1):
                record(lineno, line)
        return table

    def is_suppressed(self, node: ast.AST, rule_id: str) -> bool:
        """True when any physical line of ``node`` carries a suppression
        for ``rule_id`` (or for ``all``/``*``); matching declarations
        are recorded as used."""
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        hit = False
        for lineno in range(start, end + 1):
            rules = self._suppressions.get(lineno)
            if not rules:
                continue
            for token in (rule_id, "all", "*"):
                if token in rules:
                    self.used_suppressions.add((lineno, token))
                    hit = True
        return hit

    def suppression_table(self) -> dict[int, tuple[str, ...]]:
        """The suppression table in the serializable form the graph
        layer stores in module summaries (line -> sorted rule ids)."""
        return {
            lineno: tuple(sorted(rules))
            for lineno, rules in sorted(self._suppressions.items())
        }

    # ------------------------------------------------------------------
    # Imports and name resolution
    # ------------------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        if alias.name in _TRACKED_MODULES:
                            self.module_aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        if top in _TRACKED_MODULES:
                            self.module_aliases.setdefault(top, top)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    full = f"{node.module}.{alias.name}"
                    if full in _TRACKED_MODULES:
                        self.module_aliases[local] = full
                    elif node.module in _TRACKED_MODULES:
                        self.from_imports[local] = full

    def resolve_dotted(self, node: ast.expr) -> list[str] | None:
        """Resolve ``np.random.rand``-style expressions to real module
        paths (``["numpy", "random", "rand"]``).

        Returns None when the expression is not a plain dotted name or
        its base is not a tracked import — an unknown base is *not*
        flagged, so method calls on arbitrary objects (``rng.random()``,
        ``s.replace()``) never alias into module rules.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        parts.reverse()
        if base in self.module_aliases:
            return self.module_aliases[base].split(".") + parts
        if base in self.from_imports:
            return self.from_imports[base].split(".") + parts
        return None

    # ------------------------------------------------------------------
    # Nested callables (R003)
    # ------------------------------------------------------------------

    def _collect_nested_defs(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.nested_function_names.add(inner.name)
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.lambda_names.add(target.id)

    # ------------------------------------------------------------------
    # Misc helpers
    # ------------------------------------------------------------------

    def snippet_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""
