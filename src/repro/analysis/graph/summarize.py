"""Per-module summaries: what the whole-program pass needs from one file.

A :class:`ModuleSummary` is everything the call-graph layer knows about
a module — bindings, per-function call sites and direct effects, class
pickle hazards, ``ExecutionEngine.map`` sites, referenced names, and the
suppression table — in a JSON-serializable form so summaries can be
content-hash cached across lint runs (see :mod:`.cache`).

Effect detection reuses the per-file machinery: literal dotted calls are
resolved through :meth:`~repro.analysis.context.ModuleContext.
resolve_dotted` (the same import-alias tables R001/R002 use) and
classified by :mod:`repro.analysis.effects`, so the two layers cannot
disagree about what counts as randomness or a clock read.  An effect on
a line carrying the corresponding per-file suppression (``R001`` for
RNG, ``R002`` for clock) is treated as *blessed* and not recorded — a
justified inline suppression extends to the whole-program rules.

Calls the module cannot resolve locally (a name imported from another
project module) are recorded as absolute dotted targets; the resolver in
:mod:`.callgraph` follows them through re-export chains — the exact
cross-module laundering the per-file rules are blind to.
"""

from __future__ import annotations

import ast
import dataclasses

from ..async_.summary import EMPTY_ASYNC_INFO, AsyncInfo, collect_async_info
from ..context import ModuleContext
from ..effects import clock_effect, rng_effect
from ..taint.summary import (
    EMPTY_TAINT_INFO,
    DataclassField,
    TaintInfo,
    collect_dataclass_fields,
    collect_taint_info,
)
from .symbols import Binding, collect_bindings, module_name_for

__all__ = [
    "CallTarget",
    "Effect",
    "Hazard",
    "PayloadItem",
    "MapSite",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "summarize_module",
    "error_summary",
]

#: Current summary schema; bump to invalidate every cache entry.
#: v2 added the async/concurrency fields (``AsyncInfo`` per function,
#: constructor tables per class/module) consumed by R012-R016.
#: v3 added the secret-flow fields (``TaintInfo`` per function,
#: dataclass field tables per class) consumed by R017-R021.
SUMMARY_VERSION = 3


@dataclasses.dataclass(frozen=True)
class CallTarget:
    """One outgoing call (or callable reference) from a function.

    ``kind``: ``dotted`` (absolute dotted path through an import),
    ``local`` (same-module function/class, possibly ``Cls.method``) or
    ``self`` (method on the enclosing class).  ``ref`` marks a callable
    passed as an argument rather than called — a may-call edge.
    """

    kind: str
    target: str
    line: int
    ref: bool = False

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "target": self.target, "line": self.line}
        if self.ref:
            out["ref"] = True
        return out

    @staticmethod
    def from_dict(data: dict) -> "CallTarget":
        return CallTarget(
            kind=data["kind"],
            target=data["target"],
            line=data["line"],
            ref=data.get("ref", False),
        )


@dataclasses.dataclass(frozen=True)
class Effect:
    """A direct RNG/clock effect observed inside one function."""

    kind: str  # "rng" | "clock"
    detail: str  # offending dotted callable, e.g. "numpy.random.rand"
    line: int

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "line": self.line}

    @staticmethod
    def from_dict(data: dict) -> "Effect":
        return Effect(kind=data["kind"], detail=data["detail"], line=data["line"])


@dataclasses.dataclass(frozen=True)
class Hazard:
    """A pickle hazard: an attribute or payload element that cannot
    cross a process boundary (open file, lambda, enabled handle)."""

    kind: str  # "open" | "lambda" | "instrumentation"
    attr: str  # attribute name for class hazards, "" for inline ones
    line: int

    def to_dict(self) -> dict:
        return {"kind": self.kind, "attr": self.attr, "line": self.line}

    @staticmethod
    def from_dict(data: dict) -> "Hazard":
        return Hazard(kind=data["kind"], attr=data["attr"], line=data["line"])


@dataclasses.dataclass(frozen=True)
class PayloadItem:
    """A named object packed into a pool payload, with the constructor
    call it was locally assigned from (when statically visible)."""

    name: str
    ctor: CallTarget | None
    line: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ctor": self.ctor.to_dict() if self.ctor else None,
            "line": self.line,
        }

    @staticmethod
    def from_dict(data: dict) -> "PayloadItem":
        ctor = data.get("ctor")
        return PayloadItem(
            name=data["name"],
            ctor=CallTarget.from_dict(ctor) if ctor else None,
            line=data["line"],
        )


@dataclasses.dataclass(frozen=True)
class MapSite:
    """One ``ExecutionEngine.map(fn, payloads)`` call site."""

    line: int
    func: str  # enclosing function qual ("" at class level)
    fn: CallTarget | None  # the task callable, when resolvable
    fn_lambda: bool
    payloads: tuple[PayloadItem, ...]
    hazards: tuple[Hazard, ...]  # inline payload hazards (lambda/open/...)

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "func": self.func,
            "fn": self.fn.to_dict() if self.fn else None,
            "fn_lambda": self.fn_lambda,
            "payloads": [p.to_dict() for p in self.payloads],
            "hazards": [h.to_dict() for h in self.hazards],
        }

    @staticmethod
    def from_dict(data: dict) -> "MapSite":
        fn = data.get("fn")
        return MapSite(
            line=data["line"],
            func=data["func"],
            fn=CallTarget.from_dict(fn) if fn else None,
            fn_lambda=data["fn_lambda"],
            payloads=tuple(PayloadItem.from_dict(p) for p in data["payloads"]),
            hazards=tuple(Hazard.from_dict(h) for h in data["hazards"]),
        )


@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """Calls out of, and effects inside, one function or method."""

    qual: str  # "name" or "Class.name"
    line: int
    public: bool
    calls: tuple[CallTarget, ...]
    effects: tuple[Effect, ...]
    async_info: AsyncInfo = EMPTY_ASYNC_INFO
    taint_info: TaintInfo = EMPTY_TAINT_INFO

    def to_dict(self) -> dict:
        out = {
            "qual": self.qual,
            "line": self.line,
            "public": self.public,
            "calls": [c.to_dict() for c in self.calls],
            "effects": [e.to_dict() for e in self.effects],
        }
        if not self.async_info.is_empty():
            out["async"] = self.async_info.to_dict()
        if not self.taint_info.is_empty():
            out["taint"] = self.taint_info.to_dict()
        return out

    @staticmethod
    def from_dict(data: dict) -> "FunctionSummary":
        return FunctionSummary(
            qual=data["qual"],
            line=data["line"],
            public=data["public"],
            calls=tuple(CallTarget.from_dict(c) for c in data["calls"]),
            effects=tuple(Effect.from_dict(e) for e in data["effects"]),
            async_info=AsyncInfo.from_dict(data.get("async", {})),
            taint_info=TaintInfo.from_dict(data.get("taint", {})),
        )


@dataclasses.dataclass(frozen=True)
class ClassSummary:
    name: str
    line: int
    public: bool
    methods: tuple[str, ...]
    hazards: tuple[Hazard, ...]
    #: (attr, constructor target, from_container) for every
    #: ``self.<attr> = Ctor(...)`` (or list/dict of ctor calls) in the
    #: class body — how the lock-set dataflow identifies lock attributes
    #: without baking lock-class names into the cached summary.
    attr_ctors: tuple[tuple[str, CallTarget, bool], ...] = ()
    #: Annotated fields of a ``@dataclass`` body — R021 checks the
    #: secret-named ones for ``field(repr=False)``.  Empty for ordinary
    #: classes.
    fields: tuple[DataclassField, ...] = ()

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "line": self.line,
            "public": self.public,
            "methods": list(self.methods),
            "hazards": [h.to_dict() for h in self.hazards],
            "attr_ctors": [
                {"attr": attr, "ctor": ctor.to_dict(), "container": container}
                for attr, ctor, container in self.attr_ctors
            ],
        }
        if self.fields:
            out["fields"] = [f.to_dict() for f in self.fields]
        return out

    @staticmethod
    def from_dict(data: dict) -> "ClassSummary":
        return ClassSummary(
            name=data["name"],
            line=data["line"],
            public=data["public"],
            methods=tuple(data["methods"]),
            hazards=tuple(Hazard.from_dict(h) for h in data["hazards"]),
            attr_ctors=tuple(
                (d["attr"], CallTarget.from_dict(d["ctor"]), d["container"])
                for d in data.get("attr_ctors", ())
            ),
            fields=tuple(
                DataclassField.from_dict(f) for f in data.get("fields", ())
            ),
        )


@dataclasses.dataclass(frozen=True)
class ModuleSummary:
    """Everything the program graph keeps about one module."""

    module: str
    path: str
    is_package: bool
    bindings: dict[str, Binding]
    exports: tuple[str, ...] | None
    functions: dict[str, FunctionSummary]
    classes: dict[str, ClassSummary]
    refs: tuple[str, ...]
    suppressions: dict[int, tuple[str, ...]]
    map_sites: tuple[MapSite, ...]
    #: Module-level ``NAME = Ctor(...)`` assignments, so a lock bound at
    #: module scope keeps one identity across every function using it.
    var_ctors: dict[str, CallTarget] = dataclasses.field(default_factory=dict)
    error: str | None = None

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line, ())
        return rule_id in rules or "all" in rules or "*" in rules

    def to_dict(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "bindings": {k: b.to_dict() for k, b in sorted(self.bindings.items())},
            "exports": list(self.exports) if self.exports is not None else None,
            "functions": {k: f.to_dict() for k, f in sorted(self.functions.items())},
            "classes": {k: c.to_dict() for k, c in sorted(self.classes.items())},
            "refs": list(self.refs),
            "suppressions": {str(k): list(v) for k, v in sorted(self.suppressions.items())},
            "map_sites": [m.to_dict() for m in self.map_sites],
            "var_ctors": {
                k: c.to_dict() for k, c in sorted(self.var_ctors.items())
            },
            "error": self.error,
        }

    @staticmethod
    def from_dict(data: dict) -> "ModuleSummary":
        return ModuleSummary(
            module=data["module"],
            path=data["path"],
            is_package=data["is_package"],
            bindings={k: Binding.from_dict(b) for k, b in data["bindings"].items()},
            exports=tuple(data["exports"]) if data["exports"] is not None else None,
            functions={
                k: FunctionSummary.from_dict(f) for k, f in data["functions"].items()
            },
            classes={k: ClassSummary.from_dict(c) for k, c in data["classes"].items()},
            refs=tuple(data["refs"]),
            suppressions={
                int(k): tuple(v) for k, v in data["suppressions"].items()
            },
            map_sites=tuple(MapSite.from_dict(m) for m in data["map_sites"]),
            var_ctors={
                k: CallTarget.from_dict(c)
                for k, c in data.get("var_ctors", {}).items()
            },
            error=data["error"],
        )


def error_summary(path: str, message: str) -> ModuleSummary:
    """Placeholder summary for a file that could not be analyzed."""
    module, is_package = module_name_for(path)
    return ModuleSummary(
        module=module,
        path=path,
        is_package=is_package,
        bindings={},
        exports=None,
        functions={},
        classes={},
        refs=(),
        suppressions={},
        map_sites=(),
        error=message,
    )


# ----------------------------------------------------------------------
# Summarization
# ----------------------------------------------------------------------


def _dotted_parts(expr: ast.expr) -> tuple[str, list[str]] | None:
    """(base name, attribute chain) for a plain dotted expression."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.reverse()
    return node.id, parts


def _classify_target(
    expr: ast.expr, bindings: dict[str, Binding], cls_name: str | None
) -> CallTarget | None:
    """Resolve a call/reference expression against the module bindings."""
    dotted = _dotted_parts(expr)
    if dotted is None:
        return None
    base, parts = dotted
    line = getattr(expr, "lineno", 0)
    if base == "self" and cls_name is not None and len(parts) == 1:
        return CallTarget("self", f"{cls_name}.{parts[0]}", line)
    binding = bindings.get(base)
    if binding is None:
        return None
    if binding.kind == "import":
        return CallTarget("dotted", ".".join([binding.target, *parts]), line)
    if binding.kind == "func" and not parts:
        return CallTarget("local", base, line)
    if binding.kind == "class":
        if not parts:
            return CallTarget("local", base, line)
        if len(parts) == 1:
            return CallTarget("local", f"{base}.{parts[0]}", line)
    return None


def _is_open_call(node: ast.Call, bindings: dict[str, Binding]) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open" and "open" not in bindings:
        return True
    target = _classify_target(func, bindings, None)
    return target is not None and target.kind == "dotted" and target.target == "io.open"


def _is_enabled_instrumentation(target: CallTarget | None) -> bool:
    return (
        target is not None
        and target.target.endswith("Instrumentation.enabled")
    )


def _assign_map(func_node: ast.AST) -> dict[str, ast.expr]:
    """Simple local name → value-expression map (last assignment wins)."""
    assigns: dict[str, ast.expr] = {}
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns[node.target.id] = node.value
    return assigns


class _CallableSummarizer:
    """Summarize one top-level function or method body."""

    def __init__(
        self,
        ctx: ModuleContext,
        bindings: dict[str, Binding],
        cls_name: str | None,
    ) -> None:
        self.ctx = ctx
        self.bindings = bindings
        self.cls_name = cls_name
        self.calls: list[CallTarget] = []
        self.effects: list[Effect] = []
        self.map_sites: list[MapSite] = []
        self._assigns: dict[str, ast.expr] = {}

    def run(self, func_node: ast.FunctionDef | ast.AsyncFunctionDef, qual: str) -> FunctionSummary:
        self._assigns = _assign_map(func_node)
        for node in ast.walk(func_node):
            if isinstance(node, ast.Call):
                self._visit_call(node, qual)
        async_info = collect_async_info(
            func_node,
            classify=lambda e: _classify_target(e, self.bindings, self.cls_name),
            resolve_dotted=self.ctx.resolve_dotted,
            is_open=lambda call: _is_open_call(call, self.bindings),
            assigns=self._assigns,
            cls_name=self.cls_name,
        )
        taint_info = collect_taint_info(
            func_node,
            classify=lambda e: _classify_target(e, self.bindings, self.cls_name),
            cls_name=self.cls_name,
        )
        return FunctionSummary(
            qual=qual,
            line=func_node.lineno,
            public=not func_node.name.startswith("_"),
            calls=tuple(self.calls),
            effects=tuple(self.effects),
            async_info=async_info,
            taint_info=taint_info,
        )

    # -- calls ----------------------------------------------------------

    def _visit_call(self, node: ast.Call, qual: str) -> None:
        if self._record_effect(node):
            return
        target = _classify_target(node.func, self.bindings, self.cls_name)
        if target is not None:
            self.calls.append(target)
        self._record_map_site(node, qual)
        self._record_callable_refs(node)

    def _record_effect(self, node: ast.Call) -> bool:
        """True when the call is a tracked external effect (recorded or
        blessed by a per-file suppression) — either way, not an edge."""
        resolved = self.ctx.resolve_dotted(node.func)
        if resolved is None:
            return False
        path = tuple(resolved)
        for kind, detail, per_file_rule in (
            ("rng", rng_effect(path), "R001"),
            ("clock", clock_effect(path), "R002"),
        ):
            if detail is None:
                continue
            if not self.ctx.is_suppressed(node, per_file_rule):
                self.effects.append(Effect(kind, detail, node.lineno))
            return True
        return False

    def _record_callable_refs(self, node: ast.Call) -> None:
        """Bare function names passed as arguments become may-call edges."""
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            if not isinstance(arg, ast.Name):
                continue
            binding = self.bindings.get(arg.id)
            if binding is None or binding.kind not in ("func", "import"):
                continue
            target = _classify_target(arg, self.bindings, self.cls_name)
            if target is not None:
                self.calls.append(dataclasses.replace(target, ref=True))

    # -- ExecutionEngine.map sites --------------------------------------

    def _record_map_site(self, node: ast.Call, qual: str) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "map"):
            return
        if "engine" not in ast.unparse(func.value).lower():
            return
        fn_arg: ast.expr | None = node.args[0] if node.args else None
        payload_arg: ast.expr | None = node.args[1] if len(node.args) > 1 else None
        for keyword in node.keywords:
            if keyword.arg == "fn":
                fn_arg = keyword.value
            elif keyword.arg == "tasks":
                payload_arg = keyword.value
        fn_target = None
        fn_lambda = isinstance(fn_arg, ast.Lambda)
        if fn_arg is not None and not fn_lambda:
            fn_target = _classify_target(fn_arg, self.bindings, self.cls_name)
        payloads, hazards = self._analyze_payloads(payload_arg)
        self.map_sites.append(
            MapSite(
                line=node.lineno,
                func=qual,
                fn=fn_target,
                fn_lambda=fn_lambda,
                payloads=tuple(payloads),
                hazards=tuple(hazards),
            )
        )

    def _analyze_payloads(
        self, payload_arg: ast.expr | None
    ) -> tuple[list[PayloadItem], list[Hazard]]:
        if payload_arg is None:
            return [], []
        expr = payload_arg
        # A bare name: chase the local assignment that built the list.
        if isinstance(expr, ast.Name) and expr.id in self._assigns:
            expr = self._assigns[expr.id]
        payloads: list[PayloadItem] = []
        hazards: list[Hazard] = []
        seen: set[str] = set()
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Lambda):
                hazards.append(Hazard("lambda", "", sub.lineno))
            elif isinstance(sub, ast.Call):
                if _is_open_call(sub, self.bindings):
                    hazards.append(Hazard("open", "", sub.lineno))
                elif _is_enabled_instrumentation(
                    _classify_target(sub.func, self.bindings, self.cls_name)
                ):
                    hazards.append(Hazard("instrumentation", "", sub.lineno))
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in seen:
                    continue
                seen.add(sub.id)
                ctor_expr = self._assigns.get(sub.id)
                if isinstance(ctor_expr, ast.Call):
                    ctor = _classify_target(ctor_expr.func, self.bindings, self.cls_name)
                    if ctor is not None:
                        payloads.append(PayloadItem(sub.id, ctor, sub.lineno))
        return payloads, hazards


def _class_hazards(
    node: ast.ClassDef, bindings: dict[str, Binding]
) -> list[Hazard]:
    """``self.x = open(...)`` / lambda / ``Instrumentation.enabled()``
    anywhere in the class body."""
    hazards: list[Hazard] = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign):
            continue
        for target in sub.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = sub.value
            if isinstance(value, ast.Lambda):
                hazards.append(Hazard("lambda", target.attr, sub.lineno))
            elif isinstance(value, ast.Call):
                if _is_open_call(value, bindings):
                    hazards.append(Hazard("open", target.attr, sub.lineno))
                elif _is_enabled_instrumentation(
                    _classify_target(value.func, bindings, None)
                ):
                    hazards.append(Hazard("instrumentation", target.attr, sub.lineno))
    return hazards


def _attr_ctors(
    node: ast.ClassDef, bindings: dict[str, Binding]
) -> tuple[tuple[str, CallTarget, bool], ...]:
    """``self.x = Ctor(...)`` (or a list/dict comprehension of ctor
    calls, as in sharded lock pools) anywhere in the class body.  First
    assignment per attribute wins."""
    out: dict[str, tuple[CallTarget, bool]] = {}
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign):
            continue
        for target in sub.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if target.attr in out:
                continue
            value = sub.value
            container = not isinstance(value, ast.Call)
            call = value if isinstance(value, ast.Call) else None
            if call is None:
                for inner in ast.walk(value):
                    if isinstance(inner, ast.Call):
                        call = inner
                        break
            if call is None:
                continue
            ctor = _classify_target(call.func, bindings, None)
            if ctor is not None:
                out[target.attr] = (ctor, container)
    return tuple(
        (attr, ctor, container)
        for attr, (ctor, container) in sorted(out.items())
    )


def _collect_var_ctors(
    tree: ast.Module, bindings: dict[str, Binding]
) -> dict[str, CallTarget]:
    """Module-level ``NAME = Ctor(...)`` assignments."""
    out: dict[str, CallTarget] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        ctor = _classify_target(node.value.func, bindings, None)
        if ctor is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.setdefault(target.id, ctor)
    return out


def _collect_refs(tree: ast.Module) -> tuple[str, ...]:
    """Every identifier the module references: loaded names plus
    attribute names (the coarse usage relation R009 runs on)."""
    refs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            refs.add(node.attr)
    return tuple(sorted(refs))


def summarize_module(ctx: ModuleContext, path: str | None = None) -> ModuleSummary:
    """Build the whole-program summary of one parsed module."""
    report_path = path if path is not None else ctx.path
    module, is_package = module_name_for(report_path)
    bindings, exports = collect_bindings(ctx.tree, module, is_package)

    functions: dict[str, FunctionSummary] = {}
    classes: dict[str, ClassSummary] = {}
    map_sites: list[MapSite] = []
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarizer = _CallableSummarizer(ctx, bindings, None)
            functions[node.name] = summarizer.run(node, node.name)
            map_sites.extend(summarizer.map_sites)
        elif isinstance(node, ast.ClassDef):
            cls_public = not node.name.startswith("_")
            methods = []
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{node.name}.{sub.name}"
                    summarizer = _CallableSummarizer(ctx, bindings, node.name)
                    functions[qual] = summarizer.run(sub, qual)
                    map_sites.extend(summarizer.map_sites)
                    methods.append(sub.name)
            classes[node.name] = ClassSummary(
                name=node.name,
                line=node.lineno,
                public=cls_public,
                methods=tuple(methods),
                hazards=tuple(_class_hazards(node, bindings)),
                attr_ctors=_attr_ctors(node, bindings),
                fields=collect_dataclass_fields(node),
            )

    return ModuleSummary(
        module=module,
        path=report_path,
        is_package=is_package,
        bindings=bindings,
        exports=tuple(exports) if exports is not None else None,
        functions=functions,
        classes=classes,
        refs=_collect_refs(ctx.tree),
        suppressions=ctx.suppression_table(),
        map_sites=tuple(map_sites),
        var_ctors=_collect_var_ctors(ctx.tree, bindings),
    )
