"""The five whole-program rules (R007-R011).

Where R001-R006 inspect one module at a time, these run over the
assembled :class:`~repro.analysis.graph.callgraph.ProgramGraph` and
catch the cross-module shapes the per-file pass is structurally blind
to: effects laundered through re-exports and wrappers, dead public
surface, facade drift, and pickle hazards that only matter once an
object crosses a process boundary.  Findings carry call-chain evidence
(``a -> b -> c calls numpy.random.rand()``) with file:line per hop.
"""

from __future__ import annotations

from ..findings import Finding
from ..rulebase import GraphRule, register_graph
from .callgraph import ProgramGraph

__all__: list[str] = []

_HAZARD_TEXT = {
    "open": "an open file handle",
    "lambda": "a lambda",
    "instrumentation": "an enabled Instrumentation handle",
}


def _entry_points(graph: ProgramGraph) -> list[tuple[str, str, str, int]]:
    """(node_id, label, anchor_path, anchor_line) for every analysis
    entry point: ``ExecutionEngine.map`` task payloads plus module-level
    ``run_*`` functions."""
    entries: list[tuple[str, str, str, int]] = []
    for module, summary in sorted(graph.modules.items()):
        for site in summary.map_sites:
            if site.fn is None:
                continue
            resolved = graph.resolve_target(module, site.fn)
            if resolved is None or resolved[0] != "func":
                continue
            node_id = resolved[1]
            entries.append(
                (
                    node_id,
                    f"ExecutionEngine.map payload '{graph.dotted_name(node_id)}'",
                    summary.path,
                    site.line,
                )
            )
        for qual, fn in sorted(summary.functions.items()):
            if "." not in qual and qual.startswith("run_"):
                node_id = f"{module}:{qual}"
                entries.append(
                    (
                        node_id,
                        f"entry point '{graph.dotted_name(node_id)}'",
                        summary.path,
                        fn.line,
                    )
                )
    return entries


@register_graph
class TransitiveRandomnessRule(GraphRule):
    id = "R007"
    title = "unseeded randomness reachable from a pool payload or entry point"
    example = "def jitter(): return random.random()  # called by a task fn"
    rationale = """A task function handed to ExecutionEngine.map (or a run_*
    protocol entry point) must be deterministic given its payload; a helper
    that draws from global RNG state two calls away breaks pool==serial
    bit-identity just as surely as a direct call — and per-file R001 cannot
    see through project imports.  The finding's evidence lists the call
    chain, one file:line per hop."""

    def run(self, graph: ProgramGraph) -> list[Finding]:
        seen: set[tuple[str, int, str]] = set()
        for node_id, label, path, line in _entry_points(graph):
            if "rng" not in graph.transitive.get(node_id, {}):
                continue
            key = (path, line, node_id)
            if key in seen:
                continue
            seen.add(key)
            self.report(
                graph,
                path,
                line,
                f"{label} transitively reaches unseeded randomness: "
                f"{graph.chain_summary(node_id, 'rng')}",
                evidence=tuple(graph.effect_chain(node_id, "rng")),
            )
        return self.findings


@register_graph
class TransitiveWallClockRule(GraphRule):
    id = "R008"
    title = "transitive wall-clock reachability outside the clock allowlist"
    example = "def stamp(): return time.time()  # reached from run_experiment"
    rationale = """R002 flags a literal time.time() in the module that imports
    time — but a read laundered through a re-exported alias or a wrapper in
    another module resolves to nothing the per-file pass can see.  This rule
    follows imports and call edges project-wide: any cross-module route to
    the real clock that does not pass through the allowlisted clock modules
    (the obs.clock abstraction and the historical engine/perf.py) is
    reported with its full call chain."""

    def run(self, graph: ProgramGraph) -> list[Finding]:
        reported: set[tuple[str, int]] = set()
        for node_id in sorted(graph.nodes):
            info = graph.nodes[node_id]
            if graph.is_allowlisted_clock_module(info.path):
                continue
            # (a) clock reads reached through a cross-module alias: the
            # per-file pass could not resolve these at all.
            for kind, detail, line, provenance in graph.direct_effects.get(node_id, ()):
                if kind != "clock" or provenance != "cross":
                    continue
                if (info.path, line) in reported:
                    continue
                reported.add((info.path, line))
                self.report(
                    graph,
                    info.path,
                    line,
                    f"wall-clock read {detail}() reached through a cross-module "
                    "alias; route timing through the obs.clock abstraction",
                    evidence=(
                        f"{info.dotted} calls {detail}() ({info.path}:{line})",
                    ),
                )
            # (b) calls into clock-tainted functions in other modules.
            for edge in graph.edges.get(node_id, ()):
                callee = graph.nodes.get(edge.callee)
                if callee is None or callee.module == info.module:
                    continue
                if "clock" not in graph.transitive.get(edge.callee, {}):
                    continue
                if (info.path, edge.line) in reported:
                    continue
                reported.add((info.path, edge.line))
                self.report(
                    graph,
                    info.path,
                    edge.line,
                    f"call into '{callee.dotted}' transitively reaches the wall "
                    f"clock outside the allowlist: "
                    f"{graph.chain_summary(edge.callee, 'clock')}",
                    evidence=(
                        f"{info.dotted} -> {callee.dotted} ({info.path}:{edge.line})",
                        *graph.effect_chain(edge.callee, "clock"),
                    ),
                )
        return self.findings


@register_graph
class UnreachablePublicRule(GraphRule):
    id = "R009"
    title = "public function never referenced from any entry point or test"
    example = "def legacy_helper(...):  # exported, referenced nowhere"
    rationale = """A public function nobody calls — not the CLI, not a run_*
    protocol, not a test — is untested surface that will silently rot (and
    its determinism contracts go unchecked).  Either wire it to a caller or
    a test, drop it, or suppress with a justification.  The usage relation
    is deliberately coarse (any name or attribute reference anywhere counts)
    so dynamic dispatch cannot produce false positives."""

    #: Method prefixes invoked by frameworks rather than by name.
    _FRAMEWORK_PREFIXES = ("visit_",)

    def run(self, graph: ProgramGraph) -> list[Finding]:
        ignore = frozenset(
            graph.config.options_for(self.id).get("ignore-names", ())
        )
        packages = frozenset(graph.config.project_packages)
        for node_id in sorted(graph.nodes):
            info = graph.nodes[node_id]
            if info.module.split(".")[0] not in packages:
                continue
            if not info.public:
                continue
            summary = graph.modules[info.module]
            name = info.qual.split(".")[-1]
            if "." in info.qual:
                cls = summary.classes.get(info.qual.split(".")[0])
                if cls is None or not cls.public:
                    continue
            if name.startswith(self._FRAMEWORK_PREFIXES) or name in ignore:
                continue
            if name in graph.global_refs:
                continue
            self.report(
                graph,
                info.path,
                info.line,
                f"public function '{info.dotted}' is never referenced from any "
                "entry point, CLI command, or test — dead public surface",
            )
        return self.findings


def _symbol_exists(graph: ProgramGraph, dotted: str, depth: int = 0) -> bool | None:
    """Whether ``dotted`` names something real: True / False / None
    (outside the analyzed file set, so unknowable)."""
    if depth > 20:
        return None
    parts = dotted.split(".")
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        if prefix not in graph.modules:
            continue
        rest = parts[i:]
        if not rest:
            return True  # the module object itself
        summary = graph.modules[prefix]
        if summary.error is not None:
            return None
        binding = summary.bindings.get(rest[0])
        if binding is None:
            return False
        if binding.kind == "import":
            return _symbol_exists(
                graph, ".".join([binding.target, *rest[1:]]), depth + 1
            )
        if len(rest) == 1:
            return True
        return None  # attribute of a class/var: not statically tracked
    return None


@register_graph
class FacadeDriftRule(GraphRule):
    id = "R010"
    title = "repro.api facade drift"
    example = "__all__ = [..., 'run_sweep']  # name the facade never re-exports"
    rationale = """The facade is the compatibility promise: every name it
    re-exports must still exist in the owning module, every __all__ entry
    must be bound, and every project re-export must be listed in __all__ —
    otherwise the documented surface and the real one drift apart in
    whichever direction nobody is looking."""

    def run(self, graph: ProgramGraph) -> list[Finding]:
        facade = None
        for summary in graph.modules.values():
            if summary.path.endswith(graph.config.facade):
                facade = summary
                break
        if facade is None or facade.error is not None:
            return self.findings
        exports = set(facade.exports or ())
        exports_line = (
            facade.bindings["__all__"].line if "__all__" in facade.bindings else 1
        )
        project_tops = frozenset(m.split(".")[0] for m in graph.modules)

        for name, binding in sorted(facade.bindings.items()):
            if binding.kind != "import":
                continue
            if binding.target.split(".")[0] not in project_tops:
                continue
            exists = _symbol_exists(graph, binding.target)
            if exists is False:
                self.report(
                    graph,
                    facade.path,
                    binding.line,
                    f"facade re-exports '{name}' from '{binding.target.rsplit('.', 1)[0]}', "
                    "which no longer defines it",
                )
            if name not in exports:
                self.report(
                    graph,
                    facade.path,
                    binding.line,
                    f"facade imports '{name}' but omits it from __all__ "
                    "(undocumented re-export)",
                )
            self._check_source_all(graph, facade, name, binding)

        bound = set(facade.bindings)
        for name in sorted(exports):
            if name not in bound:
                self.report(
                    graph,
                    facade.path,
                    exports_line,
                    f"facade __all__ exports '{name}' but never binds it",
                )
        return self.findings

    def _check_source_all(self, graph, facade, name, binding) -> None:
        """A re-exported name should be part of the owning module's own
        public surface (its __all__, when it declares one)."""
        parts = binding.target.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            if prefix not in graph.modules:
                continue
            source = graph.modules[prefix]
            symbol = parts[i]
            if source.exports is not None and symbol not in source.exports:
                self.report(
                    graph,
                    facade.path,
                    binding.line,
                    f"facade re-exports '{name}' but '{symbol}' is not in "
                    f"{prefix}.__all__ (not part of that module's public surface)",
                )
            return


@register_graph
class PoolPayloadPickleRule(GraphRule):
    id = "R011"
    title = "unpicklable object packed into a pool payload"
    example = "payloads = [(clip, self._lock) for clip in clips]"
    rationale = """ExecutionEngine.map pickles every payload element to the
    worker processes.  An object whose class stores an open file, a lambda,
    or an enabled Instrumentation handle pickles fine in serial tests and
    explodes only at --jobs > 1 — and when the class lives in another
    module, per-file R003 cannot connect the two.  Enabled handles are
    process-local by design; workers must build their own."""

    def run(self, graph: ProgramGraph) -> list[Finding]:
        for module, summary in sorted(graph.modules.items()):
            for site in summary.map_sites:
                for hazard in site.hazards:
                    self.report(
                        graph,
                        summary.path,
                        hazard.line,
                        f"pool payload contains {_HAZARD_TEXT[hazard.kind]}; "
                        "it cannot be pickled to worker processes",
                    )
                for item in site.payloads:
                    self._check_payload_item(graph, summary, site, item)
        return self.findings

    def _check_payload_item(self, graph, summary, site, item) -> None:
        ctor = item.ctor
        if ctor is None:
            return
        if ctor.target.endswith("Instrumentation.enabled"):
            self.report(
                graph,
                summary.path,
                site.line,
                f"'{item.name}' is an enabled Instrumentation handle packed "
                "into a pool payload; enabled handles are process-local and "
                "refuse to pickle — build one inside the worker instead",
            )
            return
        resolved = graph.resolve_target(summary.module, ctor)
        if resolved is None or resolved[0] != "class":
            return
        _, cls_module, cls_name = resolved
        cls = graph.modules[cls_module].classes.get(cls_name)
        if cls is None:
            return
        cls_path = graph.modules[cls_module].path
        for hazard in cls.hazards:
            self.report(
                graph,
                summary.path,
                site.line,
                f"'{item.name}' ({cls_module}.{cls_name}) flows into a pool "
                f"payload but its class holds {_HAZARD_TEXT[hazard.kind]} "
                f"in self.{hazard.attr} ({cls_path}:{hazard.line}); it cannot "
                "cross the process boundary",
                evidence=(
                    f"{summary.module}.{site.func or '<module>'} packs '{item.name}' "
                    f"({summary.path}:{site.line})",
                    f"{cls_module}.{cls_name}.self.{hazard.attr} = "
                    f"{_HAZARD_TEXT[hazard.kind]} ({cls_path}:{hazard.line})",
                ),
            )
