"""reprograph: the whole-program layer beneath reprolint.

Per-module summaries (:mod:`.summarize`, content-hash cached by
:mod:`.cache`) are assembled into a project-wide symbol table and call
graph (:mod:`.callgraph`) with fixed-point transitive effect
propagation; the interprocedural rules R007-R011 (:mod:`.rules`) run
over the result and report findings with per-hop call-chain evidence.
``--dump-graph`` serialization lives in :mod:`.dump`.
"""

from __future__ import annotations

from .cache import SummaryCache, content_hash
from .callgraph import Edge, NodeInfo, ProgramGraph, build_graph
from .dump import GRAPH_SCHEMA_VERSION, dump_dot, dump_json
from .summarize import ModuleSummary, error_summary, summarize_module
from .symbols import Binding, collect_bindings, module_name_for

__all__ = [
    "Binding",
    "Edge",
    "GRAPH_SCHEMA_VERSION",
    "ModuleSummary",
    "NodeInfo",
    "ProgramGraph",
    "SummaryCache",
    "build_graph",
    "collect_bindings",
    "content_hash",
    "dump_dot",
    "dump_json",
    "error_summary",
    "module_name_for",
    "summarize_module",
]
