"""Content-hash cache of module summaries for incremental graph runs.

Summaries are keyed by report path and invalidated by a sha256 of the
file's bytes, so an incremental ``repro lint --graph`` re-summarizes
only the files whose *content* changed — touching timestamps or
reordering the walk cannot cause spurious work.  Hits and misses are
counted on the caller's :class:`~repro.obs.metrics.MetricsRegistry`
(``reprograph_summaries_total{result=hit|miss}``), which is what the
incrementality tests assert against.

The on-disk form is one JSON document (schema-versioned; a corrupt or
mismatched file is discarded, never an error).  Entries for files that
no longer exist on disk are pruned at save time so fixture churn cannot
grow the cache without bound.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .summarize import SUMMARY_VERSION, ModuleSummary

__all__ = ["SummaryCache", "content_hash"]

_CACHE_VERSION = 1


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class SummaryCache:
    """Load-once / save-once summary store (in-memory when path=None)."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: dict[str, dict] = {}
        self._sources: dict[str, str] = {}  # report path -> filesystem path
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if self.path is None or not self.path.is_file():
            return
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return
        if (
            not isinstance(document, dict)
            or document.get("version") != _CACHE_VERSION
            or document.get("summary_version") != SUMMARY_VERSION
        ):
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, report_path: str, digest: str) -> ModuleSummary | None:
        """The cached summary for ``report_path`` at ``digest``, or None."""
        entry = self._entries.get(report_path)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(
        self, report_path: str, digest: str, summary: ModuleSummary, source: str
    ) -> None:
        self._entries[report_path] = {
            "hash": digest,
            "summary": summary.to_dict(),
        }
        self._sources[report_path] = source
        self._dirty = True

    def mark_source(self, report_path: str, source: str) -> None:
        """Record where a (hit) entry's file lives, for pruning."""
        self._sources[report_path] = source

    def save(self) -> None:
        """Write the cache back (no-op when in-memory or unchanged)."""
        if self.path is None or not self._dirty:
            return
        kept = {}
        for report_path, entry in sorted(self._entries.items()):
            source = self._sources.get(report_path, report_path)
            if Path(source).exists():
                kept[report_path] = entry
        document = {
            "version": _CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "entries": kept,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(document, sort_keys=True) + "\n", encoding="utf-8")
        self._dirty = False
