"""Serialize a :class:`ProgramGraph` for humans and tools.

``--dump-graph json`` is the machine interface (schema-versioned,
sorted keys, byte-stable for identical inputs, like the lint report
itself); ``--dump-graph dot`` renders a Graphviz digraph with effect-
tainted nodes highlighted, for eyeballing why a chain exists.
"""

from __future__ import annotations

import json

from .callgraph import ProgramGraph

__all__ = ["GRAPH_SCHEMA_VERSION", "dump_json", "dump_dot"]

GRAPH_SCHEMA_VERSION = 1


def dump_json(graph: ProgramGraph) -> str:
    """The whole graph as one stable JSON document."""
    nodes = []
    for node_id in sorted(graph.nodes):
        info = graph.nodes[node_id]
        nodes.append(
            {
                "id": node_id,
                "module": info.module,
                "qual": info.qual,
                "path": info.path,
                "line": info.line,
                "public": info.public,
                "direct_effects": [
                    {"kind": kind, "detail": detail, "line": line, "provenance": prov}
                    for kind, detail, line, prov in graph.direct_effects.get(node_id, ())
                ],
                "transitive": {
                    kind: graph.effect_chain(node_id, kind)
                    for kind in sorted(graph.transitive.get(node_id, ()))
                },
            }
        )
    edges = [
        {"caller": edge.caller, "callee": edge.callee, "line": edge.line, "ref": edge.ref}
        for node_id in sorted(graph.edges)
        for edge in graph.edges[node_id]
    ]
    document = {
        "version": GRAPH_SCHEMA_VERSION,
        "modules": {
            name: {"path": summary.path, "error": summary.error}
            for name, summary in sorted(graph.modules.items())
        },
        "nodes": nodes,
        "edges": edges,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def dump_dot(graph: ProgramGraph) -> str:
    """Graphviz digraph; rng-tainted nodes red, clock-tainted orange."""
    lines = ["digraph reprograph {", "  rankdir=LR;", '  node [shape=box, fontsize=10];']
    for node_id in sorted(graph.nodes):
        info = graph.nodes[node_id]
        kinds = graph.transitive.get(node_id, {})
        attrs = [f'label="{info.dotted}"']
        if "rng" in kinds:
            attrs.append('color=red')
        elif "clock" in kinds:
            attrs.append('color=orange')
        lines.append(f'  "{node_id}" [{", ".join(attrs)}];')
    for node_id in sorted(graph.edges):
        for edge in graph.edges[node_id]:
            style = " [style=dashed]" if edge.ref else ""
            lines.append(f'  "{edge.caller}" -> "{edge.callee}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"
