"""Project symbol table primitives: module naming and per-module bindings.

The whole-program layer needs two things the per-file rules never did:
a stable **module name** for every file (``src/repro/core/features.py``
→ ``repro.core.features``) so imports can be resolved across files, and
the full **binding table** of each module — every top-level name and
what it is (a function, a class, an import of something else, a plain
variable).  Import bindings carry the *absolute* dotted target (relative
imports are resolved against the module's package), which is what lets
the call-graph resolver follow re-export chains like ``repro.obs``
re-exporting :class:`~repro.obs.instrument.Instrumentation`.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import PurePosixPath

__all__ = ["Binding", "module_name_for", "collect_bindings"]

#: Directory names stripped from the front of a module path: source
#: roots, not package levels.
_SOURCE_ROOTS = ("src",)


def module_name_for(relpath: str) -> tuple[str, bool]:
    """(dotted module name, is_package) for a project-relative path.

    ``src/repro/obs/__init__.py`` → (``repro.obs``, True);
    ``tests/core/test_roi.py`` → (``tests.core.test_roi``, False).
    """
    parts = list(PurePosixPath(relpath).with_suffix("").parts)
    while parts and parts[0] in _SOURCE_ROOTS:
        parts = parts[1:]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


@dataclasses.dataclass(frozen=True)
class Binding:
    """One top-level name in a module.

    ``kind`` is ``func`` / ``class`` / ``import`` / ``var``; ``target``
    is the absolute dotted path for imports, else None.
    """

    kind: str
    line: int
    target: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "line": self.line}
        if self.target is not None:
            out["target"] = self.target
        return out

    @staticmethod
    def from_dict(data: dict) -> "Binding":
        return Binding(kind=data["kind"], line=data["line"], target=data.get("target"))


def _import_base(module: str, is_package: bool, level: int, from_module: str | None) -> str:
    """Absolute dotted prefix for a (possibly relative) ``from`` import."""
    if level == 0:
        return from_module or ""
    package_parts = module.split(".") if is_package else module.split(".")[:-1]
    # level 1 = current package, each extra level climbs one package up.
    if level > 1:
        package_parts = package_parts[: len(package_parts) - (level - 1)]
    base = ".".join(package_parts)
    if from_module:
        base = f"{base}.{from_module}" if base else from_module
    return base


def collect_bindings(
    tree: ast.Module, module: str, is_package: bool
) -> tuple[dict[str, Binding], list[str] | None]:
    """Top-level bindings plus the literal ``__all__`` (None if absent).

    Later bindings of the same name win, matching runtime semantics.
    """
    bindings: dict[str, Binding] = {}
    exports: list[str] | None = None
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings[alias.asname] = Binding("import", node.lineno, alias.name)
                else:
                    top = alias.name.split(".")[0]
                    bindings[top] = Binding("import", node.lineno, top)
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(module, is_package, node.level, node.module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                bindings[local] = Binding("import", node.lineno, target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bindings[node.name] = Binding("func", node.lineno)
        elif isinstance(node, ast.ClassDef):
            bindings[node.name] = Binding("class", node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__" and isinstance(value, (ast.List, ast.Tuple)):
                    literal = [
                        el.value
                        for el in value.elts
                        if isinstance(el, ast.Constant) and isinstance(el.value, str)
                    ]
                    exports = literal
                bindings.setdefault(target.id, Binding("var", node.lineno))
    return bindings, exports
