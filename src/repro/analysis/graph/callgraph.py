"""The program graph: symbol resolution, edges, fixed-point effects.

Built from :class:`~repro.analysis.graph.summarize.ModuleSummary`
objects only — never from re-parsed source — so a graph over cached
summaries is bit-identical to one over fresh ones.

Resolution follows dotted targets through project modules *including
re-export chains* (``from time import perf_counter as timer`` in a util
module makes ``util.timer`` resolve to the external ``time.
perf_counter``), which is exactly the laundering per-file rules cannot
see.  A dotted path that bottoms out in an external module is classified
by :mod:`repro.analysis.effects`; one that bottoms out at a project
function becomes a call edge.

Effect propagation is a deterministic fixed point: a function's
transitive effect set is its direct effects plus the union over its
callees, with one mask — wall-clock effects never propagate out of the
allowlisted clock modules (they are the blessed sites).  Each propagated
effect remembers the call edge it arrived through, so every finding can
print an ``a -> b -> c calls time.time()`` chain with file:line per hop.
"""

from __future__ import annotations

import dataclasses

from ..config import DEFAULT_LINT_CONFIG, LintConfig
from ..effects import clock_effect, rng_effect
from .summarize import CallTarget, ModuleSummary

__all__ = ["NodeInfo", "Edge", "ProgramGraph", "build_graph"]

_MAX_RESOLVE_DEPTH = 20


@dataclasses.dataclass(frozen=True)
class NodeInfo:
    """One function or method in the program."""

    node_id: str  # "module.path:qual"
    module: str
    qual: str
    path: str
    line: int
    public: bool

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qual}"


@dataclasses.dataclass(frozen=True)
class Edge:
    caller: str
    callee: str
    line: int
    ref: bool  # True for a callable passed as an argument (may-call)


#: A direct effect: (kind, detail, line, provenance) where provenance is
#: "local" (visible to the per-file rules) or "cross" (discovered only
#: by following imports across modules).
DirectEffect = tuple[str, str, int, str]

#: Transitive-effect origin: ("direct", detail, line) at the primitive,
#: or ("call", callee_node_id, call_line) one hop toward it.
Origin = tuple[str, str, int]


class ProgramGraph:
    """Whole-program symbol table, call graph and effect closure."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.modules: dict[str, ModuleSummary] = {}
        self.by_path: dict[str, ModuleSummary] = {}
        self.nodes: dict[str, NodeInfo] = {}
        self.edges: dict[str, tuple[Edge, ...]] = {}
        self.direct_effects: dict[str, tuple[DirectEffect, ...]] = {}
        self.transitive: dict[str, dict[str, Origin]] = {}
        self.global_refs: frozenset[str] = frozenset()
        #: ``(path, line, token)`` suppression declarations that silenced
        #: a graph-rule diagnostic; merged with the per-file contexts'
        #: usage sets when the linter computes W001.
        self.suppression_uses: set[tuple[str, int, str]] = set()

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def _project_top_packages(self) -> frozenset[str]:
        return frozenset(m.split(".")[0] for m in self.modules)

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> tuple | None:
        """Resolve an absolute dotted path to its terminal.

        Returns ("func", node_id), ("class", module, name),
        ("external", parts) for paths leaving the project, or None when
        unresolvable (deleted symbol, module object, dynamic binding).
        """
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                return self._resolve_in_module(prefix, parts[i:], _depth)
        if parts[0] not in self._project_top_packages():
            return ("external", tuple(parts))
        return None

    def _resolve_in_module(
        self, module: str, sym_parts: list[str], depth: int
    ) -> tuple | None:
        summary = self.modules[module]
        binding = summary.bindings.get(sym_parts[0])
        if binding is None:
            return None
        if binding.kind == "func":
            if len(sym_parts) == 1 and sym_parts[0] in summary.functions:
                return ("func", f"{module}:{sym_parts[0]}")
            return None
        if binding.kind == "class":
            if len(sym_parts) == 1:
                return ("class", module, sym_parts[0])
            if len(sym_parts) == 2:
                qual = f"{sym_parts[0]}.{sym_parts[1]}"
                if qual in summary.functions:
                    return ("func", f"{module}:{qual}")
            return None
        if binding.kind == "import":
            target = ".".join([binding.target, *sym_parts[1:]])
            return self.resolve_dotted(target, depth + 1)
        return None

    def resolve_target(self, module: str, target: CallTarget) -> tuple | None:
        """Resolve a summarized call target from its defining module."""
        if target.kind == "dotted":
            return self.resolve_dotted(target.target)
        summary = self.modules.get(module)
        if summary is None:
            return None
        if target.kind == "self":
            if target.target in summary.functions:
                return ("func", f"{module}:{target.target}")
            return None
        # kind == "local": a function, class, or Class.method name.
        if target.target in summary.functions:
            return ("func", f"{module}:{target.target}")
        name = target.target.split(".")[0]
        if name in summary.classes:
            if "." not in target.target:
                return ("class", module, name)
            if target.target in summary.functions:
                return ("func", f"{module}:{target.target}")
        return None

    # ------------------------------------------------------------------
    # Queries used by the rules and the dump
    # ------------------------------------------------------------------

    def is_allowlisted_clock_module(self, path: str) -> bool:
        return path.endswith(tuple(self.config.wall_clock_allowlist))

    def is_suppressed(self, path: str, line: int, rule_id: str) -> bool:
        summary = self.by_path.get(path)
        if summary is None:
            return False
        rules = summary.suppressions.get(line, ())
        hit = False
        for token in (rule_id, "all", "*"):
            if token in rules:
                self.suppression_uses.add((path, line, token))
                hit = True
        return hit

    def dotted_name(self, node_id: str) -> str:
        return self.nodes[node_id].dotted

    def effect_chain(self, node_id: str, kind: str) -> list[str]:
        """Human-readable hop list from ``node_id`` to the primitive.

        Each entry is one hop with its file:line; the last entry names
        the offending external callable.
        """
        hops: list[str] = []
        current = node_id
        for _ in range(len(self.nodes) + 1):
            origin = self.transitive.get(current, {}).get(kind)
            if origin is None:
                break
            info = self.nodes[current]
            if origin[0] == "direct":
                hops.append(
                    f"{info.dotted} calls {origin[1]}() ({info.path}:{origin[2]})"
                )
                break
            hops.append(
                f"{info.dotted} -> {self.dotted_name(origin[1])} "
                f"({info.path}:{origin[2]})"
            )
            current = origin[1]
        return hops

    def chain_summary(self, node_id: str, kind: str) -> str:
        """Compact ``a -> b -> primitive()`` form for messages."""
        names = [self.dotted_name(node_id)]
        current = node_id
        for _ in range(len(self.nodes) + 1):
            origin = self.transitive.get(current, {}).get(kind)
            if origin is None:
                break
            if origin[0] == "direct":
                names.append(f"{origin[1]}()")
                break
            current = origin[1]
            names.append(self.dotted_name(current))
        return " -> ".join(names)


def _local_direct_effects(
    summary: ModuleSummary, allowlisted: bool
) -> dict[str, list[DirectEffect]]:
    """Summarize-time effects per function, with the clock allowlist
    mask applied (blessed modules may read the clock)."""
    out: dict[str, list[DirectEffect]] = {}
    for qual, fn in summary.functions.items():
        effects = []
        for effect in fn.effects:
            if effect.kind == "clock" and allowlisted:
                continue
            effects.append((effect.kind, effect.detail, effect.line, "local"))
        out[qual] = effects
    return out


def build_graph(
    summaries: list[ModuleSummary],
    config: LintConfig = DEFAULT_LINT_CONFIG,
) -> ProgramGraph:
    """Assemble the program graph and run effect propagation to a fixed
    point.  Deterministic: iteration orders are sorted throughout."""
    graph = ProgramGraph(config)
    for summary in sorted(summaries, key=lambda s: s.path):
        graph.modules[summary.module] = summary
        graph.by_path[summary.path] = summary

    refs: set[str] = set()
    for summary in graph.modules.values():
        refs.update(summary.refs)
    graph.global_refs = frozenset(refs)

    # Nodes first (edges need every callee to exist).
    for module, summary in sorted(graph.modules.items()):
        for qual, fn in sorted(summary.functions.items()):
            node_id = f"{module}:{qual}"
            graph.nodes[node_id] = NodeInfo(
                node_id=node_id,
                module=module,
                qual=qual,
                path=summary.path,
                line=fn.line,
                public=fn.public,
            )

    # Edges plus graph-time direct effects (import-chain terminals).
    for module, summary in sorted(graph.modules.items()):
        allowlisted = graph.is_allowlisted_clock_module(summary.path)
        local_effects = _local_direct_effects(summary, allowlisted)
        for qual, fn in sorted(summary.functions.items()):
            node_id = f"{module}:{qual}"
            edges: list[Edge] = []
            effects = local_effects[qual]
            for call in fn.calls:
                resolved = graph.resolve_target(module, call)
                if resolved is None:
                    continue
                if resolved[0] == "func":
                    edges.append(Edge(node_id, resolved[1], call.line, call.ref))
                elif resolved[0] == "class":
                    init = f"{resolved[2]}.__init__"
                    init_id = f"{resolved[1]}:{init}"
                    if init_id in graph.nodes:
                        edges.append(Edge(node_id, init_id, call.line, call.ref))
                elif resolved[0] == "external":
                    path = resolved[1]
                    for kind, detail in (
                        ("rng", rng_effect(path)),
                        ("clock", clock_effect(path)),
                    ):
                        if detail is None:
                            continue
                        if kind == "clock" and allowlisted:
                            continue
                        effects.append((kind, detail, call.line, "cross"))
            unique = sorted(set(edges), key=lambda e: (e.callee, e.line, e.ref))
            graph.edges[node_id] = tuple(unique)
            graph.direct_effects[node_id] = tuple(
                sorted(set(effects), key=lambda e: (e[0], e[2], e[1]))
            )

    _propagate(graph)
    return graph


def _propagate(graph: ProgramGraph) -> None:
    """Fixed-point transitive effects, recording one origin per (node,
    kind).  First assignment in sorted order wins and is never replaced,
    so the chosen evidence chains are deterministic."""
    transitive: dict[str, dict[str, Origin]] = {}
    for node_id in sorted(graph.nodes):
        origins: dict[str, Origin] = {}
        for kind, detail, line, _provenance in graph.direct_effects.get(node_id, ()):
            if kind not in origins:
                origins[kind] = ("direct", detail, line)
        transitive[node_id] = origins

    changed = True
    while changed:
        changed = False
        for caller in sorted(graph.nodes):
            for edge in graph.edges.get(caller, ()):
                callee_info = graph.nodes.get(edge.callee)
                if callee_info is None:
                    continue
                callee_allowlisted = graph.is_allowlisted_clock_module(callee_info.path)
                for kind in sorted(transitive.get(edge.callee, ())):
                    if kind == "clock" and callee_allowlisted:
                        continue  # blessed clock modules don't taint callers
                    if kind not in transitive[caller]:
                        transitive[caller][kind] = ("call", edge.callee, edge.line)
                        changed = True
    graph.transitive = transitive
