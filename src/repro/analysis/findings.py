"""Finding: one diagnostic produced by a reprolint rule.

A finding is anchored to a file/line/column, but its *identity* for
baseline purposes is a content fingerprint: the rule id plus the
stripped source line it points at (plus an ordinal for repeated
identical lines in one file).  Editing unrelated parts of a file —
which shifts line numbers — therefore does not invalidate a baseline
entry; only changing the offending line itself does.
"""

from __future__ import annotations

import dataclasses
import hashlib

__all__ = ["Finding", "fingerprint_findings"]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic, sortable into the stable report order."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""
    end_line: int = 0
    fingerprint: str = ""
    #: Call-chain hops for whole-program findings: one string per hop,
    #: each carrying its own file:line (empty for per-file rules).
    evidence: tuple[str, ...] = ()

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def located(self) -> str:
        """``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"


def _digest(path: str, rule: str, snippet: str, ordinal: int) -> str:
    material = f"{path}::{rule}::{snippet}::{ordinal}".encode()
    return hashlib.sha256(material).hexdigest()[:16]


def fingerprint_findings(findings: list[Finding]) -> list[Finding]:
    """Return the findings sorted, each with its fingerprint assigned.

    The ordinal distinguishes several identical offending lines in the
    same file (e.g. three copies of ``x = time.time()``) so each can be
    baselined independently.
    """
    ordered = sorted(findings, key=lambda f: f.sort_key)
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for finding in ordered:
        key = (finding.path, finding.rule, finding.snippet)
        ordinal = seen.get(key, 0)
        seen[key] = ordinal + 1
        out.append(
            dataclasses.replace(
                finding,
                fingerprint=_digest(finding.path, finding.rule, finding.snippet, ordinal),
            )
        )
    return out
