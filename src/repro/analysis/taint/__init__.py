"""reprotaint: interprocedural secret-flow analysis (R017-R021).

PR 9 made the detector's security rest on key material — the deployment
secret, per-tenant HMAC keys, session nonces — and the paper's threat
model (ICDCS'20 §III) assumes the attacker reads *everything* the
verifier emits.  One careless ``print(payload)``, one ``tag ==
expected``, one nonce pickled into a pool payload quietly re-opens the
replay hole the commitment ledger closed.  This package machine-checks
secret hygiene the same way determinism (R001-R011) and concurrency
safety (R012-R016) already are:

* a config-independent per-function :class:`~.summary.TaintInfo`
  (value expressions of assignments, returns, calls, raises, asserts
  and ``==`` comparisons) collected at summarize time and cached with
  the module summaries;
* a :class:`~.model.TaintModel` that seeds taint from the configured
  sources (``[tool.reprolint.taint]``), runs a per-function dataflow
  plus an interprocedural return-level fixed point over the call
  graph, and reconstructs a ``file:line`` flow chain for every
  tainted value;
* five whole-program rules (:mod:`.rules`): R017 secret reaches an
  output sink, R018 secret in an exception/assert message, R019
  secret crosses the pickle boundary, R020 non-constant-time compare
  of tag/nonce material, R021 secret-bearing dataclass field without
  ``repr=False``.

Like :mod:`repro.analysis.async_`, the package root is deliberately
inert: ``graph.summarize`` imports :mod:`.summary` while :mod:`.rules`
imports the graph layer, and an empty root keeps that order
insensitive.
"""
