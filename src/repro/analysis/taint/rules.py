"""The five secret-flow rules (R017-R021).

All five run over the assembled program graph through the shared
:class:`~repro.analysis.taint.model.TaintModel` — one per-function
dataflow plus one interprocedural return fixed point feed every rule.
Findings carry the flow chain as evidence (``a reads secret-typed
'cfg.protocol_secret' (file:line) -> a assigns ... -> flows into
print()``), the same per-hop file:line idiom as R007-R016.

The lattice split matters to which rule fires where: secret-level
material (the deployment secret, tenant keys, session nonces, PRF
outputs) must never be emitted, pickled or repr'd — R017/R018/R019/
R021; tag-level material (digests, ack tags) is emit-safe but still
compare-sensitive, so R020 alone also covers it.  Test modules are skipped throughout —
test code does not ship and legitimately prints the synthetic secrets
it constructs.
"""

from __future__ import annotations

from ..findings import Finding
from ..rulebase import GraphRule, register_graph
from .model import SECRET_LEVEL, TAG_LEVEL, is_test_path, taint_model

__all__ = ["TAINT_RULE_IDS"]

#: The rule ids ``--no-taint`` switches off.
TAINT_RULE_IDS = frozenset({"R017", "R018", "R019", "R020", "R021"})


class _TaintRule(GraphRule):
    category = "taint"


@register_graph
class SecretToOutputSinkRule(_TaintRule):
    id = "R017"
    title = "key material reaches an output sink"
    rationale = """The paper's threat model assumes the attacker reads
    everything the verifier emits — logs, CLI text, JSON/SLO/BENCH reports,
    trace spans, metrics labels.  Key material (the deployment secret,
    tenant keys, session nonces, raw PRF output) in any of those hands an
    adaptive attacker the challenge schedule and re-opens the replay hole
    the commitment ledger closed.  Digest-truncated tags are emit-safe;
    emit those instead, or route the value through redact()."""
    example = 'print(f"payload {handshake_payload(nonce, sid)}")'

    def run(self, graph) -> list[Finding]:
        model = taint_model(graph)
        for node_id in model.node_ids():
            info = graph.nodes[node_id]
            env = model.env(node_id)
            for use in model.taint_info(node_id).calls:
                dotted = model.dotted_for(use, node_id)
                if model.policy.sink_kind(use, dotted) != "output":
                    continue
                value = model.expr_value(use.args, env, node_id)
                if value.level != SECRET_LEVEL:
                    continue
                sink = dotted or use.method
                self.report(
                    graph,
                    info.path,
                    use.line,
                    f"'{info.dotted}' sends key material to output sink "
                    f"'{sink}' — emit a digest-truncated tag or redact() "
                    "the value instead",
                    snippet=f"{use.method}(...)",
                    evidence=(
                        *value.chain,
                        f"flows into {sink}() ({info.path}:{use.line})",
                    ),
                )
        return self.findings


@register_graph
class SecretInMessageRule(_TaintRule):
    id = "R018"
    title = "key material in an exception or assert message"
    rationale = """Exception text escapes every containment the code has:
    it lands in tracebacks, service SLO reports, CI logs, and operator
    terminals, none of which are secret-scoped.  An assert message is worse
    — it only renders in the failure report.  Raise with the session id or
    a digest tag; never interpolate the secret itself."""
    example = 'raise ValueError(f"bad ack for key {tenant_key!r}")'

    def run(self, graph) -> list[Finding]:
        model = taint_model(graph)
        for node_id in model.node_ids():
            info = graph.nodes[node_id]
            env = model.env(node_id)
            for record in model.taint_info(node_id).messages:
                value = model.expr_value(record.value, env, node_id)
                if value.level != SECRET_LEVEL:
                    continue
                where = (
                    "exception message"
                    if record.kind == "raise"
                    else "assert message"
                )
                self.report(
                    graph,
                    info.path,
                    record.line,
                    f"'{info.dotted}' interpolates key material into an "
                    f"{where} — tracebacks and failure reports are not "
                    "secret-scoped; use the session id or a digest tag",
                    evidence=(
                        *value.chain,
                        f"flows into {where} ({info.path}:{record.line})",
                    ),
                )
        return self.findings


@register_graph
class SecretAcrossPickleRule(_TaintRule):
    id = "R019"
    title = "key material crosses the pickle boundary"
    rationale = """ExecutionEngine.map/map_batches payloads and shared-
    memory packs are pickled into worker processes: the bytes traverse
    pipes and /dev/shm segments that outlive the call and are readable by
    anything sharing the machine.  Workers that need challenge state
    should receive the derived schedule or a digest tag, not the key that
    derives every future session."""
    example = "engine.map(verify_worker, [(clip, tenant_key)])"

    def run(self, graph) -> list[Finding]:
        model = taint_model(graph)
        for node_id in model.node_ids():
            info = graph.nodes[node_id]
            env = model.env(node_id)
            for use in model.taint_info(node_id).calls:
                dotted = model.dotted_for(use, node_id)
                if model.policy.sink_kind(use, dotted) != "pickle":
                    continue
                value = model.expr_value(use.args, env, node_id)
                if value.level != SECRET_LEVEL:
                    continue
                sink = dotted or use.method
                self.report(
                    graph,
                    info.path,
                    use.line,
                    f"'{info.dotted}' ships key material across the pickle "
                    f"boundary via '{sink}' — send the derived schedule or "
                    "a digest tag to workers, never the key",
                    snippet=f"{use.method}(...)",
                    evidence=(
                        *value.chain,
                        f"pickled via {sink}() ({info.path}:{use.line})",
                    ),
                )
        return self.findings


@register_graph
class NonConstantTimeCompareRule(_TaintRule):
    id = "R020"
    title = "non-constant-time comparison of tag or key material"
    rationale = """``==`` short-circuits on the first differing byte, so
    response time leaks how much of a forged tag matched — a classic
    oracle that recovers an HMAC tag byte by byte over the network the
    protocol already assumes is hostile.  Compare tags, nonces and keys
    with hmac.compare_digest, which runs in constant time."""
    example = "if tag == expected_tag:  # use hmac.compare_digest"

    def run(self, graph) -> list[Finding]:
        model = taint_model(graph)
        for node_id in model.node_ids():
            info = graph.nodes[node_id]
            env = model.env(node_id)
            for record in model.taint_info(node_id).compares:
                value = model.expr_value(record.value, env, node_id)
                if value.level < TAG_LEVEL:
                    continue
                self.report(
                    graph,
                    info.path,
                    record.line,
                    f"'{info.dotted}' compares {value.level_name} material "
                    f"with '{record.op}' — short-circuit comparison leaks a "
                    "timing oracle; use hmac.compare_digest",
                    snippet=record.text,
                    evidence=(
                        *value.chain,
                        f"compared with '{record.op}' "
                        f"({info.path}:{record.line})",
                    ),
                )
        return self.findings


@register_graph
class SecretDataclassFieldRule(_TaintRule):
    id = "R021"
    title = "secret-bearing dataclass field without repr=False"
    rationale = """Dataclasses write every field into __repr__, and reprs
    leak through paths no dataflow can follow: error messages that format
    the config, debuggers, logging of whole objects, pytest assertion
    rewriting.  A field holding key material must opt out with
    field(repr=False) so the default rendering never contains it."""
    example = 'protocol_secret: str = "change-me"  # field(repr=False)'

    def run(self, graph) -> list[Finding]:
        model = taint_model(graph)
        for module in sorted(graph.modules):
            summary = graph.modules[module]
            if summary.error is not None or is_test_path(summary.path):
                continue
            for name in sorted(summary.classes):
                cls = summary.classes[name]
                for field in cls.fields:
                    if model.policy.name_level(field.name) != SECRET_LEVEL:
                        continue
                    if field.repr_hidden:
                        continue
                    self.report(
                        graph,
                        summary.path,
                        field.line,
                        f"dataclass field '{module}.{name}.{field.name}' "
                        "holds key material but is rendered by the default "
                        "__repr__ — declare it field(repr=False)",
                        snippet=field.name,
                        evidence=(
                            f"secret-typed field '{field.name}' declared on "
                            f"{name} ({summary.path}:{field.line})",
                        ),
                    )
        return self.findings
