"""Taint-aware additions to the per-function summary.

:func:`collect_taint_info` walks one function body and records, in a
JSON-serializable and *config-independent* form, the raw material the
secret-flow rules need.  Nothing here decides what is secret — that is
the :class:`~repro.analysis.taint.model.TaintModel`'s job at graph
time, against ``[tool.reprolint.taint]`` — so summaries stay stable in
the content-hash cache across policy changes:

* **value expressions** — every expression the dataflow cares about is
  flattened into a :class:`ValueExpr`: the names and attribute reads
  outside any call (:class:`Atom`), plus one :class:`CallUse` per call,
  each carrying its own receiver/argument ``ValueExpr`` so a sanitizer
  call can cut the taint of everything underneath it;
* **assignments** — ``x = expr`` (including tuple unpacking, ``+=``,
  annotated and ``for``-target forms) as name targets plus the value
  expression, the edges of the per-function dataflow;
* **returns** — what the function hands back, the edges of the
  interprocedural return-level fixed point;
* **calls** — candidate sink sites (print/logging/metrics/pickle are
  classified at graph time from the target, method and receiver text);
  only calls that could carry taint (non-empty receiver or argument
  expression) are kept;
* **raises / asserts** — exception-constructor arguments and assert
  messages, the R018 material;
* **compares** — ``==`` / ``!=`` sites with both sides' expressions,
  the R020 material.

The collector takes the target classifier as a callback (rather than
importing :mod:`..graph.summarize`) so the import edge between the
graph and taint layers points one way only — the same convention as
:mod:`repro.analysis.async_.summary`.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable

__all__ = [
    "Atom",
    "AssignRecord",
    "CallUse",
    "CompareRecord",
    "MessageRecord",
    "ReturnRecord",
    "TaintInfo",
    "ValueExpr",
    "collect_taint_info",
    "collect_dataclass_fields",
    "DataclassField",
    "EMPTY_TAINT_INFO",
]

#: Hard cap on recorded items per function; a generated megafunction
#: cannot blow up the summary cache.
_MAX_ITEMS = 200

#: Container methods whose argument taints the receiver name
#: (``out.append(secret)`` makes ``out`` secret).
_MUTATOR_METHODS = frozenset(
    {"append", "add", "extend", "insert", "update", "setdefault", "put"}
)


def _ct_from_dict(data: dict):
    from ..graph.summarize import CallTarget

    return CallTarget.from_dict(data)


@dataclasses.dataclass(frozen=True)
class Atom:
    """One taintable leaf read: a bare name or an attribute access.

    ``kind`` is ``name`` or ``attr``; ``ident`` the variable name or
    the final attribute segment (``config.protocol_secret`` records
    ``attr:protocol_secret``).  ``text`` is the spelled form, kept for
    flow-chain evidence only.
    """

    kind: str
    ident: str
    line: int
    text: str = ""

    def to_dict(self) -> dict:
        out: dict = {"k": self.kind, "id": self.ident, "ln": self.line}
        if self.text:
            out["tx"] = self.text
        return out

    @staticmethod
    def from_dict(data: dict) -> "Atom":
        return Atom(
            kind=data["k"],
            ident=data["id"],
            line=data["ln"],
            text=data.get("tx", ""),
        )


@dataclasses.dataclass(frozen=True)
class CallUse:
    """One call inside a value expression, with its own sub-expressions.

    ``target`` is the classified :class:`~repro.analysis.graph.
    summarize.CallTarget` when statically resolvable (None for builtins
    and methods on arbitrary objects); ``method`` the final callable
    segment (``print``, ``hex``, ``info``); ``receiver`` the lowercased
    receiver text for shape heuristics (``self.instrumentation``,
    ``logger``).  ``recv`` and ``args`` carry the receiver's and the
    merged positional/keyword arguments' value expressions — taint
    passes *through* an unknown call (``str(x)``, ``x.hex()``) but a
    sanitizer cut applies to everything inside.
    """

    target: object | None
    method: str
    receiver: str
    line: int
    recv: "ValueExpr"
    args: "ValueExpr"

    def to_dict(self) -> dict:
        out: dict = {"m": self.method, "ln": self.line}
        if self.target is not None:
            out["t"] = self.target.to_dict()
        if self.receiver:
            out["r"] = self.receiver
        if not self.recv.is_empty():
            out["rv"] = self.recv.to_dict()
        if not self.args.is_empty():
            out["a"] = self.args.to_dict()
        return out

    @staticmethod
    def from_dict(data: dict) -> "CallUse":
        return CallUse(
            target=_ct_from_dict(data["t"]) if data.get("t") else None,
            method=data["m"],
            receiver=data.get("r", ""),
            line=data["ln"],
            recv=ValueExpr.from_dict(data.get("rv", {})),
            args=ValueExpr.from_dict(data.get("a", {})),
        )


@dataclasses.dataclass(frozen=True)
class ValueExpr:
    """A flattened expression: loose atoms plus nested calls."""

    atoms: tuple[Atom, ...] = ()
    calls: tuple[CallUse, ...] = ()

    def is_empty(self) -> bool:
        return not self.atoms and not self.calls

    def to_dict(self) -> dict:
        out: dict = {}
        if self.atoms:
            out["at"] = [a.to_dict() for a in self.atoms]
        if self.calls:
            out["ca"] = [c.to_dict() for c in self.calls]
        return out

    @staticmethod
    def from_dict(data: dict) -> "ValueExpr":
        return ValueExpr(
            atoms=tuple(Atom.from_dict(d) for d in data.get("at", ())),
            calls=tuple(CallUse.from_dict(d) for d in data.get("ca", ())),
        )


EMPTY_VALUE = ValueExpr()


@dataclasses.dataclass(frozen=True)
class AssignRecord:
    """``targets = value``: name targets only (attribute targets are
    covered by the name-based source policy, not the local dataflow)."""

    targets: tuple[str, ...]
    value: ValueExpr
    line: int

    def to_dict(self) -> dict:
        return {"tg": list(self.targets), "v": self.value.to_dict(), "ln": self.line}

    @staticmethod
    def from_dict(data: dict) -> "AssignRecord":
        return AssignRecord(
            targets=tuple(data["tg"]),
            value=ValueExpr.from_dict(data["v"]),
            line=data["ln"],
        )


@dataclasses.dataclass(frozen=True)
class ReturnRecord:
    value: ValueExpr
    line: int

    def to_dict(self) -> dict:
        return {"v": self.value.to_dict(), "ln": self.line}

    @staticmethod
    def from_dict(data: dict) -> "ReturnRecord":
        return ReturnRecord(value=ValueExpr.from_dict(data["v"]), line=data["ln"])


@dataclasses.dataclass(frozen=True)
class MessageRecord:
    """R018 material: ``kind`` is ``raise`` (exception-constructor
    arguments) or ``assert`` (the assert message expression)."""

    kind: str
    value: ValueExpr
    line: int

    def to_dict(self) -> dict:
        return {"k": self.kind, "v": self.value.to_dict(), "ln": self.line}

    @staticmethod
    def from_dict(data: dict) -> "MessageRecord":
        return MessageRecord(
            kind=data["k"], value=ValueExpr.from_dict(data["v"]), line=data["ln"]
        )


@dataclasses.dataclass(frozen=True)
class CompareRecord:
    """One ``==`` / ``!=`` site; ``text`` is the unparsed comparison
    (used as the finding snippet, stable under line moves)."""

    op: str
    value: ValueExpr
    line: int
    text: str = ""

    def to_dict(self) -> dict:
        out: dict = {"op": self.op, "v": self.value.to_dict(), "ln": self.line}
        if self.text:
            out["tx"] = self.text
        return out

    @staticmethod
    def from_dict(data: dict) -> "CompareRecord":
        return CompareRecord(
            op=data["op"],
            value=ValueExpr.from_dict(data["v"]),
            line=data["ln"],
            text=data.get("tx", ""),
        )


@dataclasses.dataclass(frozen=True)
class TaintInfo:
    """Everything the secret-flow rules need from one function."""

    params: tuple[str, ...] = ()
    assigns: tuple[AssignRecord, ...] = ()
    returns: tuple[ReturnRecord, ...] = ()
    calls: tuple[CallUse, ...] = ()
    messages: tuple[MessageRecord, ...] = ()
    compares: tuple[CompareRecord, ...] = ()

    def is_empty(self) -> bool:
        return self == _EMPTY

    def to_dict(self) -> dict:
        out: dict = {}
        if self.params:
            out["params"] = list(self.params)
        for key, items in (
            ("assigns", self.assigns),
            ("returns", self.returns),
            ("calls", self.calls),
            ("messages", self.messages),
            ("compares", self.compares),
        ):
            if items:
                out[key] = [item.to_dict() for item in items]
        return out

    @staticmethod
    def from_dict(data: dict) -> "TaintInfo":
        if not data:
            return _EMPTY
        return TaintInfo(
            params=tuple(data.get("params", ())),
            assigns=tuple(AssignRecord.from_dict(d) for d in data.get("assigns", ())),
            returns=tuple(ReturnRecord.from_dict(d) for d in data.get("returns", ())),
            calls=tuple(CallUse.from_dict(d) for d in data.get("calls", ())),
            messages=tuple(
                MessageRecord.from_dict(d) for d in data.get("messages", ())
            ),
            compares=tuple(
                CompareRecord.from_dict(d) for d in data.get("compares", ())
            ),
        )


_EMPTY = TaintInfo()

EMPTY_TAINT_INFO = _EMPTY


@dataclasses.dataclass(frozen=True)
class DataclassField:
    """One annotated field of a ``@dataclass`` body (R021 material)."""

    name: str
    line: int
    repr_hidden: bool  # field(..., repr=False)

    def to_dict(self) -> dict:
        return {"name": self.name, "line": self.line, "repr_hidden": self.repr_hidden}

    @staticmethod
    def from_dict(data: dict) -> "DataclassField":
        return DataclassField(
            name=data["name"], line=data["line"], repr_hidden=data["repr_hidden"]
        )


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------


def _attr_text(node: ast.Attribute) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return node.attr


def _method_name(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _receiver_text(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        try:
            return ast.unparse(func.value).lower()
        except Exception:  # pragma: no cover
            return ""
    return ""


class _Collector:
    def __init__(
        self,
        classify: Callable[[ast.expr], object | None],
        cls_name: str | None,
    ) -> None:
        self.classify = classify
        self.cls_name = cls_name
        self.assigns: list[AssignRecord] = []
        self.returns: list[ReturnRecord] = []
        self.calls: list[CallUse] = []
        self.messages: list[MessageRecord] = []
        self.compares: list[CompareRecord] = []

    # -- value expressions ----------------------------------------------

    def value_expr(self, *exprs: ast.expr | None) -> ValueExpr:
        atoms: list[Atom] = []
        calls: list[CallUse] = []
        stack: list[ast.AST] = [e for e in exprs if e is not None]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                calls.append(self.call_use(node))
                continue  # the CallUse owns everything underneath
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                atoms.append(Atom("name", node.id, node.lineno))
            elif isinstance(node, ast.Attribute):
                # Field-sensitive: a plain dotted read is typed by its
                # attribute names alone (sched.times is public even when
                # sched holds a nonce; cfg.protocol_secret is secret by
                # name).  The base name is NOT recorded — only a
                # non-trivial base (call, subscript) keeps being walked.
                atoms.append(
                    Atom("attr", node.attr, node.lineno, _attr_text(node))
                )
                base = node.value
                while isinstance(base, ast.Attribute):
                    atoms.append(
                        Atom("attr", base.attr, base.lineno, _attr_text(base))
                    )
                    base = base.value
                if not isinstance(base, ast.Name):
                    stack.append(base)
                continue
            stack.extend(ast.iter_child_nodes(node))
        if not atoms and not calls:
            return EMPTY_VALUE
        atoms.sort(key=lambda a: (a.line, a.ident))
        calls.sort(key=lambda c: (c.line, c.method))
        return ValueExpr(atoms=tuple(atoms), calls=tuple(calls))

    def call_use(self, node: ast.Call) -> CallUse:
        func = node.func
        recv = (
            self.value_expr(func.value)
            if isinstance(func, ast.Attribute)
            else EMPTY_VALUE
        )
        arg_exprs: list[ast.expr] = []
        for arg in node.args:
            arg_exprs.append(arg.value if isinstance(arg, ast.Starred) else arg)
        for keyword in node.keywords:
            arg_exprs.append(keyword.value)
        return CallUse(
            target=self.classify(func),
            method=_method_name(func),
            receiver=_receiver_text(func),
            line=node.lineno,
            recv=recv,
            args=self.value_expr(*arg_exprs),
        )

    # -- statements ------------------------------------------------------

    @staticmethod
    def _name_targets(target: ast.expr) -> list[str]:
        out: list[str] = []
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                out.append(sub.id)
            elif isinstance(sub, ast.Subscript) and isinstance(
                sub.value, ast.Name
            ):
                # d["k"] = secret taints d itself.
                out.append(sub.value.id)
        return out

    def _visit_assign(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is None:
                return
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets, value = [node.target], node.iter
        else:
            return
        names: list[str] = []
        for target in targets:
            names.extend(self._name_targets(target))
        if not names:
            return
        expr = self.value_expr(value)
        if isinstance(node, ast.AugAssign):
            # x += secret keeps x's own taint too; the read is implicit.
            expr = ValueExpr(
                atoms=tuple(
                    sorted(
                        (*expr.atoms, Atom("name", names[0], node.lineno)),
                        key=lambda a: (a.line, a.ident),
                    )
                ),
                calls=expr.calls,
            )
        if expr.is_empty():
            return
        self.assigns.append(AssignRecord(tuple(names), expr, node.lineno))

    def _visit_return(self, node: ast.Return) -> None:
        if node.value is None:
            return
        expr = self.value_expr(node.value)
        if not expr.is_empty():
            self.returns.append(ReturnRecord(expr, node.lineno))

    def _visit_call_stmt(self, node: ast.Call) -> None:
        use = self.call_use(node)
        if use.recv.is_empty() and use.args.is_empty():
            return  # literal-only call: cannot carry taint into a sink
        self.calls.append(use)
        # out.append(secret) taints out — container mutators are the
        # only way list-building loops feed the return dataflow.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.attr in _MUTATOR_METHODS
            and not use.args.is_empty()
        ):
            self.assigns.append(
                AssignRecord((func.value.id,), use.args, node.lineno)
            )

    def _visit_raise(self, node: ast.Raise) -> None:
        if node.exc is None:
            return
        exc = node.exc
        expr = (
            self.value_expr(*exc.args, *[k.value for k in exc.keywords])
            if isinstance(exc, ast.Call)
            else self.value_expr(exc)
        )
        if not expr.is_empty():
            self.messages.append(MessageRecord("raise", expr, node.lineno))

    def _visit_assert(self, node: ast.Assert) -> None:
        if node.msg is None:
            return
        expr = self.value_expr(node.msg)
        if not expr.is_empty():
            self.messages.append(MessageRecord("assert", expr, node.lineno))

    def _visit_compare(self, node: ast.Compare) -> None:
        ops = [op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))]
        if not ops:
            return
        expr = self.value_expr(node.left, *node.comparators)
        if expr.is_empty():
            return
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover
            text = ""
        op = "==" if isinstance(ops[0], ast.Eq) else "!="
        self.compares.append(CompareRecord(op, expr, node.lineno, text[:120]))

    # -- the walk --------------------------------------------------------

    def run(
        self, func_node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> TaintInfo:
        for node in ast.walk(func_node):
            if isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.For, ast.AsyncFor)
            ):
                self._visit_assign(node)
            elif isinstance(node, ast.Return):
                self._visit_return(node)
            elif isinstance(node, ast.Call):
                self._visit_call_stmt(node)
            elif isinstance(node, ast.Raise):
                self._visit_raise(node)
            elif isinstance(node, ast.Assert):
                self._visit_assert(node)
            elif isinstance(node, ast.Compare):
                self._visit_compare(node)
        args = func_node.args
        params = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.arg not in ("self", "cls")
        ]
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra.arg)
        info = TaintInfo(
            params=tuple(params),
            assigns=tuple(sorted(self.assigns, key=lambda r: r.line)[:_MAX_ITEMS]),
            returns=tuple(sorted(self.returns, key=lambda r: r.line)[:_MAX_ITEMS]),
            calls=tuple(
                sorted(self.calls, key=lambda c: (c.line, c.method))[:_MAX_ITEMS]
            ),
            messages=tuple(
                sorted(self.messages, key=lambda m: m.line)[:_MAX_ITEMS]
            ),
            compares=tuple(
                sorted(self.compares, key=lambda c: c.line)[:_MAX_ITEMS]
            ),
        )
        # Functions that move no data worth tracking collapse to the
        # shared empty instance so FunctionSummary.to_dict omits them.
        if not (
            info.assigns
            or info.returns
            or info.calls
            or info.messages
            or info.compares
        ):
            return _EMPTY
        return info


def collect_taint_info(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    classify: Callable[[ast.expr], object | None],
    cls_name: str | None,
) -> TaintInfo:
    """Collect the secret-flow summary of one function body."""
    return _Collector(classify, cls_name).run(func_node)


# ----------------------------------------------------------------------
# Dataclass fields (R021 material, recorded on ClassSummary)
# ----------------------------------------------------------------------


def _is_dataclass_decorator(node: ast.expr) -> bool:
    expr = node.func if isinstance(node, ast.Call) else node
    if isinstance(expr, ast.Attribute):
        return expr.attr == "dataclass"
    return isinstance(expr, ast.Name) and expr.id == "dataclass"


def _field_hides_repr(value: ast.expr | None) -> bool:
    """True for ``field(..., repr=False)`` (any ``*field`` callable)."""
    if not isinstance(value, ast.Call):
        return False
    if _method_name(value.func) != "field":
        return False
    for keyword in value.keywords:
        if keyword.arg == "repr" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


def collect_dataclass_fields(
    node: ast.ClassDef,
) -> tuple[DataclassField, ...]:
    """Annotated fields of a ``@dataclass`` class body (empty for
    ordinary classes)."""
    if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
        return ()
    fields: list[DataclassField] = []
    for sub in node.body:
        if not isinstance(sub, ast.AnnAssign) or not isinstance(
            sub.target, ast.Name
        ):
            continue
        fields.append(
            DataclassField(
                name=sub.target.id,
                line=sub.lineno,
                repr_hidden=_field_hides_repr(sub.value),
            )
        )
    return tuple(fields)
