"""The secret-flow model: per-function dataflow + return fixed point.

One :class:`TaintModel` is built per program graph (memoized on the
graph object, like the concurrency model) and feeds all five taint
rules.  It evaluates the cached :class:`~.summary.TaintInfo` records
against the ``[tool.reprolint.taint]`` policy:

* every identifier is typed by name through
  :meth:`TaintPolicy.name_level` (``protocol_secret`` → secret,
  ``ack_tag`` → tag) — the lattice is ``clean < tag < secret``, where
  tag-level values (digests, ack tags) are *emit-safe but
  compare-sensitive*: printing one is fine, ``==`` on one is R020;
* a per-function dataflow pushes levels through assignments to a local
  fixed point (loops converge because levels only rise);
* calls follow the precedence **redactor → source → sanitizer →
  pass-through**: a listed redactor clears to clean, a listed source
  (the PRF hierarchy) returns secret, a sanitizer caps its inputs at
  tag, and everything else — including resolved project calls, whose
  interprocedural return level is folded in — passes the maximum of
  its receiver and argument levels through;
* return levels iterate to a global fixed point over the call graph so
  ``key = self._derive(); print(key)`` is caught even when the
  derivation lives three modules away.

The level constants are deliberately named ``*_LEVEL`` — a module
constant literally called ``SECRET`` would be typed secret by the
analyzer's own name policy, and the pass lints this tree too.

Every non-clean value carries a **flow chain**: one ``file:line`` hop
per step from the source read to the value under inspection, so a
finding shows *how* the secret got to the sink, not just where it
landed.  Chains are deterministic — atoms and calls are evaluated in
sorted order and a level tie never replaces an existing chain.

Test modules are excluded from the model entirely: test code does not
ship, and tests legitimately print, compare and pickle the synthetic
secrets they construct.
"""

from __future__ import annotations

import dataclasses
from pathlib import PurePath

from ..config import TaintConfig
from .summary import CallUse, ValueExpr

__all__ = [
    "CLEAN_LEVEL",
    "TAG_LEVEL",
    "SECRET_LEVEL",
    "TaintPolicy",
    "TaintValue",
    "TaintModel",
    "taint_model",
    "is_test_path",
]

CLEAN_LEVEL = 0
TAG_LEVEL = 1
SECRET_LEVEL = 2

_LEVEL_NAMES = {CLEAN_LEVEL: "clean", TAG_LEVEL: "tag", SECRET_LEVEL: "secret"}

#: Flow chains are truncated (head + tail) beyond this many hops.
_MAX_CHAIN = 8
#: Local dataflow pass bound; levels only rise, so convergence is fast.
_MAX_LOCAL_PASSES = 10
#: Interprocedural return fixed-point bound (call-graph diameter).
_MAX_GLOBAL_ROUNDS = 30


def is_test_path(path: str) -> bool:
    """True for modules whose findings the taint rules skip: test code
    does not ship and legitimately handles synthetic secrets."""
    parts = PurePath(path).parts
    return "tests" in parts or PurePath(path).name.startswith("test_")


@dataclasses.dataclass(frozen=True)
class TaintValue:
    """A lattice level plus the ``file:line`` flow chain that set it."""

    level: int
    chain: tuple[str, ...] = ()

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES[self.level]


CLEAN_VALUE = TaintValue(CLEAN_LEVEL)


def _join(current: TaintValue, candidate: TaintValue) -> TaintValue:
    """Lattice join; on a tie the existing chain wins (determinism)."""
    return candidate if candidate.level > current.level else current


def _extend(chain: tuple[str, ...], hop: str) -> tuple[str, ...]:
    if hop in chain:
        return chain  # cycles in the local dataflow repeat hops
    if len(chain) >= _MAX_CHAIN:
        return (*chain[: _MAX_CHAIN - 2], "...", hop)
    return (*chain, hop)


class TaintPolicy:
    """The configured source/sink/sanitizer matchers."""

    def __init__(self, config: TaintConfig) -> None:
        self.config = config

    # -- identifiers ----------------------------------------------------

    @staticmethod
    def _name_matches(ident: str, entries: tuple[str, ...]) -> bool:
        norm = ident.strip("_").lower()
        return any(
            norm == entry or norm.endswith("_" + entry) for entry in entries
        )

    def name_level(self, ident: str) -> int:
        if self._name_matches(ident, self.config.source_attrs):
            return SECRET_LEVEL
        if self._name_matches(ident, self.config.tag_names):
            return TAG_LEVEL
        return CLEAN_LEVEL

    # -- calls ----------------------------------------------------------

    @staticmethod
    def _match(entries: tuple[str, ...], use: CallUse, dotted: str | None) -> bool:
        for entry in entries:
            if "@" in entry:
                method, _, recv = entry.partition("@")
                if use.method == method and (
                    recv in use.receiver if recv else bool(use.receiver)
                ):
                    return True
            elif "." in entry:
                if dotted is None:
                    continue
                if entry.endswith("."):
                    if dotted.startswith(entry):
                        return True
                elif dotted == entry or dotted.endswith("." + entry):
                    return True
            elif use.method == entry:
                return True
        return False

    def is_redactor(self, use: CallUse, dotted: str | None) -> bool:
        return self._match(self.config.redactors, use, dotted)

    def is_source(self, use: CallUse, dotted: str | None) -> bool:
        return self._match(self.config.source_returns, use, dotted)

    def is_sanitizer(self, use: CallUse, dotted: str | None) -> bool:
        return self._match(self.config.sanitizers, use, dotted)

    def sink_kind(self, use: CallUse, dotted: str | None) -> str | None:
        if self._match(self.config.output_sinks, use, dotted):
            return "output"
        if self._match(self.config.pickle_sinks, use, dotted):
            return "pickle"
        return None


class TaintModel:
    """Dataflow results for every non-test function in the graph."""

    def __init__(self, graph) -> None:  # graph: ProgramGraph
        self.graph = graph
        self.policy = TaintPolicy(graph.config.taint)
        #: node_id -> return-level TaintValue (interprocedural table).
        self.returns: dict[str, TaintValue] = {}
        #: node_id -> local name -> TaintValue (final environments).
        self.envs: dict[str, dict[str, TaintValue]] = {}
        self._node_ids = [
            node_id
            for node_id in sorted(graph.nodes)
            if not is_test_path(graph.nodes[node_id].path)
        ]
        self._fixpoint()

    # -- construction ---------------------------------------------------

    def _taint_info(self, node_id: str):
        info = self.graph.nodes[node_id]
        summary = self.graph.modules[info.module]
        return summary.functions[info.qual].taint_info

    def _fixpoint(self) -> None:
        self.returns = {node_id: CLEAN_VALUE for node_id in self._node_ids}
        for _ in range(_MAX_GLOBAL_ROUNDS):
            changed = False
            for node_id in self._node_ids:
                env = self._function_env(node_id)
                value = CLEAN_VALUE
                node = self.graph.nodes[node_id]
                for record in self._taint_info(node_id).returns:
                    returned = self.expr_value(record.value, env, node_id)
                    if returned.level > value.level:
                        value = TaintValue(
                            returned.level,
                            _extend(
                                returned.chain,
                                f"{node.dotted} returns {returned.level_name} "
                                f"material ({node.path}:{record.line})",
                            ),
                        )
                if value.level > self.returns[node_id].level:
                    self.returns[node_id] = value
                    changed = True
            if not changed:
                break
        self.envs = {
            node_id: self._function_env(node_id) for node_id in self._node_ids
        }

    def _function_env(self, node_id: str) -> dict[str, TaintValue]:
        info = self.graph.nodes[node_id]
        taint = self._taint_info(node_id)
        env: dict[str, TaintValue] = {}
        for param in taint.params:
            level = self.policy.name_level(param)
            if level > CLEAN_LEVEL:
                env[param] = TaintValue(
                    level,
                    (
                        f"{info.dotted} takes {_LEVEL_NAMES[level]}-typed "
                        f"parameter '{param}' ({info.path}:{info.line})",
                    ),
                )
        for _ in range(_MAX_LOCAL_PASSES):
            changed = False
            for record in taint.assigns:
                value = self.expr_value(record.value, env, node_id)
                if value.level == CLEAN_LEVEL:
                    continue
                hop = (
                    f"{info.dotted} assigns {value.level_name} material to "
                    f"'{', '.join(record.targets)}' ({info.path}:{record.line})"
                )
                candidate = TaintValue(value.level, _extend(value.chain, hop))
                for target in record.targets:
                    current = env.get(target, CLEAN_VALUE)
                    if candidate.level > current.level:
                        env[target] = candidate
                        changed = True
            if not changed:
                break
        return env

    # -- evaluation -----------------------------------------------------

    def dotted_for(self, use: CallUse, node_id: str) -> str | None:
        """The resolved dotted name of a call's target, when known."""
        target = use.target
        if target is None:
            return None
        if target.kind == "dotted":
            return target.target
        module = self.graph.nodes[node_id].module
        resolved = self.graph.resolve_target(module, target)
        if resolved is None:
            return None
        if resolved[0] == "func":
            return self.graph.nodes[resolved[1]].dotted
        if resolved[0] == "class":
            return f"{resolved[1]}.{resolved[2]}"
        return ".".join(resolved[1])

    def expr_value(
        self, expr: ValueExpr, env: dict[str, TaintValue], node_id: str
    ) -> TaintValue:
        info = self.graph.nodes[node_id]
        value = CLEAN_VALUE
        for atom in expr.atoms:
            level = self.policy.name_level(atom.ident)
            if atom.kind == "name":
                local = env.get(atom.ident, CLEAN_VALUE)
                if local.level >= level and local.level > value.level:
                    value = local
                    continue
            if level > value.level:
                value = TaintValue(
                    level,
                    (
                        f"{info.dotted} reads {_LEVEL_NAMES[level]}-typed "
                        f"'{atom.text or atom.ident}' ({info.path}:{atom.line})",
                    ),
                )
        for use in expr.calls:
            value = _join(value, self.call_value(use, env, node_id))
        return value

    def call_value(
        self, use: CallUse, env: dict[str, TaintValue], node_id: str
    ) -> TaintValue:
        info = self.graph.nodes[node_id]
        dotted = self.dotted_for(use, node_id)
        if self.policy.is_redactor(use, dotted):
            return CLEAN_VALUE
        if self.policy.is_source(use, dotted):
            return TaintValue(
                SECRET_LEVEL,
                (
                    f"{info.dotted} derives key material from "
                    f"{dotted or use.method}() ({info.path}:{use.line})",
                ),
            )
        inner = _join(
            self.expr_value(use.recv, env, node_id),
            self.expr_value(use.args, env, node_id),
        )
        if self.policy.is_sanitizer(use, dotted):
            if inner.level <= TAG_LEVEL:
                return inner
            return TaintValue(
                TAG_LEVEL,
                _extend(
                    inner.chain,
                    f"{info.dotted} sanitizes through "
                    f"{dotted or use.method}() ({info.path}:{use.line})",
                ),
            )
        if use.target is not None:
            resolved = self.graph.resolve_target(info.module, use.target)
            if resolved is not None and resolved[0] == "func":
                # A resolved project call answers with its interprocedural
                # return level, NOT an argument pass-through: verify_ack(key,
                # nonce, tag) returns a bool, and treating every consumer of
                # a secret as secret-producing would drown the rules.  The
                # callee's own dataflow (name-typed parameters, sources it
                # reads) is what its return level is built from.
                callee = self.returns.get(resolved[1])
                if callee is None:
                    return inner  # test-only or unanalyzed callee
                if callee.level == CLEAN_LEVEL:
                    return CLEAN_VALUE
                return TaintValue(
                    callee.level,
                    _extend(
                        callee.chain,
                        f"{info.dotted} -> "
                        f"{self.graph.nodes[resolved[1]].dotted} "
                        f"({info.path}:{use.line})",
                    ),
                )
        return inner

    # -- rule-facing queries --------------------------------------------

    def node_ids(self) -> list[str]:
        """Every analyzed (non-test) function, sorted."""
        return self._node_ids

    def env(self, node_id: str) -> dict[str, TaintValue]:
        return self.envs.get(node_id, {})

    def taint_info(self, node_id: str):
        return self._taint_info(node_id)


def taint_model(graph) -> TaintModel:
    """The memoized :class:`TaintModel` for ``graph``."""
    model = getattr(graph, "_taint_model", None)
    if model is None:
        model = TaintModel(graph)
        graph._taint_model = model
    return model
