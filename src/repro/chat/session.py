"""The full video-chat loop of the paper's Fig. 4.

:class:`VideoChatSession` wires a verifier endpoint (Alice) and a prover
endpoint (Bob — genuine or attacker) through two :class:`MediaLink`\\ s and
drives the simulation clock.  The output is a :class:`SessionRecord`
holding exactly what Alice's detector needs: the video she transmitted and
the video she received, both on her own clock.

A warm-up period runs before recording starts so that auto-exposure loops
converge and the first frames propagate through both network paths (a
real call has been running before anyone triggers a liveness check).
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..net.link import MediaLink
from ..obs.instrument import Instrumentation
from ..video.frame import Frame
from ..video.stream import VideoStream
from .endpoints import ProverEndpoint, VerifierEndpoint

__all__ = ["SessionRecord", "VideoChatSession"]


@dataclasses.dataclass
class SessionRecord:
    """Everything the verifier side observed during a run."""

    transmitted: VideoStream
    received: VideoStream
    fps: float
    stats: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return len(self.transmitted) / self.fps if self.fps > 0 else 0.0


class VideoChatSession:
    """Two endpoints, two media links, one clock.

    Parameters
    ----------
    verifier:
        Alice's endpoint (produces the transmitted video).
    prover:
        The untrusted side — any :class:`ProverEndpoint`.
    uplink:
        Alice -> prover media path (fills the prover's screen).
    downlink:
        Prover -> Alice media path (the received video).
    fps:
        Simulation tick rate; also the capture rate of both cameras.
    warmup_s:
        Time simulated before recording begins.
    instrumentation:
        Optional observability handle: ``chat.session`` span around the
        whole run, tick/freeze counters under ``chat_*``.
    """

    def __init__(
        self,
        verifier: VerifierEndpoint,
        prover: ProverEndpoint,
        uplink: MediaLink | None = None,
        downlink: MediaLink | None = None,
        fps: float = 10.0,
        warmup_s: float = 2.0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if fps <= 0:
            raise ValueError("fps must be positive")
        if warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        self.verifier = verifier
        self.prover = prover
        self.uplink = uplink or MediaLink()
        self.downlink = downlink or MediaLink()
        self.fps = fps
        self.warmup_s = warmup_s
        self.instrumentation = Instrumentation.ensure(instrumentation)

    def run(self, duration_s: float) -> SessionRecord:
        """Simulate ``duration_s`` seconds of chat (after warm-up)."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        with self.instrumentation.span(
            "chat.session", stage="simulate", duration_s=duration_s
        ):
            record = self._run(duration_s)
        self.instrumentation.count("chat_ticks_total", len(record.transmitted))
        self.instrumentation.count(
            "chat_frozen_ticks_total", record.stats["frozen_ticks"]
        )
        return record

    def _run(self, duration_s: float) -> SessionRecord:
        dt = 1.0 / self.fps
        total_ticks = int(round((self.warmup_s + duration_s) * self.fps))
        warmup_ticks = int(round(self.warmup_s * self.fps))

        transmitted = VideoStream(fps=self.fps)
        received = VideoStream(fps=self.fps)
        displayed_at_prover: Frame | None = None
        latest_received: Frame | None = None
        frozen_ticks = 0

        for tick in range(total_ticks):
            t = tick * dt

            # Step 1-2: Alice captures and sends her frame.
            alice_frame = self.verifier.produce_frame(t)
            self.uplink.send(alice_frame)

            # The prover's chat software plays out the newest frame.
            arrived = self.uplink.receive(t)
            if arrived is not None:
                displayed_at_prover = arrived

            # Step 3: the prover produces its frame (genuine reflection or
            # forged content) and sends it back.
            prover_frame = self.prover.produce_frame(t, displayed_at_prover)
            self.downlink.send(prover_frame)

            # Step 4: Alice's playout, with freeze concealment on loss.
            arrived_back = self.downlink.receive(t)
            fresh = arrived_back is not None
            if fresh:
                latest_received = arrived_back

            if tick >= warmup_ticks:
                transmitted.append(alice_frame)
                if latest_received is None:
                    # Nothing has ever arrived (extreme loss): conceal
                    # with a black frame of the prover's size.
                    concealed = Frame(
                        pixels=prover_frame.pixels * 0.0,
                        timestamp=t,
                        metadata={"concealed": True},
                    )
                    received.append(concealed)
                    frozen_ticks += 1
                else:
                    received.append(
                        Frame(
                            pixels=latest_received.pixels,
                            timestamp=t,
                            metadata=dict(latest_received.metadata, fresh=fresh),
                        )
                    )
                    if not fresh:
                        frozen_ticks += 1

        stats = {
            "uplink_loss_rate": self.uplink.channel.stats.loss_rate,
            "downlink_loss_rate": self.downlink.channel.stats.loss_rate,
            "uplink_lost_frames": self.uplink.jitter_buffer.stats.lost_frames,
            "downlink_lost_frames": self.downlink.jitter_buffer.stats.lost_frames,
            "frozen_ticks": frozen_ticks,
            "round_trip_delay_s": self.uplink.one_way_delay_s + self.downlink.one_way_delay_s,
        }
        return SessionRecord(
            transmitted=transmitted,
            received=received,
            fps=self.fps,
            stats=stats,
        )
