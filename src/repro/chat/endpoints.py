"""Chat endpoints: the verifier (Alice) and the genuine prover (Bob).

Step numbering follows the paper's Fig. 4:

1. Alice records her own facial video — her camera's metering spot is the
   *challenge source*: by touching the screen she re-points it between
   bright and dark zones, swinging auto-exposure and thus the luminance
   of her outgoing video (Sec. II-B).
2. The video travels to Bob and fills his screen, so Bob's screen light
   tracks Alice's video luminance.
3. Bob's camera records his face, which reflects that screen light
   (Von Kries, Sec. II-C) on top of his ambient light.
4. Bob's video travels back; Alice now holds both luminance signals.

Any object with a ``produce_frame(t, displayed)`` method can sit in Bob's
chair — the attack module provides hostile implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

if TYPE_CHECKING:
    from collections.abc import Sequence

    from ..core.challenge import ChallengeScheduler
    from ..protocol.schedule import DerivedSchedule

from ..camera.camera import Camera
from ..camera.exposure import AutoExposureController
from ..camera.metering import LightMeter, MeteringMode
from ..camera.sensor import ImageSensor
from ..screen.display import DELL_27_LED, ScreenSpec
from ..screen.illumination import AmbientLight, screen_illuminance
from ..video.frame import Frame
from ..vision.expression import ExpressionTrack
from ..vision.face_model import FaceModel
from ..vision.renderer import FaceRenderer
from ..video.luminance import frame_mean_luminance

__all__ = [
    "ProverEndpoint",
    "VerifierEndpoint",
    "GenuineProverEndpoint",
    "MeteringBehavior",
    "ScheduledMeteringBehavior",
    "DerivedMeteringBehavior",
]


class ProverEndpoint(Protocol):
    """Anything that can occupy the untrusted (Bob) side of the chat."""

    def produce_frame(self, t: float, displayed: Frame | None) -> Frame:
        """Produce the frame the endpoint feeds into the chat software at
        time ``t``, given the frame currently shown on its screen."""
        ...


class MeteringBehavior:
    """Alice's challenge schedule: seeded screen touches re-pointing the
    metering spot among the scene's bright zone, dark zone, and her face.

    Gaps between touches are drawn uniformly from ``gap_range_s``; each
    touch moves the spot to a zone different from the current one, which
    guarantees every touch actually changes the metered level (a
    *significant* luminance change, in the paper's vocabulary).

    The default gap range keeps successive touches at least ~4.5 s apart:
    the Sec. V smoothing chain (RMS window 30 + Savitzky-Golay 31 +
    moving average 10, all at 10 Hz) merges variance bumps closer than
    roughly 4 s into a single peak, so closer challenges would be
    *undercounted* on the transmitted side and mis-matched on the
    received side.
    """

    def __init__(
        self,
        bright_spot: tuple[float, float],
        dark_spot: tuple[float, float],
        face_spot: tuple[float, float] = (0.5, 0.45),
        gap_range_s: tuple[float, float] = (4.5, 7.5),
        duration_s: float = 600.0,
        seed: int = 0,
    ) -> None:
        low, high = gap_range_s
        if not 0 < low <= high:
            raise ValueError("gap_range_s must satisfy 0 < low <= high")
        rng = np.random.default_rng(seed)
        # Touches alternate strictly between the bright and dark zones:
        # those two levels differ by several stops, so *every* challenge
        # is a significant change on the transmitted side (prominence
        # above the screen-signal gate of 10).  Mixing in mid-level zones
        # (the face) produces challenges big enough to register in the
        # sensitive face-reflection signal but too small for the screen
        # signal's gate — systematically unmatched changes that hurt the
        # legitimate user.
        spots = [bright_spot, dark_spot]
        self.events: list[tuple[float, tuple[float, float]]] = []
        t = float(rng.uniform(0.5, high))
        current = int(rng.integers(0, 2))
        while t < duration_s:
            current = 1 - current
            self.events.append((t, spots[current]))
            t += float(rng.uniform(low, high))
        self._initial = face_spot

    def spot_at(self, t: float) -> tuple[float, float]:
        """Where the metering spot points at time ``t``."""
        spot = self._initial
        for event_time, target in self.events:
            if event_time <= t:
                spot = target
            else:
                break
        return spot

    def apply(self, meter: LightMeter, t: float) -> None:
        """Point the camera's meter per the schedule."""
        x, y = self.spot_at(t)
        meter.point_spot(x, y)


class ScheduledMeteringBehavior(MeteringBehavior):
    """Metering behaviour driven by an active
    :class:`~repro.core.challenge.ChallengeScheduler`.

    Passive behaviour relies on the user touching the screen often
    enough; this variant *guarantees* challenge coverage: every tick the
    scheduler is consulted, and when a challenge is due the spot flips to
    the zone opposite the current one.  User-initiated touches can still
    be layered on top via ``scheduler.note_challenge``.
    """

    def __init__(
        self,
        bright_spot: tuple[float, float],
        dark_spot: tuple[float, float],
        scheduler: "ChallengeScheduler",
        face_spot: tuple[float, float] = (0.5, 0.45),
    ) -> None:
        # Initialize the passive parent with an empty schedule; events
        # are appended live as the scheduler fires.
        super().__init__(
            bright_spot=bright_spot,
            dark_spot=dark_spot,
            face_spot=face_spot,
            duration_s=1e-9,
        )
        self.events = []
        self._spots = [bright_spot, dark_spot]
        self._current = 0
        self.scheduler = scheduler

    def apply(self, meter: LightMeter, t: float) -> None:
        if self.scheduler.tick(t):
            self._current = 1 - self._current
            self.events.append((t, self._spots[self._current]))
        super().apply(meter, t)


class DerivedMeteringBehavior(MeteringBehavior):
    """Metering behaviour replaying a nonce-derived challenge schedule.

    The protocol layer expands ``(tenant_key, nonce, attempt)`` into
    per-clip challenge times and spot flips
    (:func:`~repro.protocol.schedule.derive_schedule`); this behaviour
    turns those clip-relative schedules into the absolute touch events
    the verifier's camera executes.  ``start_offset_s`` is the session
    warmup that precedes the first *recorded* clip — frame timestamps
    include it, so schedule times must be shifted by it.
    """

    def __init__(
        self,
        bright_spot: tuple[float, float],
        dark_spot: tuple[float, float],
        schedules: "Sequence[DerivedSchedule]",
        start_offset_s: float = 0.0,
        face_spot: tuple[float, float] = (0.5, 0.45),
    ) -> None:
        if start_offset_s < 0:
            raise ValueError("start_offset_s must be non-negative")
        super().__init__(
            bright_spot=bright_spot,
            dark_spot=dark_spot,
            face_spot=face_spot,
            duration_s=1e-9,
        )
        spots = {"bright": bright_spot, "dark": dark_spot}
        events: list[tuple[float, tuple[float, float]]] = []
        for schedule in schedules:
            base = start_offset_s + schedule.attempt_index * schedule.clip_duration_s
            for challenge in schedule.challenges:
                events.append((base + challenge.time_s, spots[challenge.spot]))
        self.events = sorted(events)


class VerifierEndpoint:
    """Alice: renders her own scene and produces the transmitted video."""

    def __init__(
        self,
        face: FaceModel,
        expression: ExpressionTrack,
        ambient: AmbientLight,
        metering: MeteringBehavior | None = None,
        renderer: FaceRenderer | None = None,
        camera: Camera | None = None,
        frame_size: tuple[int, int] = (64, 64),
        seed: int = 0,
        handshake: dict | None = None,
    ) -> None:
        height, width = frame_size
        self.face = face
        self.expression = expression
        self.ambient = ambient
        # Optional protocol handshake payload (session id + nonce hex,
        # see repro.protocol.nonce.handshake_payload) riding on every
        # transmitted frame's metadata, so the prover can ack the nonce.
        self.handshake = handshake
        self.renderer = renderer or FaceRenderer(face, height=height, width=width, seed=seed)
        if metering is None:
            background = self.renderer.background
            metering = MeteringBehavior(
                bright_spot=background.bright_spot,
                dark_spot=background.dark_spot,
                seed=seed,
            )
        self.metering = metering
        if camera is None:
            camera = Camera(
                sensor=ImageSensor(rng=np.random.default_rng(seed + 1)),
                meter=LightMeter(mode=MeteringMode.SPOT),
                auto_exposure=AutoExposureController(target_level=0.5),
            )
        self.camera = camera

    def produce_frame(self, t: float) -> Frame:
        """Render and capture Alice's frame at time ``t``."""
        pose = self.expression.sample(t)
        ambient_lux = self.ambient.sample_scalar(t)
        result = self.renderer.render(
            pose,
            face_illuminance_lux=ambient_lux,
            ambient_lux=ambient_lux,
        )
        self.metering.apply(self.camera.meter, t)
        metadata: dict = {"landmarks_truth": result.landmarks}
        if self.handshake is not None:
            metadata["handshake"] = dict(self.handshake)
        return self.camera.capture(
            result.radiance,
            timestamp=t,
            metadata=metadata,
        )


class GenuineProverEndpoint:
    """Bob when he is who he claims: a real face in front of a real screen.

    The screen shows whatever frame last arrived from Alice; its emitted
    light reaches Bob's face per the panel photometry and viewing
    distance, rides on his ambient light, reflects off his skin and is
    captured by his (exposure-locked) camera.
    """

    def __init__(
        self,
        face: FaceModel,
        expression: ExpressionTrack,
        ambient: AmbientLight,
        screen: ScreenSpec = DELL_27_LED,
        viewing_distance_m: float = 0.5,
        renderer: FaceRenderer | None = None,
        camera: Camera | None = None,
        frame_size: tuple[int, int] = (96, 96),
        lock_exposure_after_s: float = 1.5,
        orientation_wobble: float = 0.25,
        seed: int = 0,
        on_handshake: Callable[[dict], str] | None = None,
    ) -> None:
        if viewing_distance_m <= 0:
            raise ValueError("viewing_distance_m must be positive")
        if not 0 <= orientation_wobble < 1:
            raise ValueError("orientation_wobble must lie in [0, 1)")
        height, width = frame_size
        self.face = face
        self.expression = expression
        self.ambient = ambient
        self.screen = screen
        self.viewing_distance_m = viewing_distance_m
        # Head orientation relative to the screen modulates the received
        # irradiance (Lambert cosine): as the user turns or tilts, the
        # face catches a slowly-varying fraction of the screen light.
        # This is the main source of natural within-user variability in
        # the trend features (without it every genuine clip correlates
        # near-perfectly and the LOF cluster degenerates).
        self.orientation_wobble = orientation_wobble
        # Wobble periods of 16-50 s: slow enough that the induced slope
        # stays below the variance-threshold floor (cutoff 2) and does
        # not register as a fake "significant change", yet it reshapes
        # bump amplitudes across a clip.
        wobble_rng = np.random.default_rng(seed + 0xA11CE)
        self._wobble_freqs = wobble_rng.uniform(0.02, 0.06, size=2)
        self._wobble_phases = wobble_rng.uniform(0.0, 2.0 * np.pi, size=2)
        self.renderer = renderer or FaceRenderer(face, height=height, width=width, seed=seed)
        if camera is None:
            # Target level 0.22 keeps the (bright) nasal area comfortably
            # below sensor saturation so reflection deltas stay linear.
            camera = Camera(
                sensor=ImageSensor(rng=np.random.default_rng(seed + 2)),
                meter=LightMeter(mode=MeteringMode.MULTI_ZONE),
                auto_exposure=AutoExposureController(target_level=0.22),
            )
        self.camera = camera
        self.lock_exposure_after_s = lock_exposure_after_s
        self._start_time: float | None = None
        # Protocol handshake: when the displayed frame carries a
        # handshake payload, answer it once (hex ack tag) and repeat the
        # tag on every outgoing frame — individual frames may be lost.
        self.on_handshake = on_handshake
        self._ack: str | None = None

    def _orientation_gain(self, t: float) -> float:
        """Slowly-varying fraction of screen light the face catches."""
        if self.orientation_wobble <= 0:
            return 1.0
        mix = float(
            np.mean(np.sin(2.0 * np.pi * self._wobble_freqs * t + self._wobble_phases))
        )
        return 1.0 - self.orientation_wobble * (0.5 + 0.5 * mix)

    def screen_lux(self, displayed: Frame | None, t: float = 0.0) -> float:
        """Illuminance the screen currently delivers to Bob's face."""
        if displayed is None:
            mean_pixel = 0.0
        else:
            mean_pixel = frame_mean_luminance(displayed)
        nits = self.screen.emitted_luminance(mean_pixel)
        direct = screen_illuminance(nits, self.screen.area_m2, self.viewing_distance_m)
        return direct * self._orientation_gain(t)

    def produce_frame(self, t: float, displayed: Frame | None) -> Frame:
        if self._start_time is None:
            self._start_time = t
        if (
            self.on_handshake is not None
            and self._ack is None
            and displayed is not None
        ):
            payload = displayed.metadata.get("handshake")
            if payload is not None:
                self._ack = self.on_handshake(payload)
        pose = self.expression.sample(t)
        ambient_lux = self.ambient.sample_scalar(t)
        screen_lux = self.screen_lux(displayed, t)
        result = self.renderer.render(
            pose,
            face_illuminance_lux=ambient_lux + screen_lux,
            ambient_lux=ambient_lux,
            screen_lux=screen_lux,
        )
        metadata: dict = {
            "landmarks_truth": result.landmarks,
            "screen_lux": screen_lux,
            "ambient_lux": ambient_lux,
        }
        if self._ack is not None:
            metadata["ack"] = self._ack
        frame = self.camera.capture(
            result.radiance,
            timestamp=t,
            metadata=metadata,
        )
        if (
            not self.camera.auto_exposure.locked
            and t - self._start_time >= self.lock_exposure_after_s
        ):
            self.camera.auto_exposure.lock()
        return frame
