"""Video-chat integration: endpoints and the session loop (Fig. 4)."""

from .endpoints import (
    GenuineProverEndpoint,
    MeteringBehavior,
    ProverEndpoint,
    ScheduledMeteringBehavior,
    VerifierEndpoint,
)
from .session import SessionRecord, VideoChatSession

__all__ = [
    "GenuineProverEndpoint",
    "MeteringBehavior",
    "ProverEndpoint",
    "ScheduledMeteringBehavior",
    "VerifierEndpoint",
    "SessionRecord",
    "VideoChatSession",
]
