"""Video-chat integration: endpoints and the session loop (Fig. 4)."""

from .endpoints import (
    DerivedMeteringBehavior,
    GenuineProverEndpoint,
    MeteringBehavior,
    ProverEndpoint,
    ScheduledMeteringBehavior,
    VerifierEndpoint,
)
from .session import SessionRecord, VideoChatSession

__all__ = [
    "DerivedMeteringBehavior",
    "GenuineProverEndpoint",
    "MeteringBehavior",
    "ProverEndpoint",
    "ScheduledMeteringBehavior",
    "VerifierEndpoint",
    "SessionRecord",
    "VideoChatSession",
]
