"""Naive cross-correlation liveness detector.

The obvious simple alternative to the paper's pipeline: low-pass both
luminance signals, normalize, and threshold the maximum normalized
cross-correlation over a lag window.  No feature engineering, no outlier
model — a useful lower bound that shows what the paper's matched-change
behaviour features and LOF classifier add (it needs a hand-picked global
threshold and degrades when clips contain few or weak changes).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.config import DetectorConfig
from ..core.preprocessing import lowpass_filter

__all__ = ["CrossCorrelationDetector", "max_normalized_crosscorr"]


def max_normalized_crosscorr(
    x: np.ndarray,
    y: np.ndarray,
    max_lag: int,
) -> tuple[float, int]:
    """(peak normalized cross-correlation, lag in samples), lag >= 0 only
    (the reflection can only trail the challenge)."""
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1 or a.size != b.size:
        raise ValueError("inputs must be 1-D arrays of equal length")
    if max_lag < 0 or max_lag >= a.size:
        raise ValueError("max_lag must lie in [0, len)")
    best = -1.0
    best_lag = 0
    for lag in range(max_lag + 1):
        a_seg = a[: a.size - lag]
        b_seg = b[lag:]
        sa = a_seg.std()
        sb = b_seg.std()
        if sa < 1e-12 or sb < 1e-12:
            continue
        corr = float(
            ((a_seg - a_seg.mean()) * (b_seg - b_seg.mean())).mean() / (sa * sb)
        )
        if corr > best:
            best = corr
            best_lag = lag
    return best, best_lag


@dataclasses.dataclass
class CrossCorrelationDetector:
    """Threshold on the peak lagged correlation of the two signals.

    Parameters
    ----------
    threshold:
        Accept when the peak correlation is at least this.
    max_lag_s:
        Largest admissible reflection lag.
    config:
        Shared sampling/filtering constants.
    """

    threshold: float = 0.6
    max_lag_s: float = 1.5
    config: DetectorConfig = dataclasses.field(default_factory=DetectorConfig)

    def score(self, transmitted: np.ndarray, received: np.ndarray) -> float:
        """Peak normalized cross-correlation (higher = more live)."""
        fs = self.config.sample_rate_hz
        t_filtered = lowpass_filter(
            transmitted, fs, self.config.lowpass_cutoff_hz, self.config.lowpass_taps
        )
        r_filtered = lowpass_filter(
            received, fs, self.config.lowpass_cutoff_hz, self.config.lowpass_taps
        )
        max_lag = int(round(self.max_lag_s * fs))
        max_lag = min(max_lag, t_filtered.size - 2)
        corr, _ = max_normalized_crosscorr(t_filtered, r_filtered, max_lag)
        return corr

    def is_live(self, transmitted: np.ndarray, received: np.ndarray) -> bool:
        """Accept/reject decision."""
        return self.score(transmitted, received) >= self.threshold
