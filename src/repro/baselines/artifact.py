"""Artifact-detection baseline (the Sec. X class the paper argues against).

Artifact detectors classify *appearance statistics* of the received video
alone — synthesis flicker, boundary blending, temporal noise signatures —
with a supervised model.  This implementation extracts three cheap
temporal-artifact statistics and fits a Gaussian discriminant.

It exists to demonstrate the paper's two criticisms concretely:

1. **It needs attacker training data** (``fit`` takes both classes); the
   paper's detector needs none.
2. **It does not generalize**: trained on one synthesis artifact level,
   it degrades on attacks with a different level, whereas the
   challenge-response signal is invariant to synthesis quality (the
   benches show this).
"""

from __future__ import annotations

import numpy as np

from ..video.stream import VideoStream
from ..video.luminance import pixel_luminance

__all__ = ["ArtifactFeatures", "ArtifactDetector", "artifact_features"]


class ArtifactFeatures:
    """Names of the statistics, for reports."""

    NAMES = ("frame_diff_energy", "flicker_index", "highfreq_ratio")


def artifact_features(stream: VideoStream) -> np.ndarray:
    """Three temporal-artifact statistics of a received video clip.

    * ``frame_diff_energy`` — mean absolute inter-frame pixel difference
      (synthesis jitter raises it beyond natural motion).
    * ``flicker_index`` — standard deviation of the frame-luminance
      first difference (global synthesis flicker).
    * ``highfreq_ratio`` — energy fraction of the frame-mean-luminance
      signal above 2 Hz (natural videos concentrate energy low).
    """
    if len(stream) < 4:
        raise ValueError("need at least 4 frames for artifact statistics")
    luma_frames = [pixel_luminance(f.pixels) for f in stream]
    diffs = [
        np.abs(b - a).mean() for a, b in zip(luma_frames[:-1], luma_frames[1:])
    ]
    frame_means = np.array([lf.mean() for lf in luma_frames])
    flicker = float(np.diff(frame_means).std())

    spectrum = np.abs(np.fft.rfft(frame_means - frame_means.mean())) ** 2
    freqs = np.fft.rfftfreq(frame_means.size, d=1.0 / stream.fps)
    total = spectrum.sum()
    high = spectrum[freqs > 2.0].sum()
    ratio = float(high / total) if total > 0 else 0.0
    return np.array([float(np.mean(diffs)), flicker, ratio])


class ArtifactDetector:
    """Two-class Gaussian discriminant over artifact statistics."""

    def __init__(self) -> None:
        self._mean: dict[str, np.ndarray] = {}
        self._var: dict[str, np.ndarray] = {}

    @property
    def is_trained(self) -> bool:
        return bool(self._mean)

    def fit(self, genuine: np.ndarray, fake: np.ndarray) -> "ArtifactDetector":
        """Fit on labelled feature matrices — note that unlike the
        paper's detector, *attacker data is mandatory here*."""
        genuine = np.asarray(genuine, dtype=np.float64)
        fake = np.asarray(fake, dtype=np.float64)
        if genuine.ndim != 2 or fake.ndim != 2 or genuine.shape[1] != fake.shape[1]:
            raise ValueError("feature matrices must be 2-D with equal widths")
        if genuine.shape[0] < 2 or fake.shape[0] < 2:
            raise ValueError("need at least 2 samples per class")
        for label, data in (("genuine", genuine), ("fake", fake)):
            self._mean[label] = data.mean(axis=0)
            self._var[label] = data.var(axis=0) + 1e-9
        return self

    def _log_likelihood(self, features: np.ndarray, label: str) -> float:
        mean = self._mean[label]
        var = self._var[label]
        return float(
            -0.5 * (np.log(2 * np.pi * var) + (features - mean) ** 2 / var).sum()
        )

    def is_live(self, features: np.ndarray) -> bool:
        """True when the genuine class is more likely."""
        if not self.is_trained:
            raise RuntimeError("fit the detector first")
        features = np.asarray(features, dtype=np.float64)
        return self._log_likelihood(features, "genuine") >= self._log_likelihood(
            features, "fake"
        )

    def is_live_stream(self, stream: VideoStream) -> bool:
        """Convenience: classify a received video clip directly."""
        return self.is_live(artifact_features(stream))
