"""Comparator liveness detectors discussed in the paper's Sec. X.

Each baseline exists to make one of the paper's arguments measurable:

* :mod:`~repro.baselines.crosscorr` — the naive signal-level alternative
  to the paper's feature + LOF pipeline.
* :mod:`~repro.baselines.artifact` — artifact-detection methods need
  attacker training data and do not generalize across synthesis quality.
* :mod:`~repro.baselines.facelive` — challenge-response on prover-held
  sensors collapses when the attacker forges the sensor channel.
"""

from .artifact import ArtifactDetector, artifact_features
from .crosscorr import CrossCorrelationDetector, max_normalized_crosscorr
from .facelive import FaceLiveDetector, SensorChannel, head_motion_from_video

__all__ = [
    "ArtifactDetector",
    "artifact_features",
    "CrossCorrelationDetector",
    "max_normalized_crosscorr",
    "FaceLiveDetector",
    "SensorChannel",
    "head_motion_from_video",
]
