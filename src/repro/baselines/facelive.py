"""FaceLive-style motion-correlation baseline (the paper's ref. [13]).

FaceLive correlates head movement measured by the *prover's* motion
sensors with the head-pose change visible in the video.  The paper's
criticism (Sec. I, X): a reenactment attacker controls both sides of the
correlation — it knows the fake video's head motion (it *generated* it)
and can fabricate matching sensor readings, so the check collapses.

This module implements the check and the forgery:

* :func:`head_motion_from_video` — per-frame nasal-bridge displacement
  from landmarks (the vision-side signal).
* :class:`SensorChannel` — what the prover reports as IMU data.  Honest
  provers report their true motion plus sensor noise; the attacker
  replays the fake video's own motion track (capability 2/3 of the
  adversary model makes this trivial).
* :class:`FaceLiveDetector` — Pearson correlation of the two tracks with
  a threshold.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.features import pearson_correlation
from ..video.stream import VideoStream
from ..vision.landmarks import LandmarkDetector

__all__ = ["head_motion_from_video", "SensorChannel", "FaceLiveDetector"]


def head_motion_from_video(
    stream: VideoStream,
    detector: LandmarkDetector | None = None,
) -> np.ndarray:
    """Horizontal nasal-bridge trajectory (pixels) from the video.

    Frames without a detection hold the previous position.
    """
    detector = detector or LandmarkDetector()
    xs: list[float] = []
    last = 0.0
    for frame in stream:
        landmarks = detector.detect(frame.pixels)
        if landmarks is not None:
            last = landmarks.lower_bridge.x
        xs.append(last)
    return np.array(xs, dtype=np.float64)


@dataclasses.dataclass
class SensorChannel:
    """Motion-sensor readings reported by the (untrusted) prover.

    ``honest_motion`` is what the device actually measured; an attacker
    simply substitutes the fake video's own motion track (``forge``).
    The detector has no way to tell which it received — that is exactly
    the trust problem the paper points out.
    """

    readings: np.ndarray

    @classmethod
    def honest(
        cls,
        true_motion: np.ndarray,
        noise_std: float = 0.3,
        seed: int = 0,
    ) -> "SensorChannel":
        """A genuine device: true motion plus IMU noise."""
        rng = np.random.default_rng(seed)
        readings = np.asarray(true_motion, dtype=np.float64)
        return cls(readings=readings + rng.normal(0.0, noise_std, readings.size))

    @classmethod
    def forged(cls, fake_video_motion: np.ndarray) -> "SensorChannel":
        """An attacker: report exactly the motion visible in the fake
        video (it generated that motion, so it knows it perfectly)."""
        return cls(readings=np.asarray(fake_video_motion, dtype=np.float64).copy())


@dataclasses.dataclass
class FaceLiveDetector:
    """Correlate reported sensor motion against video motion."""

    threshold: float = 0.5

    def score(self, video_motion: np.ndarray, sensors: SensorChannel) -> float:
        """Pearson correlation of the two motion tracks."""
        video = np.asarray(video_motion, dtype=np.float64)
        if video.size != sensors.readings.size:
            raise ValueError("motion tracks must have equal length")
        return pearson_correlation(video, sensors.readings)

    def is_live(self, video_motion: np.ndarray, sensors: SensorChannel) -> bool:
        return self.score(video_motion, sensors) >= self.threshold
