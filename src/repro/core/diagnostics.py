"""Clip diagnostics: decide whether a verdict is *supportable*.

The paper's detector always answers accept/reject.  In deployment some
clips simply carry no evidence — the verifier issued no challenge, the
face was never found, the reflection is buried under ambient light.
Treating those as rejections punishes legitimate users; treating them as
acceptances helps attackers who suppress the channel.  The honest output
is *inconclusive*, plus the reason, so the application can re-challenge
(see :mod:`~repro.core.challenge`) or fall back to another factor.

:func:`diagnose_clip` grades one clip pair before classification:

* challenge sufficiency of the transmitted signal;
* face-detection coverage of the received video;
* reflection signal-to-noise on the received side.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from .challenge import challenge_quality
from .config import DetectorConfig
from .preprocessing import lowpass_filter, preprocess

__all__ = ["ClipIssue", "ClipDiagnostics", "diagnose_clip", "reflection_snr"]


class ClipIssue(enum.Enum):
    """Reasons a clip cannot support a verdict."""

    NO_CHALLENGES = "transmitted video has no significant luminance changes"
    TOO_FEW_CHALLENGES = "transmitted video has fewer challenges than required"
    NO_FACE = "no face found in the received video"
    POOR_FACE_COVERAGE = "face found in too few received frames"
    WEAK_REFLECTION = "face reflection too weak relative to its noise floor"


@dataclasses.dataclass(frozen=True)
class ClipDiagnostics:
    """Evidential quality of one clip pair."""

    conclusive: bool
    issues: tuple[ClipIssue, ...]
    challenge_count: int
    face_coverage: float
    reflection_snr_db: float


def reflection_snr(
    received_luminance: np.ndarray,
    config: DetectorConfig | None = None,
) -> float:
    """Reflection signal-to-noise ratio (dB) of a received clip.

    Signal: the sub-cutoff (screen-driven) band of the luminance;
    noise: everything above the cutoff.  A clip with no reflected
    challenges has a near-flat low band and the ratio collapses.
    """
    config = config or DetectorConfig()
    x = np.asarray(received_luminance, dtype=np.float64)
    if x.ndim != 1 or x.size < 8:
        raise ValueError("received_luminance must be 1-D with >= 8 samples")
    low = lowpass_filter(x, config.sample_rate_hz, config.lowpass_cutoff_hz, config.lowpass_taps)
    noise = x - low
    signal_power = float(np.var(low))
    noise_power = float(np.var(noise))
    if noise_power <= 1e-12:
        return 60.0  # synthetic noiseless input: cap instead of inf
    return float(10.0 * np.log10(max(signal_power, 1e-12) / noise_power))


def diagnose_clip(
    transmitted_luminance: np.ndarray,
    received_luminance: np.ndarray,
    face_valid: np.ndarray | None = None,
    config: DetectorConfig | None = None,
    min_challenges: int = 1,
    min_face_coverage: float = 0.5,
    min_snr_db: float = 0.0,
) -> ClipDiagnostics:
    """Grade a clip pair; ``conclusive`` means a verdict is supportable.

    ``face_valid`` is the per-frame detection mask from
    :func:`~repro.core.luminance.received_luminance_signal`; omit it when
    the received signal came from elsewhere.
    """
    config = config or DetectorConfig()
    issues: list[ClipIssue] = []

    quality = challenge_quality(
        transmitted_luminance,
        config.with_overrides(min_challenges=min_challenges),
    )
    if quality.challenge_count == 0:
        issues.append(ClipIssue.NO_CHALLENGES)
    elif not quality.sufficient:
        issues.append(ClipIssue.TOO_FEW_CHALLENGES)

    coverage = 1.0
    if face_valid is not None:
        face_valid = np.asarray(face_valid, dtype=bool)
        coverage = float(face_valid.mean()) if face_valid.size else 0.0
        if coverage == 0.0:  # exact: mean of a bool mask  # reprolint: disable=R004
            issues.append(ClipIssue.NO_FACE)
        elif coverage < min_face_coverage:
            issues.append(ClipIssue.POOR_FACE_COVERAGE)

    snr_db = reflection_snr(received_luminance, config)
    # Only meaningful when there were challenges to reflect.
    if quality.challenge_count > 0 and snr_db < min_snr_db:
        issues.append(ClipIssue.WEAK_REFLECTION)

    return ClipDiagnostics(
        conclusive=not issues,
        issues=tuple(issues),
        challenge_count=quality.challenge_count,
        face_coverage=coverage,
        reflection_snr_db=snr_db,
    )
