"""Active challenge scheduling (an extension the paper motivates).

The paper's challenge is *passive*: the legitimate user happens to touch
the metering area while chatting, and each touch doubles as a luminance
challenge.  A clip with too few — or too weak — significant changes
carries little evidence either way; nothing in the paper forces the
challenges to exist.

:class:`ChallengeScheduler` closes that loop on the verifier's side: it
watches the transmitted video's luminance in real time, counts the
challenges issued inside the current detection window, and tells the
application when it should nudge the metering spot (or, equivalently,
prompt the user to touch the screen).  With the scheduler in charge,
every detection clip is guaranteed ``min_challenges`` significant
changes, spaced at least ``min_gap_s`` apart so the Sec. V smoothing
chain resolves them as distinct peaks.

:func:`challenge_quality` grades a finished clip — used by the
diagnostics module to mark clips as *inconclusive* rather than risk a
verdict on weak evidence.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .config import DetectorConfig
from .preprocessing import preprocess

__all__ = ["ChallengeQuality", "challenge_quality", "ChallengeScheduler"]


@dataclasses.dataclass(frozen=True)
class ChallengeQuality:
    """How much liveness evidence a transmitted clip carries."""

    challenge_count: int
    mean_prominence: float
    min_spacing_s: float
    sufficient: bool


def challenge_quality(
    transmitted_luminance: np.ndarray,
    config: DetectorConfig | None = None,
    min_challenges: int | None = None,
) -> ChallengeQuality:
    """Grade the challenge content of one transmitted-luminance clip.

    A clip is *sufficient* when it contains at least
    ``config.min_challenges`` significant changes inside the countable
    (guard-trimmed) window.  Passing ``min_challenges`` is shorthand for
    ``config.with_overrides(min_challenges=...)`` — it routes through the
    validated config copy, not around it.
    """
    config = config or DetectorConfig()
    if min_challenges is not None:
        config = config.with_overrides(min_challenges=min_challenges)
    pre = preprocess(transmitted_luminance, config, config.peak_prominence_screen)
    clip_end = (pre.raw.size - 1) / config.sample_rate_hz
    times = pre.peak_times
    keep = times <= clip_end - config.boundary_guard_s
    times = times[keep]
    prominences = np.array([p.prominence for p in pre.peaks])[keep]

    spacing = float(np.diff(times).min()) if times.size >= 2 else float("inf")
    return ChallengeQuality(
        challenge_count=int(times.size),
        mean_prominence=float(prominences.mean()) if prominences.size else 0.0,
        min_spacing_s=spacing,
        sufficient=times.size >= config.min_challenges,
    )


class ChallengeScheduler:
    """Decides, tick by tick, whether the verifier should issue a
    challenge *now* to keep the current detection window evidentiary.

    Parameters
    ----------
    config:
        Detection constants (window length, sampling rate, and the
        ``min_challenges`` / ``min_gap_s`` schedule the scheduler
        guarantees).
    min_challenges, min_gap_s:
        Optional overrides, routed through
        :meth:`DetectorConfig.with_overrides` so they stay inside the
        validated-config contract.
    """

    def __init__(
        self,
        config: DetectorConfig | None = None,
        min_challenges: int | None = None,
        min_gap_s: float | None = None,
    ) -> None:
        config = config or DetectorConfig()
        overrides: dict[str, object] = {}
        if min_challenges is not None:
            overrides["min_challenges"] = min_challenges
        if min_gap_s is not None:
            overrides["min_gap_s"] = min_gap_s
        if overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        usable = config.clip_duration_s - config.boundary_guard_s
        if config.min_challenges * config.min_gap_s > usable:
            raise ValueError(
                f"{config.min_challenges} challenges at {config.min_gap_s}s "
                f"spacing do not fit the {usable:.1f}s usable window"
            )
        self.min_challenges = config.min_challenges
        self.min_gap_s = config.min_gap_s
        self._window_start: float | None = None
        self._issued: list[float] = []

    def note_challenge(self, t: float) -> None:
        """Record that a challenge happened (user touch or scheduled)."""
        self._issued.append(t)

    def should_challenge(self, t: float) -> bool:
        """Whether the application should issue a challenge at time ``t``.

        Strategy: never violate the spacing; beyond that, challenge
        whenever the remaining usable window is just enough to fit the
        challenges still owed.
        """
        if t < 0:
            raise ValueError("time must be non-negative")
        if self._window_start is None:
            self._window_start = t
        window_t = t - self._window_start
        if window_t >= self.config.clip_duration_s:
            # New detection window.
            self._window_start = t
            window_t = 0.0
            self._issued = [s for s in self._issued if s >= t - self.min_gap_s]

        in_window = [s for s in self._issued if s >= self._window_start]
        owed = self.min_challenges - len(in_window)
        if owed <= 0:
            return False
        if self._issued and t - self._issued[-1] < self.min_gap_s:
            return False
        # Latest moment the owed challenges still fit before the usable
        # window closes; challenge once we reach it.
        usable_end = self.config.clip_duration_s - self.config.boundary_guard_s
        last_chance = usable_end - owed * self.min_gap_s
        return window_t >= last_chance

    def tick(self, t: float) -> bool:
        """Convenience: ``should_challenge`` and, when true, record it."""
        if self.should_challenge(t):
            self.note_challenge(t)
            return True
        return False
