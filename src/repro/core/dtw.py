"""Dynamic time warping distance (feature z4, Sec. VI).

Classic O(n*m) dynamic program over absolute differences, implemented
from scratch.  An optional Sakoe-Chiba band bounds the warp (and the
cost) for long signals; the paper's 75-sample segments are small enough
for the exact computation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dtw_distance"]


def dtw_distance(
    x: np.ndarray,
    y: np.ndarray,
    band: int | None = None,
) -> float:
    """DTW distance between two 1-D sequences.

    Parameters
    ----------
    x, y:
        Non-empty 1-D arrays.
    band:
        Optional Sakoe-Chiba band half-width (in samples): cells with
        ``|i - j|`` beyond the band are excluded.  ``None`` means exact.

    Returns
    -------
    float
        Sum of ``|x_i - y_j|`` along the optimal monotone alignment path
        (boundary-to-boundary, steps right/down/diagonal).
    """
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dtw inputs must be 1-D")
    if a.size == 0 or b.size == 0:
        raise ValueError("dtw inputs must be non-empty")
    if band is not None and band < 0:
        raise ValueError("band must be non-negative")

    n, m = a.size, b.size
    if band is not None:
        # The band must at least cover the diagonal slope difference.
        band = max(band, abs(n - m))

    inf = np.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    current = np.empty(m + 1)
    for i in range(1, n + 1):
        current.fill(inf)
        if band is None:
            j_lo, j_hi = 1, m
        else:
            j_lo = max(1, i - band)
            j_hi = min(m, i + band)
        ai = a[i - 1]
        for j in range(j_lo, j_hi + 1):
            cost = abs(ai - b[j - 1])
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if current[j - 1] < best:
                best = current[j - 1]
            current[j] = cost + best
        prev, current = current, prev
    result = prev[m]
    if not np.isfinite(result):
        raise ValueError("band too narrow: no feasible alignment path")
    return float(result)
