"""Decision-threshold calibration from enrollment data alone.

The paper fixes tau = 3 after a testbed sweep (Fig. 12).  A deployed
system cannot sweep against attackers it has never seen — but it *can*
bound its false-rejection rate using only the legitimate bank:
leave-one-out LOF scores of the bank estimate the score distribution of
genuine clips, and the tau that accepts a target fraction of them is a
direct FRR calibration.  (FAR then lands wherever the attacker
distribution puts it; the paper's whole design makes that distribution
far from the genuine one.)

This is the "launch quickly on new devices" story taken one step
further: not only no attacker data and no per-user data, but also no
hand-tuned threshold.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .config import DetectorConfig
from .lof import LocalOutlierFactor

__all__ = ["CalibrationResult", "leave_one_out_scores", "calibrate_threshold"]


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """A calibrated threshold and the evidence behind it."""

    threshold: float
    target_frr: float
    estimated_frr: float
    loo_scores: np.ndarray


def leave_one_out_scores(
    bank: np.ndarray,
    config: DetectorConfig | None = None,
) -> np.ndarray:
    """LOF score of each bank vector against the rest of the bank.

    This is the genuine-score distribution a fresh legitimate clip is
    expected to follow (slightly pessimistic: the evaluation model will
    be trained on the *full* bank, which is denser).
    """
    config = config or DetectorConfig()
    bank = np.asarray(bank, dtype=np.float64)
    if bank.ndim != 2:
        raise ValueError("bank must be 2-D (n_samples, n_features)")
    n = bank.shape[0]
    if n < 3:
        raise ValueError("need at least 3 bank vectors for leave-one-out")
    scores = np.empty(n)
    for i in range(n):
        rest = np.delete(bank, i, axis=0)
        model = LocalOutlierFactor(min(config.lof_neighbors, rest.shape[0] - 1))
        model.fit(rest)
        scores[i] = model.score(bank[i])
    return scores


def calibrate_threshold(
    bank: np.ndarray,
    target_frr: float = 0.08,
    config: DetectorConfig | None = None,
    min_threshold: float = 1.5,
    max_threshold: float = 50.0,
) -> CalibrationResult:
    """Pick the smallest tau whose estimated FRR meets the target.

    Parameters
    ----------
    bank:
        Legitimate feature vectors, shape ``(n, 4)``.
    target_frr:
        Acceptable fraction of genuine clips rejected per attempt (the
        paper's operating point corresponds to roughly 0.075).
    min_threshold:
        Floor on tau — below ~1.5 even inliers fluctuate across the line
        (LOF of a dense cluster hovers around 1).
    max_threshold:
        Ceiling; a bank so noisy that it needs more than this should be
        re-enrolled instead.
    """
    if not 0.0 < target_frr < 1.0:
        raise ValueError("target_frr must lie in (0, 1)")
    if min_threshold <= 1.0 or max_threshold <= min_threshold:
        raise ValueError("thresholds must satisfy 1 < min < max")
    scores = leave_one_out_scores(bank, config)
    finite = scores[np.isfinite(scores)]
    if finite.size == 0:
        raise ValueError("bank is degenerate: all leave-one-out scores infinite")

    # Smallest tau accepting >= (1 - target_frr) of the genuine scores.
    candidate = float(np.quantile(finite, 1.0 - target_frr))
    threshold = float(np.clip(candidate, min_threshold, max_threshold))
    estimated_frr = float((scores > threshold).mean())
    return CalibrationResult(
        threshold=threshold,
        target_frr=target_frr,
        estimated_frr=estimated_frr,
        loo_scores=scores,
    )
