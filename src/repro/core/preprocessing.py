"""The preprocessing filter chain of Sec. V.

Raw luminance signals carry broadband noise (object motion in the scene,
external light sources, landmark jitter); the screen-driven component
lives below 1 Hz (Fig. 6).  The paper's chain, applied in order:

1. low-pass filter, 1 Hz cut-off               -> ``lowpassed``
2. moving-window variance, window 10           -> ``variance``
3. threshold filter, cut-off 2                 -> ``thresholded``
4. moving-window RMS, window 30                -> ``rms``
5. Savitzky-Golay filter, window 31            -> ``savgol``
6. moving-average filter, window 10            -> ``smoothed``
7. peak finding with minimal prominence        -> ``peaks``

Every stage is a pure function over 1-D arrays so the ablation benchmarks
can splice stages out.  Since the batch-core refactor the arithmetic
lives in :mod:`~repro.core.batch`: the per-clip stage functions here are
batch-of-1 views over the ``*_batch`` kernels, and
:func:`preprocess_batch` runs the whole chain over N clips per NumPy
call.  :func:`preprocess` composes the chain for one clip and keeps all
intermediates (Fig. 7 plots them) — bit-identical to its row of any
batch, because every kernel is row-independent.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from .batch import (
    ClipBatch,
    group_by_length,
    moving_rms_batch,
    moving_variance_batch,
    reflect_convolve_batch,
    threshold_filter_batch,
)
from .config import DetectorConfig
from .peaks import Peak, find_peaks

__all__ = [
    "design_lowpass",
    "lowpass_filter",
    "moving_variance",
    "threshold_filter",
    "moving_rms",
    "savgol_coefficients",
    "savgol_filter",
    "moving_average",
    "PreprocessedSignal",
    "preprocess",
    "preprocess_batch",
]


def design_lowpass(cutoff_hz: float, sample_rate_hz: float, taps: int) -> np.ndarray:
    """Hamming-windowed-sinc FIR low-pass kernel (unit DC gain)."""
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ValueError("cutoff must lie in (0, nyquist)")
    if taps < 3 or taps % 2 == 0:
        raise ValueError("taps must be an odd integer >= 3")
    normalized = cutoff_hz / sample_rate_hz  # cycles per sample
    n = np.arange(taps) - (taps - 1) / 2.0
    kernel = 2.0 * normalized * np.sinc(2.0 * normalized * n)
    kernel *= np.hamming(taps)
    return kernel / kernel.sum()


def lowpass_filter(
    signal: np.ndarray,
    sample_rate_hz: float,
    cutoff_hz: float = 1.0,
    taps: int = 41,
) -> np.ndarray:
    """Stage 1: remove the broadband high-frequency noise (Fig. 6)."""
    x = _as_signal(signal)
    kernel = design_lowpass(cutoff_hz, sample_rate_hz, taps)
    return reflect_convolve_batch(x[None, :], kernel)[0]


def moving_variance(signal: np.ndarray, window: int) -> np.ndarray:
    """Stage 2: short-time variance over a sliding window.

    A significant luminance change (a fast rise or drop within the
    window) produces a local maximum in this signal; slow low-frequency
    noise produces only small values.  Output has the input's length —
    each output sample is the variance of the window *ending* there (the
    leading ``window - 1`` samples use the growing prefix), so a variance
    peak trails its luminance edge by at most the window length.
    """
    x = _as_signal(signal)
    return moving_variance_batch(x[None, :], window)[0]


def threshold_filter(signal: np.ndarray, cutoff: float) -> np.ndarray:
    """Stage 3: zero out small spikes below the cut-off (paper: 2)."""
    x = _as_signal(signal)
    return threshold_filter_batch(x[None, :], cutoff)[0]


def moving_rms(signal: np.ndarray, window: int) -> np.ndarray:
    """Stage 4: sliding root-mean-square — groups neighbouring lower
    peaks split by low-frequency noise into one bump (window 30)."""
    x = _as_signal(signal)
    return moving_rms_batch(x[None, :], window)[0]


def savgol_coefficients(window: int, polyorder: int) -> np.ndarray:
    """Savitzky-Golay smoothing kernel via least-squares polynomial fit.

    The kernel is the row of the pseudo-inverse of the window's
    Vandermonde matrix that evaluates the fitted polynomial at the window
    center — the classic derivation of the filter the paper cites [20].
    """
    if window % 2 == 0 or window < 3:
        raise ValueError("window must be an odd integer >= 3")
    if not 0 <= polyorder < window:
        raise ValueError("polyorder must satisfy 0 <= polyorder < window")
    half = window // 2
    positions = np.arange(-half, half + 1, dtype=np.float64)
    vandermonde = np.vander(positions, polyorder + 1, increasing=True)
    # coefficients of the center evaluation: e0^T (V^T V)^-1 V^T
    pinv = np.linalg.pinv(vandermonde)
    kernel = pinv[0]
    # Convolution flips the kernel; it is symmetric for even orders but
    # flip explicitly so odd orders stay correct.
    return kernel[::-1].copy()


def savgol_filter(signal: np.ndarray, window: int = 31, polyorder: int = 3) -> np.ndarray:
    """Stage 5: polynomial smoothing (window 31) preserving bump shape."""
    x = _as_signal(signal)
    kernel = savgol_coefficients(window, polyorder)
    return reflect_convolve_batch(x[None, :], kernel)[0]


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Stage 6: final moving-average polish (window 10)."""
    x = _as_signal(signal)
    if window < 1:
        raise ValueError("window must be >= 1")
    kernel = np.full(window, 1.0 / window)
    return reflect_convolve_batch(x[None, :], kernel)[0]


def _as_signal(signal: np.ndarray) -> np.ndarray:
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be 1-D")
    return x


@dataclasses.dataclass(frozen=True)
class PreprocessedSignal:
    """All intermediates of the Sec. V chain for one luminance signal."""

    raw: np.ndarray
    lowpassed: np.ndarray
    variance: np.ndarray
    thresholded: np.ndarray
    rms: np.ndarray
    savgol: np.ndarray
    smoothed: np.ndarray
    peaks: tuple[Peak, ...]
    sample_rate_hz: float

    @property
    def peak_indices(self) -> np.ndarray:
        """Sample indices of the significant luminance changes."""
        return np.array([p.index for p in self.peaks], dtype=np.int64)

    @property
    def peak_times(self) -> np.ndarray:
        """Times (seconds) of the significant luminance changes."""
        return self.peak_indices / self.sample_rate_hz

    @property
    def change_count(self) -> int:
        """Number of significant luminance changes found."""
        return len(self.peaks)


def preprocess_batch(
    signals: Sequence[np.ndarray] | ClipBatch,
    config: DetectorConfig,
    min_prominence: float,
) -> list[PreprocessedSignal]:
    """Run the full Sec. V chain over N clips, batched per stage.

    Clips are grouped by length (padding never enters a kernel) and the
    three FIR kernels are designed once per call instead of once per
    clip.  Row independence of the batch kernels makes every clip's
    result bit-identical to :func:`preprocess` on that clip alone.
    """
    batch = signals if isinstance(signals, ClipBatch) else ClipBatch.from_signals(signals)
    lowpass_kernel = design_lowpass(
        config.lowpass_cutoff_hz, config.sample_rate_hz, config.lowpass_taps
    )
    savgol_kernel = savgol_coefficients(config.savgol_window, config.savgol_polyorder)
    if config.moving_average_window < 1:
        raise ValueError("window must be >= 1")
    average_kernel = np.full(
        config.moving_average_window, 1.0 / config.moving_average_window
    )
    results: list[PreprocessedSignal | None] = [None] * len(batch)
    for length, indices in group_by_length(batch.lengths):
        raw = batch.data[indices][:, :length]
        lowpassed = reflect_convolve_batch(raw, lowpass_kernel)
        variance = moving_variance_batch(lowpassed, config.variance_window)
        thresholded = threshold_filter_batch(variance, config.variance_threshold)
        rms = moving_rms_batch(thresholded, config.rms_window)
        # The polynomial fit can undershoot below zero on the flanks of a
        # variance lump; two adjacent lumps leave a *negative-valued*
        # local maximum between their undershoots, which the peak finder
        # would report as a phantom luminance change.  Variance is
        # non-negative by definition, so the smoothed signal is clamped
        # at zero.
        savgol = np.maximum(reflect_convolve_batch(rms, savgol_kernel), 0.0)
        smoothed = np.maximum(reflect_convolve_batch(savgol, average_kernel), 0.0)
        for g, i in enumerate(indices):
            results[int(i)] = PreprocessedSignal(
                raw=raw[g],
                lowpassed=lowpassed[g],
                variance=variance[g],
                thresholded=thresholded[g],
                rms=rms[g],
                savgol=savgol[g],
                smoothed=smoothed[g],
                peaks=tuple(find_peaks(smoothed[g], min_prominence)),
                sample_rate_hz=config.sample_rate_hz,
            )
    return [r for r in results if r is not None]


def preprocess(
    signal: np.ndarray,
    config: DetectorConfig,
    min_prominence: float,
) -> PreprocessedSignal:
    """Run the full Sec. V chain on one raw luminance signal.

    A batch-of-1 view over :func:`preprocess_batch`.
    """
    _as_signal(signal)
    return preprocess_batch([signal], config, min_prominence)[0]
