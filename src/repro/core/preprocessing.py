"""The preprocessing filter chain of Sec. V.

Raw luminance signals carry broadband noise (object motion in the scene,
external light sources, landmark jitter); the screen-driven component
lives below 1 Hz (Fig. 6).  The paper's chain, applied in order:

1. low-pass filter, 1 Hz cut-off               -> ``lowpassed``
2. moving-window variance, window 10           -> ``variance``
3. threshold filter, cut-off 2                 -> ``thresholded``
4. moving-window RMS, window 30                -> ``rms``
5. Savitzky-Golay filter, window 31            -> ``savgol``
6. moving-average filter, window 10            -> ``smoothed``
7. peak finding with minimal prominence        -> ``peaks``

Every stage is a pure function over 1-D arrays so the ablation benchmarks
can splice stages out; :func:`preprocess` composes them and keeps all
intermediates (Fig. 7 plots them).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .config import DetectorConfig
from .peaks import Peak, find_peaks

__all__ = [
    "design_lowpass",
    "lowpass_filter",
    "moving_variance",
    "threshold_filter",
    "moving_rms",
    "savgol_coefficients",
    "savgol_filter",
    "moving_average",
    "PreprocessedSignal",
    "preprocess",
]


def design_lowpass(cutoff_hz: float, sample_rate_hz: float, taps: int) -> np.ndarray:
    """Hamming-windowed-sinc FIR low-pass kernel (unit DC gain)."""
    if not 0 < cutoff_hz < sample_rate_hz / 2:
        raise ValueError("cutoff must lie in (0, nyquist)")
    if taps < 3 or taps % 2 == 0:
        raise ValueError("taps must be an odd integer >= 3")
    normalized = cutoff_hz / sample_rate_hz  # cycles per sample
    n = np.arange(taps) - (taps - 1) / 2.0
    kernel = 2.0 * normalized * np.sinc(2.0 * normalized * n)
    kernel *= np.hamming(taps)
    return kernel / kernel.sum()


def _reflect_convolve(x: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Same-length convolution with reflected edges (no edge transient)."""
    half = len(kernel) // 2
    if x.size == 0:
        return x.copy()
    # np.pad(mode="reflect") caps pad width at size - 1; extend with edge
    # values beyond that (only matters for signals shorter than the kernel).
    mode = "reflect" if x.size > 1 else "edge"
    reflect_pad = min(half, x.size - 1) if x.size > 1 else 0
    padded = np.pad(x, pad_width=reflect_pad, mode=mode)
    extra = half - reflect_pad
    if extra > 0:
        padded = np.pad(padded, pad_width=extra, mode="edge")
    return np.convolve(padded, kernel, mode="same")[half : half + x.size]


def lowpass_filter(
    signal: np.ndarray,
    sample_rate_hz: float,
    cutoff_hz: float = 1.0,
    taps: int = 41,
) -> np.ndarray:
    """Stage 1: remove the broadband high-frequency noise (Fig. 6)."""
    x = _as_signal(signal)
    kernel = design_lowpass(cutoff_hz, sample_rate_hz, taps)
    return _reflect_convolve(x, kernel)


def moving_variance(signal: np.ndarray, window: int) -> np.ndarray:
    """Stage 2: short-time variance over a sliding window.

    A significant luminance change (a fast rise or drop within the
    window) produces a local maximum in this signal; slow low-frequency
    noise produces only small values.  Output has the input's length —
    each output sample is the variance of the window *ending* there (the
    leading ``window - 1`` samples use the growing prefix), so a variance
    peak trails its luminance edge by at most the window length.
    """
    x = _as_signal(signal)
    if window < 1:
        raise ValueError("window must be >= 1")
    if x.size == 0:
        return x.copy()
    # Cumulative-sum sliding variance: var = E[x^2] - E[x]^2, evaluated
    # for all windows at once by slicing the prefix sums (bit-identical
    # to the per-sample loop it replaced: same operations per element).
    csum = np.concatenate(([0.0], np.cumsum(x)))
    csum2 = np.concatenate(([0.0], np.cumsum(x * x)))
    idx = np.arange(x.size)
    lo = np.maximum(idx - window + 1, 0)
    n = idx - lo + 1
    mean = (csum[idx + 1] - csum[lo]) / n
    mean2 = (csum2[idx + 1] - csum2[lo]) / n
    return np.maximum(mean2 - mean * mean, 0.0)


def threshold_filter(signal: np.ndarray, cutoff: float) -> np.ndarray:
    """Stage 3: zero out small spikes below the cut-off (paper: 2)."""
    x = _as_signal(signal)
    if cutoff < 0:
        raise ValueError("cutoff must be non-negative")
    return np.where(x >= cutoff, x, 0.0)


def moving_rms(signal: np.ndarray, window: int) -> np.ndarray:
    """Stage 4: sliding root-mean-square — groups neighbouring lower
    peaks split by low-frequency noise into one bump (window 30)."""
    x = _as_signal(signal)
    if window < 1:
        raise ValueError("window must be >= 1")
    if x.size == 0:
        return x.copy()
    csum2 = np.concatenate(([0.0], np.cumsum(x * x)))
    half = window // 2
    idx = np.arange(x.size)
    lo = np.maximum(idx - half, 0)
    hi = np.minimum(idx + window - half, x.size)
    return np.sqrt((csum2[hi] - csum2[lo]) / (hi - lo))


def savgol_coefficients(window: int, polyorder: int) -> np.ndarray:
    """Savitzky-Golay smoothing kernel via least-squares polynomial fit.

    The kernel is the row of the pseudo-inverse of the window's
    Vandermonde matrix that evaluates the fitted polynomial at the window
    center — the classic derivation of the filter the paper cites [20].
    """
    if window % 2 == 0 or window < 3:
        raise ValueError("window must be an odd integer >= 3")
    if not 0 <= polyorder < window:
        raise ValueError("polyorder must satisfy 0 <= polyorder < window")
    half = window // 2
    positions = np.arange(-half, half + 1, dtype=np.float64)
    vandermonde = np.vander(positions, polyorder + 1, increasing=True)
    # coefficients of the center evaluation: e0^T (V^T V)^-1 V^T
    pinv = np.linalg.pinv(vandermonde)
    kernel = pinv[0]
    # Convolution flips the kernel; it is symmetric for even orders but
    # flip explicitly so odd orders stay correct.
    return kernel[::-1].copy()


def savgol_filter(signal: np.ndarray, window: int = 31, polyorder: int = 3) -> np.ndarray:
    """Stage 5: polynomial smoothing (window 31) preserving bump shape."""
    x = _as_signal(signal)
    kernel = savgol_coefficients(window, polyorder)
    return _reflect_convolve(x, kernel)


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Stage 6: final moving-average polish (window 10)."""
    x = _as_signal(signal)
    if window < 1:
        raise ValueError("window must be >= 1")
    if x.size == 0:
        return x.copy()
    kernel = np.full(window, 1.0 / window)
    return _reflect_convolve(x, kernel)


def _as_signal(signal: np.ndarray) -> np.ndarray:
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be 1-D")
    return x


@dataclasses.dataclass(frozen=True)
class PreprocessedSignal:
    """All intermediates of the Sec. V chain for one luminance signal."""

    raw: np.ndarray
    lowpassed: np.ndarray
    variance: np.ndarray
    thresholded: np.ndarray
    rms: np.ndarray
    savgol: np.ndarray
    smoothed: np.ndarray
    peaks: tuple[Peak, ...]
    sample_rate_hz: float

    @property
    def peak_indices(self) -> np.ndarray:
        """Sample indices of the significant luminance changes."""
        return np.array([p.index for p in self.peaks], dtype=np.int64)

    @property
    def peak_times(self) -> np.ndarray:
        """Times (seconds) of the significant luminance changes."""
        return self.peak_indices / self.sample_rate_hz

    @property
    def change_count(self) -> int:
        """Number of significant luminance changes found."""
        return len(self.peaks)


def preprocess(
    signal: np.ndarray,
    config: DetectorConfig,
    min_prominence: float,
) -> PreprocessedSignal:
    """Run the full Sec. V chain on one raw luminance signal."""
    raw = _as_signal(signal)
    lowpassed = lowpass_filter(
        raw,
        sample_rate_hz=config.sample_rate_hz,
        cutoff_hz=config.lowpass_cutoff_hz,
        taps=config.lowpass_taps,
    )
    variance = moving_variance(lowpassed, config.variance_window)
    thresholded = threshold_filter(variance, config.variance_threshold)
    rms = moving_rms(thresholded, config.rms_window)
    # The polynomial fit can undershoot below zero on the flanks of a
    # variance lump; two adjacent lumps leave a *negative-valued* local
    # maximum between their undershoots, which the peak finder would
    # report as a phantom luminance change.  Variance is non-negative by
    # definition, so the smoothed signal is clamped at zero.
    savgol = np.maximum(
        savgol_filter(rms, config.savgol_window, config.savgol_polyorder), 0.0
    )
    smoothed = np.maximum(
        moving_average(savgol, config.moving_average_window), 0.0
    )
    peaks = tuple(find_peaks(smoothed, min_prominence))
    return PreprocessedSignal(
        raw=raw,
        lowpassed=lowpassed,
        variance=variance,
        thresholded=thresholded,
        rms=rms,
        savgol=savgol,
        smoothed=smoothed,
        peaks=peaks,
        sample_rate_hz=config.sample_rate_hz,
    )
