"""The paper's primary contribution: the liveness-detection pipeline."""

from .batch import ClipBatch
from .calibration import CalibrationResult, calibrate_threshold, leave_one_out_scores
from .challenge import ChallengeQuality, ChallengeScheduler, challenge_quality
from .config import PAPER_CONFIG, DetectorConfig
from .detector import DetectionResult, LivenessDetector, verify_clips
from .diagnostics import ClipDiagnostics, ClipIssue, diagnose_clip, reflection_snr
from .features import (
    FeatureExtraction,
    FeatureVector,
    extract_features,
    extract_features_batch,
    features_from_signals,
    features_from_signals_batch,
)
from .lof import LocalOutlierFactor
from .pipeline import ChatVerifier, DiagnosedVerdict, SessionVerdict, VerificationReport
from .seeding import spawn_seeds
from .streaming import CallStatus, StreamingState, StreamingVerifier
from .voting import Verdict, VotingCombiner

__all__ = [
    "CalibrationResult",
    "calibrate_threshold",
    "leave_one_out_scores",
    "ChallengeQuality",
    "ChallengeScheduler",
    "challenge_quality",
    "PAPER_CONFIG",
    "DetectorConfig",
    "DetectionResult",
    "LivenessDetector",
    "ClipDiagnostics",
    "ClipIssue",
    "diagnose_clip",
    "reflection_snr",
    "ClipBatch",
    "FeatureExtraction",
    "FeatureVector",
    "extract_features",
    "extract_features_batch",
    "features_from_signals",
    "features_from_signals_batch",
    "verify_clips",
    "LocalOutlierFactor",
    "ChatVerifier",
    "DiagnosedVerdict",
    "SessionVerdict",
    "VerificationReport",
    "CallStatus",
    "StreamingState",
    "StreamingVerifier",
    "Verdict",
    "VotingCombiner",
    "spawn_seeds",
]
