"""Luminance extraction from video streams (Sec. IV).

Two different probes, one per direction:

* **transmitted video** — each frame is compressed into a single pixel:
  the spatial mean of the BT.709 luminance.  Only the overall luminance
  matters because it is what drives the prover's screen emission.
* **received video** — the mean luminance of the nasal-bridge ROI located
  by landmark detection in every sampled frame.  Frames where no face is
  found (occlusion, loss concealment artifacts) *hold the previous
  value*: real systems cannot conjure the measurement, and a hold is
  spectrally quiet, so it does not fake a luminance change.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..video.frame import Frame
from ..video.luminance import frame_mean_luminance, pixel_luminance
from ..video.stream import VideoStream
from ..vision.geometry import Rect
from ..vision.landmarks import LandmarkDetector
from .roi import nasal_bridge_roi

__all__ = [
    "roi_mean_luminance",
    "transmitted_luminance_signal",
    "ReceivedSignal",
    "received_luminance_signal",
]


def roi_mean_luminance(frame: Frame, roi: Rect) -> float | None:
    """Mean luminance inside ``roi``; ``None`` when the ROI misses the
    frame entirely."""
    clipped = roi.clipped_to(frame.width, frame.height)
    if clipped is None:
        return None
    rows, cols = clipped.pixel_slices()
    patch = frame.pixels[rows, cols]
    if patch.size == 0:
        return None
    return float(pixel_luminance(patch).mean())


def transmitted_luminance_signal(stream: VideoStream) -> np.ndarray:
    """Per-frame mean luminance of the transmitted video, shape ``(n,)``."""
    return np.array([frame_mean_luminance(f) for f in stream], dtype=np.float64)


@dataclasses.dataclass(frozen=True)
class ReceivedSignal:
    """ROI luminance signal plus per-frame validity bookkeeping."""

    luminance: np.ndarray
    valid: np.ndarray  # bool per frame: landmarks found and ROI inside frame

    @property
    def detection_rate(self) -> float:
        """Fraction of frames with a usable face detection."""
        return float(self.valid.mean()) if self.valid.size else 0.0


def received_luminance_signal(
    stream: VideoStream,
    detector: LandmarkDetector | None = None,
) -> ReceivedSignal:
    """Nasal-bridge ROI luminance for every frame of the received video.

    Invalid frames (no face / ROI outside frame) hold the previous valid
    value; leading invalid frames take the first valid value.  A stream
    with no valid frame at all yields an all-zero signal — downstream the
    flat signal produces no significant changes and the clip is rejected,
    which is the right failure direction for a liveness check.
    """
    detector = detector or LandmarkDetector()
    n = len(stream)
    luminance = np.zeros(n, dtype=np.float64)
    valid = np.zeros(n, dtype=bool)
    for i, frame in enumerate(stream):
        landmarks = detector.detect(frame.pixels)
        if landmarks is None:
            continue
        value = roi_mean_luminance(frame, nasal_bridge_roi(landmarks))
        if value is None:
            continue
        luminance[i] = value
        valid[i] = True

    if not valid.any():
        return ReceivedSignal(luminance=luminance, valid=valid)

    # Hold-last fill for the gaps; leading misses are backfilled with the
    # first valid value (never a hard 0.0, which would inject a phantom
    # luminance step at clip start).  StreamingVerifier._push_received
    # mirrors this exact concealment policy sample by sample.
    first_valid = int(np.argmax(valid))
    luminance[:first_valid] = luminance[first_valid]
    last = luminance[first_valid]
    for i in range(first_valid, n):
        if valid[i]:
            last = luminance[i]
        else:
            luminance[i] = last
    return ReceivedSignal(luminance=luminance, valid=valid)
