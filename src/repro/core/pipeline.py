"""End-to-end verification: two video streams in, a verdict out.

:class:`ChatVerifier` is the public entry point a video-chat application
would embed on the verifier's device.  It owns the landmark detector, the
luminance probes, the trained LOF detector, and the voting combiner, and
exposes three operations:

* :meth:`enroll` — fit the legitimate bank from genuine sessions (once,
  from *any* users' data; no attacker data, Sec. VII-A).
* :meth:`verify_clip` — one detection attempt on a 15-second clip pair.
* :meth:`verify_session` — cut a longer session into clips, run one
  attempt per clip, and majority-vote the verdict (Sec. VII-B).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import numpy as np

from ..chat.session import SessionRecord
from ..obs.instrument import Instrumentation
from ..video.stream import VideoStream
from ..vision.landmarks import LandmarkDetector
from .config import DetectorConfig
from .detector import DetectionResult, LivenessDetector, verify_clips
from .diagnostics import ClipDiagnostics, diagnose_clip
from .features import FeatureVector, extract_features_batch
from .luminance import received_luminance_signal, transmitted_luminance_signal
from .voting import Verdict, VotingCombiner

__all__ = ["VerificationReport", "SessionVerdict", "DiagnosedVerdict", "ChatVerifier"]


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """The one result shape every verifier returns: verdict, per-clip
    attempts, and (when the caller asked for evidence grading) the
    per-clip diagnostics.

    ``verdict`` is ``None`` when no clip carried enough evidence to
    support any decision (e.g. the verifier never challenged) — the
    honest answer a deployed system should surface instead of guessing.
    Plain :meth:`ChatVerifier.verify_session` always produces a verdict;
    the diagnosed path may not.
    """

    verdict: Verdict | None
    attempts: tuple[DetectionResult, ...]
    diagnostics: tuple[ClipDiagnostics, ...] | None = None

    @property
    def is_attacker(self) -> bool:
        """Attacker iff a verdict exists and says so."""
        return self.verdict is not None and self.verdict.is_attacker

    @property
    def is_conclusive(self) -> bool:
        return self.verdict is not None

    @property
    def inconclusive_clips(self) -> int:
        """Clips whose evidence was graded and found inconclusive (0
        when diagnostics were not collected)."""
        if self.diagnostics is None:
            return 0
        return sum(1 for d in self.diagnostics if not d.conclusive)


#: Deprecated aliases — both batch shapes were unified into
#: :class:`VerificationReport`; import that instead.
SessionVerdict = VerificationReport
DiagnosedVerdict = VerificationReport


class ChatVerifier:
    """The paper's defense system, assembled."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        landmark_detector: LandmarkDetector | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.config = config or DetectorConfig()
        self.landmark_detector = landmark_detector or LandmarkDetector()
        self.instrumentation = Instrumentation.ensure(instrumentation)
        self.detector = LivenessDetector(self.config, self.instrumentation)
        self.combiner = VotingCombiner(self.config.vote_fraction)

    # ------------------------------------------------------------------
    # Signal extraction
    # ------------------------------------------------------------------

    def extract_signals(
        self,
        transmitted: VideoStream,
        received: VideoStream,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resample both streams to the working rate and extract the two
        raw luminance signals, trimmed to a common length."""
        rate = self.config.sample_rate_hz
        with self.instrumentation.span("verifier.extract_signals", stage="luminance"):
            t_stream = (
                transmitted if transmitted.fps == rate else transmitted.resampled(rate)
            )
            r_stream = received if received.fps == rate else received.resampled(rate)
            t_lum = transmitted_luminance_signal(t_stream)
            r_lum = received_luminance_signal(r_stream, self.landmark_detector).luminance
        n = min(t_lum.size, r_lum.size)
        return t_lum[:n], r_lum[:n]

    def clip_features(
        self,
        transmitted: VideoStream,
        received: VideoStream,
    ) -> FeatureVector:
        """Features of one clip pair (training-time helper)."""
        t_lum, r_lum = self.extract_signals(transmitted, received)
        return extract_features_batch([(t_lum, r_lum)], self.config)[0].features

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def enroll(self, sessions: Iterable[SessionRecord]) -> "ChatVerifier":
        """Fit the legitimate bank from genuine session recordings.

        Each session is segmented into clips; every clip contributes one
        feature vector to the bank.
        """
        pairs: list[tuple[np.ndarray, np.ndarray]] = []
        for record in sessions:
            for t_clip, r_clip in self._paired_clips(record.transmitted, record.received):
                pairs.append(self.extract_signals(t_clip, r_clip))
        if len(pairs) < 2:
            raise ValueError("enrollment needs at least 2 clips of genuine chat")
        bank = [
            extraction.features
            for extraction in extract_features_batch(pairs, self.config)
        ]
        self.detector.fit(bank)
        return self

    def enroll_features(self, bank: Sequence[FeatureVector]) -> "ChatVerifier":
        """Fit directly from pre-extracted legitimate feature vectors."""
        self.detector.fit(bank)
        return self

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_clip(
        self,
        transmitted: VideoStream,
        received: VideoStream,
    ) -> DetectionResult:
        """One detection attempt on one clip pair."""
        t_lum, r_lum = self.extract_signals(transmitted, received)
        return self.detector.verify_clip(t_lum, r_lum)

    def verify_session(
        self,
        record: SessionRecord,
    ) -> VerificationReport:
        """Segment a session into clips, batch-verify them, majority-vote."""
        with self.instrumentation.span("verifier.verify_session", stage="verdict"):
            pairs = [
                self.extract_signals(t_clip, r_clip)
                for t_clip, r_clip in self._paired_clips(
                    record.transmitted, record.received
                )
            ]
            attempts = verify_clips(pairs, self.detector)
            if not attempts:
                raise ValueError(
                    "session shorter than one detection clip "
                    f"({self.config.clip_duration_s}s)"
                )
            verdict = self.combiner.combine(attempts)
        self._count_session(verdict)
        return VerificationReport(verdict=verdict, attempts=tuple(attempts))

    def verify_session_diagnosed(
        self,
        record: SessionRecord,
        min_challenges: int = 1,
    ) -> VerificationReport:
        """Like :meth:`verify_session`, but grade each clip's evidence
        first and vote only over *conclusive* clips.

        Clips where the verifier issued no challenge (or the face was
        unusable) prove nothing about the peer; counting them as
        rejections would punish legitimate users, counting them as
        acceptances would reward channel-suppressing attackers.
        """
        attempts: list[DetectionResult] = []
        diagnostics: list[ClipDiagnostics] = []
        for t_clip, r_clip in self._paired_clips(record.transmitted, record.received):
            t_lum, r_lum = self.extract_signals(t_clip, r_clip)
            diag = diagnose_clip(
                t_lum, r_lum, config=self.config, min_challenges=min_challenges
            )
            diagnostics.append(diag)
            if diag.conclusive:
                attempts.append(self.detector.verify_clip(t_lum, r_lum))
        if not diagnostics:
            raise ValueError(
                "session shorter than one detection clip "
                f"({self.config.clip_duration_s}s)"
            )
        verdict = self.combiner.combine(attempts) if attempts else None
        self._count_session(verdict)
        return VerificationReport(
            verdict=verdict,
            attempts=tuple(attempts),
            diagnostics=tuple(diagnostics),
        )

    # ------------------------------------------------------------------

    def _count_session(self, verdict: Verdict | None) -> None:
        if verdict is None:
            outcome = "inconclusive"
        elif verdict.is_attacker:
            outcome = "attacker"
        else:
            outcome = "legitimate"
        self.instrumentation.count("verifier_sessions_total", verdict=outcome)

    def _paired_clips(
        self,
        transmitted: VideoStream,
        received: VideoStream,
    ) -> list[tuple[VideoStream, VideoStream]]:
        duration = self.config.clip_duration_s
        t_clips = transmitted.segments(duration)
        r_clips = received.segments(duration)
        return list(zip(t_clips, r_clips))
