"""Structure-of-arrays batch core for the Sec. V / Sec. VI hot path.

The per-clip signal chain (filter -> peaks -> z1..z4) does tiny NumPy
calls per clip, so dispatch overhead — not arithmetic — dominates the
experiment runners (``results/engine_scaling.txt``).  This module holds
the batched kernels that process N clips per NumPy call:

* :class:`ClipBatch` — padded ``(clips, max_len)`` float64 matrix plus a
  per-clip length vector; the SoA container every ``*_batch`` kernel
  consumes.
* ``reflect_convolve_batch`` / ``moving_variance_batch`` /
  ``threshold_filter_batch`` / ``moving_rms_batch`` — the filter stages
  of Sec. V over a dense group of equal-length rows.
* :func:`dtw_distance_batch` — feature ``z4``'s dynamic program,
  vectorized across the batch dimension.
* :func:`find_peaks_batch` — the peak finder mapped over rows.

Every kernel is **row-independent**: the result of row ``i`` never
depends on any other row, so running a clip in a batch of one is
bit-identical to running it in a batch of N.  The per-clip functions in
:mod:`~repro.core.preprocessing` are thin batch-of-1 views over these
kernels, and ``tests/property/test_prop_batch.py`` pins the identity
across ragged batches.  Rows of *different* lengths are handled by
grouping (:func:`group_by_length`) before the dense kernels run, so
padding never leaks into results.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from .peaks import Peak, find_peaks

__all__ = [
    "ClipBatch",
    "group_by_length",
    "reflect_convolve_batch",
    "moving_variance_batch",
    "threshold_filter_batch",
    "moving_rms_batch",
    "find_peaks_batch",
    "dtw_distance_batch",
]


def _as_row(signal: np.ndarray) -> np.ndarray:
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be 1-D")
    return x


def _as_rows(rows: np.ndarray) -> np.ndarray:
    x = np.asarray(rows, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("batch kernels take 2-D (clips, samples) arrays")
    return x


@dataclasses.dataclass(frozen=True)
class ClipBatch:
    """N ragged clips packed as one padded float64 matrix.

    ``data`` has shape ``(clips, max_len)``; row ``i`` holds clip ``i``
    in ``data[i, :lengths[i]]`` and zero padding after it.  The padding
    is inert — kernels group rows by length and slice the padding off
    before computing, so it never contaminates a result.
    """

    data: np.ndarray
    lengths: np.ndarray

    def __post_init__(self) -> None:
        if self.data.ndim != 2 or self.data.dtype != np.float64:
            raise ValueError("data must be a 2-D float64 array")
        if self.lengths.ndim != 1 or self.lengths.shape[0] != self.data.shape[0]:
            raise ValueError("lengths must be 1-D with one entry per row")
        if self.lengths.size and (
            self.lengths.min() < 0 or self.lengths.max() > self.data.shape[1]
        ):
            raise ValueError("lengths must lie in [0, data.shape[1]]")

    @classmethod
    def from_signals(cls, signals: Sequence[np.ndarray]) -> "ClipBatch":
        """Pack a ragged list of 1-D signals into one padded batch."""
        arrays = [_as_row(s) for s in signals]
        lengths = np.array([a.size for a in arrays], dtype=np.int64)
        max_len = int(lengths.max()) if arrays else 0
        data = np.zeros((len(arrays), max_len), dtype=np.float64)
        for i, a in enumerate(arrays):
            data[i, : a.size] = a
        return cls(data=data, lengths=lengths)

    def __len__(self) -> int:
        return self.data.shape[0]

    @property
    def max_length(self) -> int:
        return self.data.shape[1]

    def row(self, i: int) -> np.ndarray:
        """Clip ``i`` without its padding (a view into ``data``)."""
        return self.data[i, : self.lengths[i]]

    def rows(self) -> list[np.ndarray]:
        """All clips without padding, in batch order."""
        return [self.row(i) for i in range(len(self))]


def group_by_length(lengths: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Deterministic grouping of batch rows by clip length.

    Returns ``(length, row_indices)`` pairs sorted by ascending length,
    indices ascending within each group — the iteration order every
    batch consumer uses, so scatter/gather is reproducible.
    """
    arr = np.asarray(lengths, dtype=np.int64)
    return [(int(val), np.nonzero(arr == val)[0]) for val in np.unique(arr)]


def reflect_convolve_batch(rows: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Same-length convolution with reflected edges, one row per clip.

    Matches the padding semantics of the historical per-clip
    ``_reflect_convolve`` (reflect capped at ``len - 1``, edge values
    beyond that), evaluated as a tap-accumulation sum so each output row
    depends only on its own input row.
    """
    rows = _as_rows(rows)
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 1 or kernel.size == 0:
        raise ValueError("kernel must be a non-empty 1-D array")
    half = kernel.size // 2
    count, length = rows.shape
    if length == 0 or count == 0 or half == 0:
        if half == 0 and length > 0 and count > 0:
            return kernel[0] * rows
        return rows.copy()
    reflect_pad = min(half, length - 1)
    if reflect_pad > 0:
        padded = np.pad(rows, ((0, 0), (reflect_pad, reflect_pad)), mode="reflect")
    else:
        padded = rows
    extra = half - reflect_pad
    if extra > 0:
        padded = np.pad(padded, ((0, 0), (extra, extra)), mode="edge")
    # out[:, m] = sum_k kernel[k] * padded[:, m + shift - k]; with the
    # symmetric padding above the kernel always has full support, so no
    # boundary cases remain (shift reproduces np.convolve's "same"
    # alignment for odd and even kernel sizes alike).
    shift = half + (kernel.size - 1) // 2
    out = np.zeros_like(rows)
    for k in range(kernel.size):
        start = shift - k
        out += kernel[k] * padded[:, start : start + length]
    return out


def moving_variance_batch(rows: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window variance (window *ending* at each sample) per row."""
    rows = _as_rows(rows)
    if window < 1:
        raise ValueError("window must be >= 1")
    count, length = rows.shape
    if length == 0 or count == 0:
        return rows.copy()
    zeros = np.zeros((count, 1), dtype=np.float64)
    csum = np.concatenate([zeros, np.cumsum(rows, axis=1)], axis=1)
    csum2 = np.concatenate([zeros, np.cumsum(rows * rows, axis=1)], axis=1)
    idx = np.arange(length)
    lo = np.maximum(idx - window + 1, 0)
    n = idx - lo + 1
    mean = (csum[:, idx + 1] - csum[:, lo]) / n
    mean2 = (csum2[:, idx + 1] - csum2[:, lo]) / n
    return np.maximum(mean2 - mean * mean, 0.0)


def threshold_filter_batch(rows: np.ndarray, cutoff: float) -> np.ndarray:
    """Zero out samples below the cut-off, elementwise per row."""
    rows = _as_rows(rows)
    if cutoff < 0:
        raise ValueError("cutoff must be non-negative")
    return np.where(rows >= cutoff, rows, 0.0)


def moving_rms_batch(rows: np.ndarray, window: int) -> np.ndarray:
    """Sliding root-mean-square over a centered window, per row."""
    rows = _as_rows(rows)
    if window < 1:
        raise ValueError("window must be >= 1")
    count, length = rows.shape
    if length == 0 or count == 0:
        return rows.copy()
    zeros = np.zeros((count, 1), dtype=np.float64)
    csum2 = np.concatenate([zeros, np.cumsum(rows * rows, axis=1)], axis=1)
    half = window // 2
    idx = np.arange(length)
    lo = np.maximum(idx - half, 0)
    hi = np.minimum(idx + window - half, length)
    return np.sqrt((csum2[:, hi] - csum2[:, lo]) / (hi - lo))


def find_peaks_batch(
    rows: Sequence[np.ndarray] | np.ndarray,
    min_prominence: float,
) -> list[list[Peak]]:
    """Peak finding mapped over a batch of rows.

    The finder itself is a per-row scan (plateau handling makes it
    control-flow heavy); batching here is for interface symmetry with
    the dense kernels, not vectorization.
    """
    return [find_peaks(np.asarray(row), min_prominence) for row in rows]


def dtw_distance_batch(
    xs: Sequence[np.ndarray],
    ys: Sequence[np.ndarray],
) -> np.ndarray:
    """Exact DTW distances for many ``(x, y)`` pairs in one pass.

    Pairs are grouped by ``(len(x), len(y))`` and each group runs one
    dynamic program whose cells are ``(group,)`` vectors — the i/j loops
    stay in Python but every arithmetic step covers the whole group.
    ``abs``/``min``/``add`` are exact in IEEE-754, so each pair's
    distance is bit-identical to :func:`~repro.core.dtw.dtw_distance`.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same number of sequences")
    a_list = [_as_row(x) for x in xs]
    b_list = [_as_row(y) for y in ys]
    for a, b in zip(a_list, b_list):
        if a.size == 0 or b.size == 0:
            raise ValueError("dtw inputs must be non-empty")
    out = np.empty(len(a_list), dtype=np.float64)
    groups: dict[tuple[int, int], list[int]] = {}
    for i, (a, b) in enumerate(zip(a_list, b_list)):
        groups.setdefault((a.size, b.size), []).append(i)
    for (n, m), indices in sorted(groups.items()):
        A = np.stack([a_list[i] for i in indices])
        B = np.stack([b_list[i] for i in indices])
        count = len(indices)
        prev = np.full((count, m + 1), np.inf)
        prev[:, 0] = 0.0
        current = np.empty((count, m + 1))
        for i in range(1, n + 1):
            current[:, 0] = np.inf
            row_cost = np.abs(A[:, i - 1][:, None] - B)
            for j in range(1, m + 1):
                best = np.minimum(
                    np.minimum(prev[:, j - 1], prev[:, j]), current[:, j - 1]
                )
                current[:, j] = row_cost[:, j - 1] + best
            prev, current = current, prev
        out[np.array(indices)] = prev[:, m]
    return out
