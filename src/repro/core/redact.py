"""Shared secret-redaction helper.

Everything the verifier emits — CLI text, logs, SLO reports, traces —
is attacker-readable under the paper's threat model, so key material
(the deployment secret, tenant keys, session nonces) must never reach
an output sink in the clear.  :func:`redact` is the one sanctioned way
to *mention* a secret in output: it renders a short digest-truncated
token that is deterministic (the same secret always redacts to the
same token, so log lines stay correlatable) but non-invertible.

The secret-flow linter (R017-R021, ``repro lint``) knows this function
by name as a redactor: a value routed through ``redact()`` is clean at
every downstream sink.  That trust is exactly why nothing else should
be named ``redact``.
"""

from __future__ import annotations

import hashlib

__all__ = ["redact"]


def redact(value: object, width: int = 8) -> str:
    """A printable stand-in for secret material.

    ``width`` hex characters of a SHA-256 digest, bracketed so redacted
    output is visually unmistakable: ``<redacted:9f86d081>``.
    """
    if isinstance(value, bytes):
        raw = value
    elif isinstance(value, str):
        raw = value.encode("utf-8", "replace")
    else:
        raw = repr(value).encode("utf-8", "replace")
    return f"<redacted:{hashlib.sha256(raw).hexdigest()[:width]}>"
