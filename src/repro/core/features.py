"""Feature extraction (Sec. VI): z1..z4 from pairs of luminance signals.

Behaviour features (when changes happen):

* ``z1`` — proportion of the transmitted video's significant changes
  matched in the received video, ``F(T, R) / N`` (Eq. 4).
* ``z2`` — proportion of the received video's significant changes matched
  in the transmitted video, ``G(T, R) / M`` (Eq. 5).

Trend features (how the luminance changes), computed on the
delay-aligned, [0, 1]-normalized smoothed variance signals, cut into two
equal segments:

* ``z3`` — the smaller Pearson correlation coefficient over the segment
  pairs (Eq. 6).
* ``z4`` — the larger DTW distance over the segment pairs, divided by 30
  to keep its scale comparable.

A genuine prover clusters near (1, 1, high, low); a reenactment attacker
falls away on at least one dimension — which is all the LOF model needs.

The documented entry points are the batch functions
:func:`extract_features_batch` / :func:`features_from_signals_batch`:
they run the Sec. V chain through the structure-of-arrays kernels of
:mod:`~repro.core.batch` and vectorize the DTW dynamic program across
all clips' segments.  The per-clip :func:`extract_features` /
:func:`features_from_signals` remain as deprecated batch-of-1 wrappers;
each clip's result is bit-identical either way.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Sequence

import numpy as np

from ..obs.instrument import Instrumentation
from .batch import dtw_distance_batch
from .config import DetectorConfig
from .delay import align_signals, estimate_delay
from .matching import ChangeMatch, match_changes
from .preprocessing import PreprocessedSignal, preprocess_batch

__all__ = [
    "FeatureVector",
    "FeatureExtraction",
    "pearson_correlation",
    "normalize_unit",
    "split_segments",
    "extract_features",
    "extract_features_batch",
    "features_from_signals",
    "features_from_signals_batch",
]


@dataclasses.dataclass(frozen=True)
class FeatureVector:
    """The four-dimensional feature point fed to the classifier."""

    z1: float
    z2: float
    z3: float
    z4: float

    def as_array(self) -> np.ndarray:
        return np.array([self.z1, self.z2, self.z3, self.z4], dtype=np.float64)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "FeatureVector":
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != (4,):
            raise ValueError(f"expected 4 features, got shape {arr.shape}")
        return cls(z1=float(arr[0]), z2=float(arr[1]), z3=float(arr[2]), z4=float(arr[3]))


@dataclasses.dataclass(frozen=True)
class FeatureExtraction:
    """Features plus every intermediate (for figures and diagnostics)."""

    features: FeatureVector
    transmitted: PreprocessedSignal
    received: PreprocessedSignal
    matches: tuple[ChangeMatch, ...]
    delay_s: float


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (Eq. 6); 0 when either input is
    constant (no trend to correlate)."""
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be 1-D arrays of equal length")
    if a.size < 2:
        return 0.0
    std_a = a.std()
    std_b = b.std()
    if std_a < 1e-12 or std_b < 1e-12:
        return 0.0
    return float(((a - a.mean()) * (b - b.mean())).mean() / (std_a * std_b))


def normalize_unit(signal: np.ndarray) -> np.ndarray:
    """Scale a signal to [0, 1]; a flat signal maps to all zeros."""
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be 1-D")
    if x.size == 0:
        return x.copy()
    low = x.min()
    span = x.max() - low
    if span < 1e-12:
        return np.zeros_like(x)
    return (x - low) / span


def split_segments(signal: np.ndarray, count: int) -> list[np.ndarray]:
    """Cut a signal into ``count`` equal-length segments (tail dropped)."""
    x = np.asarray(signal, dtype=np.float64)
    if count < 1:
        raise ValueError("count must be >= 1")
    seg_len = x.size // count
    if seg_len < 1:
        raise ValueError(f"signal of length {x.size} too short for {count} segments")
    return [x[i * seg_len : (i + 1) * seg_len] for i in range(count)]


def extract_features_batch(
    pairs: Sequence[tuple[np.ndarray, np.ndarray]],
    config: DetectorConfig | None = None,
    instrumentation: Instrumentation | None = None,
) -> list[FeatureExtraction]:
    """Full Sec. V + Sec. VI pipeline over many raw signal pairs.

    One call preprocesses every transmitted and received signal through
    the batched filter chain and extracts all four features per clip;
    results come back in submission order, each bit-identical to the
    per-clip pipeline on that pair alone.
    """
    config = config or DetectorConfig()
    instr = Instrumentation.ensure(instrumentation)
    pairs = list(pairs)
    if not pairs:
        return []
    with instr.span("features.preprocess", stage="preprocessing"):
        pre_ts = preprocess_batch(
            [t for t, _ in pairs], config, config.peak_prominence_screen
        )
        pre_rs = preprocess_batch(
            [r for _, r in pairs], config, config.peak_prominence_face
        )
    return features_from_signals_batch(pre_ts, pre_rs, config, instrumentation=instr)


def features_from_signals_batch(
    pre_ts: Sequence[PreprocessedSignal],
    pre_rs: Sequence[PreprocessedSignal],
    config: DetectorConfig | None = None,
    instrumentation: Instrumentation | None = None,
) -> list[FeatureExtraction]:
    """Sec. VI features for many already-preprocessed signal pairs."""
    config = config or DetectorConfig()
    instr = Instrumentation.ensure(instrumentation)
    pre_ts = list(pre_ts)
    pre_rs = list(pre_rs)
    if len(pre_ts) != len(pre_rs):
        raise ValueError("need one received signal per transmitted signal")
    if not pre_ts:
        return []
    with instr.span("features.match", stage="matching"):
        return _features_from_signals_batch(pre_ts, pre_rs, config, instr)


@dataclasses.dataclass
class _ClipPartial:
    """One clip's Sec. VI state awaiting its batched DTW distances."""

    matches: list[ChangeMatch]
    z1: float
    z2: float
    delay_s: float
    t_norm: np.ndarray
    correlations: list[float]
    dtw: list[float] = dataclasses.field(default_factory=list)


def _match_and_align(
    pre_t: PreprocessedSignal,
    pre_r: PreprocessedSignal,
    config: DetectorConfig,
) -> tuple[_ClipPartial, list[tuple[np.ndarray, np.ndarray]]]:
    """Everything per-clip up to (but excluding) the DTW distances."""

    # Boundary guard: a transmitted change too close to the clip end has
    # its reflection truncated by the segmentation; a received change too
    # close to the clip start reflects a pre-clip challenge.  Neither can
    # be matched even for a live face, so they are excluded from N and M.
    guard = config.boundary_guard_s
    clip_end = (pre_t.raw.size - 1) / config.sample_rate_hz
    t_all = pre_t.peak_times
    r_all = pre_r.peak_times
    t_keep = np.nonzero(t_all <= clip_end - guard)[0]
    r_keep = np.nonzero(r_all >= guard)[0]
    t_times = t_all[t_keep]
    r_times = r_all[r_keep]

    matches = match_changes(t_times, r_times, tolerance_s=config.match_tolerance_s)
    # The matcher indexes the guard-trimmed arrays; remap to the untrimmed
    # peak lists so ChangeMatch honours its documented contract
    # ("index into the transmitted/received change list") even when the
    # guard dropped leading or trailing peaks.
    matches = [
        ChangeMatch(
            transmitted_index=int(t_keep[m.transmitted_index]),
            received_index=int(r_keep[m.received_index]),
            time_difference_s=m.time_difference_s,
        )
        for m in matches
    ]
    n = t_times.size
    m = r_times.size
    z1 = len(matches) / n if n > 0 else 0.0
    z2 = len(matches) / m if m > 0 else 0.0

    delay = estimate_delay(matches)
    delay_s = 0.0 if delay is None else delay

    t_norm = normalize_unit(pre_t.smoothed)
    r_norm = normalize_unit(pre_r.smoothed)
    try:
        t_aligned, r_aligned = align_signals(
            t_norm, r_norm, delay_s, config.sample_rate_hz
        )
    except ValueError:
        # Degenerate delay estimate (larger than the clip): fall back to
        # unaligned signals; the trend features will degrade on their own.
        t_aligned, r_aligned = t_norm, r_norm
        delay_s = 0.0

    correlations: list[float] = []
    segment_pairs: list[tuple[np.ndarray, np.ndarray]] = []
    if t_aligned.size >= 2 * config.segment_count:
        t_segments = split_segments(t_aligned, config.segment_count)
        r_segments = split_segments(r_aligned, config.segment_count)
        for t_seg, r_seg in zip(t_segments, r_segments):
            correlations.append(pearson_correlation(t_seg, r_seg))
            segment_pairs.append((t_seg, r_seg))
    partial = _ClipPartial(
        matches=matches,
        z1=z1,
        z2=z2,
        delay_s=delay_s,
        t_norm=t_norm,
        correlations=correlations,
    )
    return partial, segment_pairs


def _features_from_signals_batch(
    pre_ts: list[PreprocessedSignal],
    pre_rs: list[PreprocessedSignal],
    config: DetectorConfig,
    instr: Instrumentation,
) -> list[FeatureExtraction]:
    partials: list[_ClipPartial] = []
    seg_t: list[np.ndarray] = []
    seg_r: list[np.ndarray] = []
    seg_owner: list[int] = []
    for i, (pre_t, pre_r) in enumerate(zip(pre_ts, pre_rs)):
        partial, segment_pairs = _match_and_align(pre_t, pre_r, config)
        partials.append(partial)
        for t_seg, r_seg in segment_pairs:
            seg_t.append(t_seg)
            seg_r.append(r_seg)
            seg_owner.append(i)

    # One vectorized dynamic program over every clip's segments at once
    # (the z4 hot loop that used to run clip-by-clip in pure Python).
    if seg_t:
        distances = dtw_distance_batch(seg_t, seg_r)
        for owner, distance in zip(seg_owner, distances):
            partials[owner].dtw.append(float(distance))

    results: list[FeatureExtraction] = []
    for pre_t, pre_r, partial in zip(pre_ts, pre_rs, partials):
        if partial.correlations:
            z3 = min(partial.correlations)
            z4 = max(partial.dtw) / config.dtw_scale
        else:
            # Too little overlap to measure a trend: maximally suspicious.
            z3 = -1.0
            z4 = float(max(partial.t_norm.size, 1)) / config.dtw_scale
        features = FeatureVector(
            z1=partial.z1, z2=partial.z2, z3=float(z3), z4=float(z4)
        )
        instr.count("features_clips_total")
        instr.count("features_matched_changes_total", len(partial.matches))
        results.append(
            FeatureExtraction(
                features=features,
                transmitted=pre_t,
                received=pre_r,
                matches=tuple(partial.matches),
                delay_s=partial.delay_s,
            )
        )
    return results


def extract_features(
    transmitted_luminance: np.ndarray,
    received_luminance: np.ndarray,
    config: DetectorConfig | None = None,
    instrumentation: Instrumentation | None = None,
) -> FeatureExtraction:
    """Deprecated batch-of-1 view of :func:`extract_features_batch`."""
    warnings.warn(
        "extract_features is deprecated; use extract_features_batch",
        DeprecationWarning,
        stacklevel=2,
    )
    return extract_features_batch(
        [(transmitted_luminance, received_luminance)], config, instrumentation
    )[0]


def features_from_signals(
    pre_t: PreprocessedSignal,
    pre_r: PreprocessedSignal,
    config: DetectorConfig | None = None,
    instrumentation: Instrumentation | None = None,
) -> FeatureExtraction:
    """Deprecated batch-of-1 view of :func:`features_from_signals_batch`."""
    warnings.warn(
        "features_from_signals is deprecated; use features_from_signals_batch",
        DeprecationWarning,
        stacklevel=2,
    )
    return features_from_signals_batch([pre_t], [pre_r], config, instrumentation)[0]
