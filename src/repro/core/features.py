"""Feature extraction (Sec. VI): z1..z4 from a pair of luminance signals.

Behaviour features (when changes happen):

* ``z1`` — proportion of the transmitted video's significant changes
  matched in the received video, ``F(T, R) / N`` (Eq. 4).
* ``z2`` — proportion of the received video's significant changes matched
  in the transmitted video, ``G(T, R) / M`` (Eq. 5).

Trend features (how the luminance changes), computed on the
delay-aligned, [0, 1]-normalized smoothed variance signals, cut into two
equal segments:

* ``z3`` — the smaller Pearson correlation coefficient over the segment
  pairs (Eq. 6).
* ``z4`` — the larger DTW distance over the segment pairs, divided by 30
  to keep its scale comparable.

A genuine prover clusters near (1, 1, high, low); a reenactment attacker
falls away on at least one dimension — which is all the LOF model needs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..obs.instrument import Instrumentation
from .config import DetectorConfig
from .delay import align_signals, estimate_delay
from .dtw import dtw_distance
from .matching import ChangeMatch, match_changes
from .preprocessing import PreprocessedSignal, preprocess

__all__ = [
    "FeatureVector",
    "FeatureExtraction",
    "pearson_correlation",
    "normalize_unit",
    "split_segments",
    "extract_features",
    "features_from_signals",
]


@dataclasses.dataclass(frozen=True)
class FeatureVector:
    """The four-dimensional feature point fed to the classifier."""

    z1: float
    z2: float
    z3: float
    z4: float

    def as_array(self) -> np.ndarray:
        return np.array([self.z1, self.z2, self.z3, self.z4], dtype=np.float64)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "FeatureVector":
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != (4,):
            raise ValueError(f"expected 4 features, got shape {arr.shape}")
        return cls(z1=float(arr[0]), z2=float(arr[1]), z3=float(arr[2]), z4=float(arr[3]))


@dataclasses.dataclass(frozen=True)
class FeatureExtraction:
    """Features plus every intermediate (for figures and diagnostics)."""

    features: FeatureVector
    transmitted: PreprocessedSignal
    received: PreprocessedSignal
    matches: tuple[ChangeMatch, ...]
    delay_s: float


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (Eq. 6); 0 when either input is
    constant (no trend to correlate)."""
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be 1-D arrays of equal length")
    if a.size < 2:
        return 0.0
    std_a = a.std()
    std_b = b.std()
    if std_a < 1e-12 or std_b < 1e-12:
        return 0.0
    return float(((a - a.mean()) * (b - b.mean())).mean() / (std_a * std_b))


def normalize_unit(signal: np.ndarray) -> np.ndarray:
    """Scale a signal to [0, 1]; a flat signal maps to all zeros."""
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be 1-D")
    if x.size == 0:
        return x.copy()
    low = x.min()
    span = x.max() - low
    if span < 1e-12:
        return np.zeros_like(x)
    return (x - low) / span


def split_segments(signal: np.ndarray, count: int) -> list[np.ndarray]:
    """Cut a signal into ``count`` equal-length segments (tail dropped)."""
    x = np.asarray(signal, dtype=np.float64)
    if count < 1:
        raise ValueError("count must be >= 1")
    seg_len = x.size // count
    if seg_len < 1:
        raise ValueError(f"signal of length {x.size} too short for {count} segments")
    return [x[i * seg_len : (i + 1) * seg_len] for i in range(count)]


def extract_features(
    transmitted_luminance: np.ndarray,
    received_luminance: np.ndarray,
    config: DetectorConfig | None = None,
    instrumentation: Instrumentation | None = None,
) -> FeatureExtraction:
    """Full Sec. V + Sec. VI pipeline on a pair of raw luminance signals."""
    config = config or DetectorConfig()
    instr = Instrumentation.ensure(instrumentation)
    with instr.span("features.preprocess", stage="preprocessing"):
        pre_t = preprocess(transmitted_luminance, config, config.peak_prominence_screen)
        pre_r = preprocess(received_luminance, config, config.peak_prominence_face)
    return features_from_signals(pre_t, pre_r, config, instrumentation=instr)


def features_from_signals(
    pre_t: PreprocessedSignal,
    pre_r: PreprocessedSignal,
    config: DetectorConfig | None = None,
    instrumentation: Instrumentation | None = None,
) -> FeatureExtraction:
    """Sec. VI features from two already-preprocessed signals."""
    config = config or DetectorConfig()
    instr = Instrumentation.ensure(instrumentation)
    with instr.span("features.match", stage="matching"):
        return _features_from_signals(pre_t, pre_r, config, instr)


def _features_from_signals(
    pre_t: PreprocessedSignal,
    pre_r: PreprocessedSignal,
    config: DetectorConfig,
    instr: Instrumentation,
) -> FeatureExtraction:

    # Boundary guard: a transmitted change too close to the clip end has
    # its reflection truncated by the segmentation; a received change too
    # close to the clip start reflects a pre-clip challenge.  Neither can
    # be matched even for a live face, so they are excluded from N and M.
    guard = config.boundary_guard_s
    clip_end = (pre_t.raw.size - 1) / config.sample_rate_hz
    t_all = pre_t.peak_times
    r_all = pre_r.peak_times
    t_keep = np.nonzero(t_all <= clip_end - guard)[0]
    r_keep = np.nonzero(r_all >= guard)[0]
    t_times = t_all[t_keep]
    r_times = r_all[r_keep]

    matches = match_changes(t_times, r_times, tolerance_s=config.match_tolerance_s)
    # The matcher indexes the guard-trimmed arrays; remap to the untrimmed
    # peak lists so ChangeMatch honours its documented contract
    # ("index into the transmitted/received change list") even when the
    # guard dropped leading or trailing peaks.
    matches = [
        ChangeMatch(
            transmitted_index=int(t_keep[m.transmitted_index]),
            received_index=int(r_keep[m.received_index]),
            time_difference_s=m.time_difference_s,
        )
        for m in matches
    ]
    n = t_times.size
    m = r_times.size
    z1 = len(matches) / n if n > 0 else 0.0
    z2 = len(matches) / m if m > 0 else 0.0

    delay = estimate_delay(matches)
    delay_s = 0.0 if delay is None else delay

    t_norm = normalize_unit(pre_t.smoothed)
    r_norm = normalize_unit(pre_r.smoothed)
    try:
        t_aligned, r_aligned = align_signals(
            t_norm, r_norm, delay_s, config.sample_rate_hz
        )
    except ValueError:
        # Degenerate delay estimate (larger than the clip): fall back to
        # unaligned signals; the trend features will degrade on their own.
        t_aligned, r_aligned = t_norm, r_norm
        delay_s = 0.0

    correlations: list[float] = []
    dtw_distances: list[float] = []
    if t_aligned.size >= 2 * config.segment_count:
        t_segments = split_segments(t_aligned, config.segment_count)
        r_segments = split_segments(r_aligned, config.segment_count)
        for t_seg, r_seg in zip(t_segments, r_segments):
            correlations.append(pearson_correlation(t_seg, r_seg))
            dtw_distances.append(dtw_distance(t_seg, r_seg))
    if correlations:
        z3 = min(correlations)
        z4 = max(dtw_distances) / config.dtw_scale
    else:
        # Too little overlap to measure a trend: maximally suspicious.
        z3 = -1.0
        z4 = float(max(t_norm.size, 1)) / config.dtw_scale

    features = FeatureVector(z1=z1, z2=z2, z3=float(z3), z4=float(z4))
    instr.count("features_clips_total")
    instr.count("features_matched_changes_total", len(matches))
    return FeatureExtraction(
        features=features,
        transmitted=pre_t,
        received=pre_r,
        matches=tuple(matches),
        delay_s=delay_s,
    )
