"""Decision combination across detection attempts (Sec. VII-B).

The detector is cheap enough to trigger repeatedly during a chat; the
paper combines ``D`` single-clip decisions in an equal-weight majority
voting game and declares an attacker when the attacker votes exceed
``0.7 * D`` (the 0.7 calibrated from single-detection accuracy).  This
tolerates individual mistakes in both directions and shrinks the
variance of the final decision (Fig. 14).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from .detector import DetectionResult

__all__ = ["Verdict", "VotingCombiner"]


@dataclasses.dataclass(frozen=True)
class Verdict:
    """Final decision over a set of detection attempts."""

    is_attacker: bool
    reject_votes: int
    total_votes: int
    vote_fraction: float

    @property
    def accept_votes(self) -> int:
        return self.total_votes - self.reject_votes


class VotingCombiner:
    """Equal-weight majority voting over detection attempts."""

    def __init__(self, vote_fraction: float = 0.7) -> None:
        if not 0 < vote_fraction < 1:
            raise ValueError("vote_fraction must lie in (0, 1)")
        self.vote_fraction = vote_fraction

    def combine(self, results: Sequence[DetectionResult]) -> Verdict:
        """Combine attempts; attacker iff rejects exceed fraction * D."""
        if not results:
            raise ValueError("need at least one detection attempt")
        rejects = sum(1 for r in results if r.rejected)
        total = len(results)
        return Verdict(
            is_attacker=rejects > self.vote_fraction * total,
            reject_votes=rejects,
            total_votes=total,
            vote_fraction=self.vote_fraction,
        )

    def combine_conclusive(
        self,
        results: Sequence[DetectionResult],
        conclusive: Sequence[bool],
    ) -> Verdict | None:
        """Vote over the conclusive attempts only.

        Quality-gated verification grades each attempt's evidence before
        it may vote; inconclusive attempts (degraded clips: landmark
        dropout, loss-frozen signal, no challenges) are excluded from the
        denominator ``D`` entirely, instead of counting as accepts or
        rejects.  Returns ``None`` when no attempt is conclusive — the
        honest "cannot judge yet" outcome.
        """
        if len(results) != len(conclusive):
            raise ValueError("results and conclusive must have equal length")
        kept = [r for r, ok in zip(results, conclusive) if ok]
        if not kept:
            return None
        return self.combine(kept)

    def combine_conclusive_bools(
        self,
        rejections: Sequence[bool],
        conclusive: Sequence[bool],
    ) -> Verdict | None:
        """:meth:`combine_conclusive` over raw rejection booleans.

        The streaming gate votes on *effective* rejections — an attempt
        can reject for reasons the LOF result alone does not carry
        (protocol ``REPLAY`` / ``STALE`` bindings) — so the rule needs a
        boolean form with the same inconclusive-exclusion semantics.
        """
        if len(rejections) != len(conclusive):
            raise ValueError("rejections and conclusive must have equal length")
        kept = [bool(r) for r, ok in zip(rejections, conclusive) if ok]
        if not kept:
            return None
        return self.combine_bools(kept)

    def combine_bools(self, rejections: Sequence[bool]) -> Verdict:
        """Same rule over raw per-attempt rejection booleans."""
        if not rejections:
            raise ValueError("need at least one detection attempt")
        rejects = sum(bool(r) for r in rejections)
        total = len(rejections)
        return Verdict(
            is_attacker=rejects > self.vote_fraction * total,
            reject_votes=rejects,
            total_votes=total,
            vote_fraction=self.vote_fraction,
        )
