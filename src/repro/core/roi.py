"""Region-of-interest geometry on the nasal bridge (Sec. IV, Fig. 5).

The lower part of the nasal bridge is the paper's measurement site: it is
robustly located by landmark detection, rarely occluded (unlike eyes that
blink and mouths that talk), and catches the screen light nearly head-on.

Given the landmark API's output, the ROI is the square of side
``l = |b1 - b2|`` centered on the lower nasal-bridge point ``(a1, b1)``,
where ``(a2, b2)`` is the nasal tip — sizing the patch by the
bridge-to-tip distance makes it scale-invariant across cameras and
viewing distances.
"""

from __future__ import annotations

from ..vision.geometry import Rect, square_around
from ..vision.landmarks import FaceLandmarks

__all__ = ["nasal_bridge_roi"]

#: The ROI never collapses below this side length (pixels) even when the
#: face is tiny in the frame; a 1-pixel patch would be all sensor noise.
MIN_ROI_SIDE = 2.0


def nasal_bridge_roi(landmarks: FaceLandmarks) -> Rect:
    """The luminance-measurement square from one frame's landmarks."""
    anchor = landmarks.lower_bridge  # (a1, b1)
    tip = landmarks.nose_tip_center  # (a2, b2)
    side = max(abs(anchor.y - tip.y), MIN_ROI_SIDE)
    return square_around(anchor, side)
