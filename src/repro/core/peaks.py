"""Peak finding with prominence (Sec. V, final stage).

The "traditional peak finding algorithm" the paper applies to each
smoothed variance signal, implemented from scratch: plateau-aware local
maxima, each qualified by its topographic *prominence* (height above the
highest saddle separating it from higher terrain).  The paper gates peaks
at a minimum prominence of 10 (screen signal) or 0.5 (face signal).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Peak", "find_peaks"]


@dataclasses.dataclass(frozen=True)
class Peak:
    """One local maximum of a 1-D signal."""

    index: int
    height: float
    prominence: float


def _local_maxima(x: np.ndarray) -> list[int]:
    """Indices of plateau-aware strict local maxima.

    A plateau (run of equal values) counts as one maximum, reported at
    its midpoint, when both neighbours of the run are strictly lower.
    Signal endpoints are never maxima (their outer side is unknown).
    """
    maxima: list[int] = []
    n = x.size
    i = 1
    while i < n - 1:
        if x[i] <= x[i - 1]:
            i += 1
            continue
        # Ascent found; walk any plateau.
        j = i
        while j < n - 1 and x[j + 1] == x[i]:
            j += 1
        if j < n - 1 and x[j + 1] < x[i]:
            maxima.append((i + j) // 2)
        i = j + 1
    return maxima


def _prominence(x: np.ndarray, peak: int, maxima: list[int]) -> float:
    """Topographic prominence of one peak.

    Walk left and right until terrain rises above the peak (or the signal
    ends), recording the lowest point (saddle) on each side; prominence is
    the peak height minus the higher of the two saddles.
    """
    height = x[peak]

    left_min = height
    i = peak - 1
    while i >= 0 and x[i] <= height:
        left_min = min(left_min, x[i])
        i -= 1
    if i < 0:
        # No higher ground to the left: the left base is the global walk min.
        pass

    right_min = height
    i = peak + 1
    n = x.size
    while i < n and x[i] <= height:
        right_min = min(right_min, x[i])
        i += 1

    return float(height - max(left_min, right_min))


def find_peaks(signal: np.ndarray, min_prominence: float) -> list[Peak]:
    """All local maxima with prominence >= ``min_prominence``.

    Parameters
    ----------
    signal:
        1-D array.
    min_prominence:
        Gate on peak prominence (paper: 10 for screen light, 0.5 for
        face-reflected light).
    """
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be 1-D")
    if min_prominence <= 0:
        raise ValueError("min_prominence must be positive")
    if x.size < 3:
        return []
    maxima = _local_maxima(x)
    peaks = []
    for index in maxima:
        prom = _prominence(x, index, maxima)
        if prom >= min_prominence:
            peaks.append(Peak(index=index, height=float(x[index]), prominence=prom))
    return peaks
