"""Deterministic seed derivation.

Every simulated session is a pure function of one integer seed.  The
session builders fan that seed out to independent components (faces,
expression tracks, ambient light, network links) by spawning child
``SeedSequence``s — the one blessed use of ``numpy.random`` machinery
outside generator construction, which is why it lives in exactly one
place: reprolint's R001 can then treat generator construction as the
only sanctioned randomness API without pattern-matching call sites.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from one parent seed.

    Children are statistically independent of each other and of the
    parent (SeedSequence spawning), and the mapping is a pure function
    of ``(seed, count)`` — same inputs, same children, on every
    platform and process.  Note that the prefix is *not* stable across
    different ``count`` values: ask for all the seeds a call site needs
    in one request.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]
