"""Matching significant luminance changes between the two signals.

Sec. VI defines the behaviour features through two counting functions:
``F(T, R)`` — how many of the transmitted video's significant changes
have a matched change in the received video — and ``G(T, R)`` — the same
from the received side.  The paper leaves the matcher itself unspecified;
we use the natural formulation: a greedy one-to-one assignment that pairs
changes closest in time first, accepting pairs whose time difference is
within a tolerance generous enough to absorb the network round-trip plus
the filter chain's group delay.

With one-to-one pairing ``F`` and ``G`` are both the number of matched
pairs; they differ as *proportions* because they are normalized by the
respective signal's change count (Eqs. 4-5).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["ChangeMatch", "match_changes"]


@dataclasses.dataclass(frozen=True)
class ChangeMatch:
    """One matched pair of significant luminance changes."""

    transmitted_index: int  # index into the transmitted change list
    received_index: int  # index into the received change list
    time_difference_s: float  # received time minus transmitted time

    # The indices refer to whatever arrays were handed to
    # :func:`match_changes`.  Callers that match over a *filtered* view
    # (e.g. the boundary-guard trim in ``features_from_signals``) must
    # remap the indices back to the unfiltered lists before exposing the
    # matches, so the contract above holds for downstream consumers.


def match_changes(
    transmitted_times: np.ndarray,
    received_times: np.ndarray,
    tolerance_s: float,
) -> list[ChangeMatch]:
    """Greedy one-to-one matching of change times.

    Candidate pairs within ``tolerance_s`` are sorted by absolute time
    difference and accepted greedily, each change participating in at
    most one pair.  Returns matches sorted by transmitted time.
    """
    t_times = np.asarray(transmitted_times, dtype=np.float64)
    r_times = np.asarray(received_times, dtype=np.float64)
    if t_times.ndim != 1 or r_times.ndim != 1:
        raise ValueError("change-time arrays must be 1-D")
    if tolerance_s <= 0:
        raise ValueError("tolerance_s must be positive")
    if t_times.size == 0 or r_times.size == 0:
        return []

    candidates: list[tuple[float, int, int]] = []
    for i, t in enumerate(t_times):
        deltas = r_times - t
        for j in np.nonzero(np.abs(deltas) <= tolerance_s)[0]:
            candidates.append((abs(float(deltas[j])), i, int(j)))
    candidates.sort()

    used_t: set[int] = set()
    used_r: set[int] = set()
    matches: list[ChangeMatch] = []
    for _, i, j in candidates:
        if i in used_t or j in used_r:
            continue
        used_t.add(i)
        used_r.add(j)
        matches.append(
            ChangeMatch(
                transmitted_index=i,
                received_index=j,
                time_difference_s=float(r_times[j] - t_times[i]),
            )
        )
    matches.sort(key=lambda m: t_times[m.transmitted_index])
    return matches
