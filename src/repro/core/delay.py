"""Network-delay estimation and removal (Sec. VI).

The received video's reflection trails the transmitted video by the
round-trip network delay plus display/processing latency.  Before
correlating trends, the paper "estimates and removes the delay based on
the average time difference between matched luminance changes" — which is
exactly :func:`estimate_delay` + :func:`align_signals`.
"""

from __future__ import annotations

import numpy as np

from .matching import ChangeMatch

__all__ = ["estimate_delay", "align_signals"]


def estimate_delay(matches: list[ChangeMatch]) -> float | None:
    """Mean received-minus-transmitted time difference over matches.

    Returns ``None`` when there are no matches to estimate from.
    """
    if not matches:
        return None
    return float(np.mean([m.time_difference_s for m in matches]))


def align_signals(
    transmitted: np.ndarray,
    received: np.ndarray,
    delay_s: float,
    sample_rate_hz: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Shift the received signal back by the estimated delay and trim
    both signals to their overlapping span.

    A positive ``delay_s`` means the received signal lags: sample ``i`` of
    the output pair holds transmitted[i] against received[i + delay].
    Negative delays (possible when noise mis-matches changes) shift the
    other way.  Raises when the overlap would be empty.
    """
    t = np.asarray(transmitted, dtype=np.float64)
    r = np.asarray(received, dtype=np.float64)
    if t.ndim != 1 or r.ndim != 1:
        raise ValueError("signals must be 1-D")
    if sample_rate_hz <= 0:
        raise ValueError("sample_rate_hz must be positive")
    shift = int(round(delay_s * sample_rate_hz))
    if shift >= 0:
        t_aligned = t
        r_aligned = r[shift:]
    else:
        t_aligned = t[-shift:]
        r_aligned = r
    n = min(t_aligned.size, r_aligned.size)
    if n < 1:
        raise ValueError(
            f"delay of {delay_s:.2f}s leaves no overlap between signals "
            f"of lengths {t.size} and {r.size}"
        )
    return t_aligned[:n].copy(), r_aligned[:n].copy()