"""Local Outlier Factor (Sec. VII-A), implemented from scratch.

The paper's classifier needs no attacker data and no per-user enrollment:
it scores a new feature vector against a small bank of *legitimate*
feature vectors by comparing local densities (Breunig et al., the paper's
[22]).  A genuine clip lands inside the legitimate cluster (LOF near 1);
an attack clip is isolated on at least one feature dimension, giving a
local density far below its neighbours' and an LOF well above 1.

Semantics here are *novelty detection*: the bank is fixed at fit time and
query points are scored against it (they never become each other's
neighbours), matching the paper's "dataset collected from legitimate
users plus one new data from the untrusted user".
"""

from __future__ import annotations

import warnings

import numpy as np

__all__ = ["LocalOutlierFactor", "SmallBankWarning"]


class SmallBankWarning(UserWarning):
    """The training bank is too small for the requested ``n_neighbors``.

    Raised (as a warning) when ``fit`` receives fewer than
    ``n_neighbors + 1`` points and silently-degrading ``k`` would hide a
    real operational problem: LRU-evicted tenant banks that refit from a
    handful of samples score with a much coarser density estimate than
    the paper's k=5 — acceptable as a degraded mode, but never silently.
    """


class LocalOutlierFactor:
    """k-NN local-density outlier scorer.

    Parameters
    ----------
    n_neighbors:
        ``k`` of the model (paper: 5).  Capped at ``n_train - 1`` when
        the bank is small; the cap emits :class:`SmallBankWarning` (or
        raises ``ValueError`` with ``strict_neighbors=True``) so a
        degraded per-tenant model is always an explicit event.
    strict_neighbors:
        When true, a bank smaller than ``n_neighbors + 1`` is an error
        instead of a clamp-and-warn.
    """

    def __init__(self, n_neighbors: int = 5, strict_neighbors: bool = False) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.strict_neighbors = strict_neighbors
        self._train: np.ndarray | None = None
        self._train_k_distance: np.ndarray | None = None
        self._train_lrd: np.ndarray | None = None
        self._effective_k: int = n_neighbors

    @property
    def is_fitted(self) -> bool:
        return self._train is not None

    @property
    def effective_neighbors(self) -> int:
        """The ``k`` actually in use (may be below ``n_neighbors`` after
        fitting on a small bank)."""
        return self._effective_k

    @property
    def train_size(self) -> int:
        if self._train is None:
            raise RuntimeError("model is not fitted")
        return int(self._train.shape[0])

    def fit(self, X: np.ndarray) -> "LocalOutlierFactor":
        """Fit on the legitimate bank (shape ``(n, d)``, n >= 2)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("training data must be 2-D (n_samples, n_features)")
        n = X.shape[0]
        if n < 2:
            raise ValueError("need at least 2 training points")
        if not np.all(np.isfinite(X)):
            raise ValueError("training data must be finite")
        if n - 1 < self.n_neighbors:
            if self.strict_neighbors:
                raise ValueError(
                    f"bank of {n} points cannot support n_neighbors="
                    f"{self.n_neighbors} (needs >= {self.n_neighbors + 1}); "
                    "pass a larger bank or lower n_neighbors"
                )
            warnings.warn(
                f"training bank of {n} points supports at most k={n - 1} "
                f"neighbors; clamping n_neighbors from {self.n_neighbors} "
                "— density estimates will be coarser than configured",
                SmallBankWarning,
                stacklevel=2,
            )
        self._train = X.copy()
        self._effective_k = min(self.n_neighbors, n - 1)
        k = self._effective_k

        # Pairwise distances within the bank.
        diffs = X[:, None, :] - X[None, :, :]
        dist = np.sqrt((diffs**2).sum(axis=2))
        np.fill_diagonal(dist, np.inf)

        # k-distance and k-neighborhood of every training point.
        order = np.argsort(dist, axis=1)
        neighbor_idx = order[:, :k]
        self._train_k_distance = dist[np.arange(n), order[:, k - 1]]

        # Local reachability density of every training point:
        # lrd(p) = |N_k(p)| / sum_{o in N_k(p)} max(k-dist(o), d(p, o))
        reach = np.maximum(
            self._train_k_distance[neighbor_idx],
            dist[np.arange(n)[:, None], neighbor_idx],
        )
        reach_sum = reach.sum(axis=1)
        with np.errstate(divide="ignore"):
            self._train_lrd = np.where(reach_sum > 0, k / reach_sum, np.inf)
        return self

    def _score_one(self, z: np.ndarray) -> float:
        assert self._train is not None
        assert self._train_k_distance is not None
        assert self._train_lrd is not None
        k = self._effective_k

        dist = np.sqrt(((self._train - z) ** 2).sum(axis=1))
        order = np.argsort(dist)
        neighbors = order[:k]

        # Local reachability density of the query point (Eq. 7).
        reach = np.maximum(self._train_k_distance[neighbors], dist[neighbors])
        reach_sum = reach.sum()
        lrd_z = np.inf if reach_sum <= 0 else k / reach_sum

        # LOF (Eq. 8): mean neighbour density over own density.
        neighbor_lrd = self._train_lrd[neighbors]
        finite = neighbor_lrd[np.isfinite(neighbor_lrd)]
        if np.isinf(lrd_z):
            # The query coincides with a dense cluster of training points:
            # maximal own-density, clear inlier.
            return 1.0
        if finite.size == 0:
            # All neighbours are duplicates of each other (infinite
            # density) while the query is not among them: clear outlier.
            return np.inf
        mean_neighbor_lrd = float(neighbor_lrd.mean()) if finite.size == neighbor_lrd.size else float(np.inf)
        if np.isinf(mean_neighbor_lrd):
            return np.inf
        return mean_neighbor_lrd / lrd_z

    def score_samples(self, Z: np.ndarray) -> np.ndarray:
        """LOF value of each query point (shape ``(m, d)`` -> ``(m,)``).

        Values near 1 mean the point sits at its neighbours' density;
        values well above 1 mean outlier (the paper rejects above tau=3).
        """
        if self._train is None:
            raise RuntimeError("fit the model before scoring")
        Z = np.asarray(Z, dtype=np.float64)
        if Z.ndim == 1:
            Z = Z[None, :]
        if Z.ndim != 2 or Z.shape[1] != self._train.shape[1]:
            raise ValueError(
                f"query shape {Z.shape} incompatible with training "
                f"dimension {self._train.shape[1]}"
            )
        if not np.all(np.isfinite(Z)):
            raise ValueError("query data must be finite")
        return np.array([self._score_one(z) for z in Z], dtype=np.float64)

    def score(self, z: np.ndarray) -> float:
        """LOF value of a single query point."""
        return float(self.score_samples(np.asarray(z))[0])
