"""Online (streaming) verification during a live call.

The batch :class:`~repro.core.pipeline.ChatVerifier` consumes complete
recordings; a deployed system instead watches the call *as it happens*:
frames arrive one by one, a detection attempt fires every clip interval,
and an alert is raised as soon as the voting rule condemns the peer
(Sec. III-B: "our detection methods can be triggered multiple times
during the real-time video chat; if the untrusted user is detected as an
attacker, an alert will be sent").

:class:`StreamingVerifier` implements that loop:

* ``push(transmitted_frame, received_frame)`` — feed the verifier each
  tick's pair of frames (what Alice's app already has in hand).
* every ``clip_duration_s`` worth of samples, a single-clip detection
  runs, is **quality-gated**, and joins the rolling vote window;
* ``state`` summarizes the call so far; ``on_alert`` fires once, the
  first time the vote crosses the attacker line.

Challenge binding
-----------------
When a :class:`~repro.protocol.gate.ProtocolGate` is bound to the
verifier (:meth:`StreamingVerifier.bind_protocol`), every completed
clip's peak times are additionally checked against the session's
nonce-derived challenge schedule.  A response that echoes a *prior*
session's schedule grades the attempt ``REPLAY``; one that echoes the
live schedule outside the freshness window grades ``STALE``.  Both are
rejections in the vote — the LOF cannot produce them on its own,
because a replayed genuine recording is a perfectly plausible response
to *somebody's* challenges, just not to this session's.

Quality gating
--------------
A live call rides a lossy channel: packet-loss bursts freeze the received
video, landmark dropout blinds the ROI probe, jitter spikes starve the
playout.  A clip degraded that way carries the *channel's* behaviour, not
the peer's — classifying it anyway would condemn a live user (or mask an
attacker who suppresses the channel).  Each completed clip is therefore
scored (:class:`ClipQuality`: landmark-hit fraction, frozen-sample
fraction, challenge/change counts) against the ``gate_*`` thresholds on
:class:`~repro.core.config.DetectorConfig`; failing clips become
``INCONCLUSIVE`` attempts that are excluded from the
:class:`~repro.core.voting.VotingCombiner` denominator entirely.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:
    from ..protocol.gate import BindingReport, ProtocolGate

from ..obs.instrument import Instrumentation
from ..video.frame import Frame
from ..video.luminance import frame_mean_luminance
from ..vision.landmarks import LandmarkDetector
from .config import DetectorConfig
from .detector import DetectionResult, LivenessDetector
from .luminance import roi_mean_luminance
from .pipeline import VerificationReport
from .roi import nasal_bridge_roi
from .voting import Verdict, VotingCombiner

__all__ = [
    "AttemptVerdict",
    "CallStatus",
    "ClipQuality",
    "GatedAttempt",
    "QualityIssue",
    "StreamingState",
    "StreamingVerifier",
]


class CallStatus(enum.Enum):
    """Rolling judgement of the remote peer."""

    GATHERING = "gathering"  # not enough samples for the first attempt
    LIVE = "live"  # attempts so far accept the peer
    SUSPICIOUS = "suspicious"  # rejections present but below the vote line
    ATTACKER = "attacker"  # voting rule crossed; alert raised
    INCONCLUSIVE = "inconclusive"  # attempts exist but none carried evidence
    REPLAY = "replay"  # condemned, dominated by replayed-schedule bindings
    STALE = "stale"  # condemned, dominated by out-of-window responses


class AttemptVerdict(enum.Enum):
    """Per-clip outcome after quality gating and challenge binding."""

    ACCEPT = "accept"
    REJECT = "reject"
    INCONCLUSIVE = "inconclusive"
    REPLAY = "replay"  # response echoes a prior session's schedule
    STALE = "stale"  # response echoes this schedule, too late to be live


class QualityIssue(enum.Enum):
    """Reasons a clip's attempt is graded inconclusive."""

    LOW_LANDMARK_COVERAGE = "too few received samples had a usable landmark fix"
    FROZEN_SIGNAL = "too many received samples were loss-concealed (frozen)"
    NO_CHALLENGES = "transmitted clip carried no significant luminance changes"
    CHALLENGE_OBSCURED = "a challenge's response window was almost entirely stale"
    SPURIOUS_RECEIVED_CHANGE = "an unmatched received change sits on stale samples"
    CHALLENGE_UNDELIVERED = "transmitted clip never carried the committed schedule"
    NO_RESPONSE_EVIDENCE = "no received changes existed for the binding check"


# A transmitted challenge is unobservable when the received samples
# around its expected response are mostly stale.  The matcher needs the
# majority of the ±match_tolerance window live to see the response (the
# smoothing chain spreads response energy over seconds, so small holes
# heal): empirically, in-guard challenges that go unmatched under channel
# faults sit at window-stale fractions >= ~0.6 while clean-channel clips
# stay below ~0.05, so 0.5 gates every channel-explained miss with margin
# on both sides — toward "inconclusive", the safe direction.
_OBSCURED_STALE_FRACTION = 0.5
# An unmatched received change is suspect when a non-trivial fraction of
# the samples just before it are stale: freeze/unfreeze boundaries step
# the held luminance back to live, which manufactures exactly such a
# change, and the smoothing chain places the resulting signal peak about
# a second *after* the raw jump — so the window looks mostly backward.
# Isolated single-tick concealments (clean-channel jitter) stay below it.
_SPURIOUS_STALE_FRACTION = 0.2
_SPURIOUS_WINDOW_BACK_S = 1.5
_SPURIOUS_WINDOW_FWD_S = 0.5


def _condemned_status(verdicts: list[AttemptVerdict], reject_votes: int) -> CallStatus:
    """Flavor of a crossed vote line: plain attacker, replay, or stale.

    When protocol rejections (``REPLAY`` / ``STALE``) supplied at least
    half of the condemning votes, the status names the protocol finding
    — that is the attribution the binding layer exists to provide.  The
    majority flavor within the protocol rejections wins; replay on a tie
    (the graver accusation).
    """
    replay = sum(1 for v in verdicts if v is AttemptVerdict.REPLAY)
    stale = sum(1 for v in verdicts if v is AttemptVerdict.STALE)
    if replay + stale and (replay + stale) * 2 >= reject_votes:
        return CallStatus.REPLAY if replay >= stale else CallStatus.STALE
    return CallStatus.ATTACKER


def _gated_protocol_status(attempts: list["GatedAttempt"]) -> CallStatus:
    """Status of a call whose vote produced no conclusive verdict.

    Ordinarily INCONCLUSIVE, but when at least half of the attempts
    carry a condemning binding — the response provably echoed a
    committed schedule too late, or a prior session's schedule — the
    protocol layer refines the label even though the clips were
    quality-gated.  This never flips an acceptance (the call was not
    going to be accepted anyway); it only attributes the failure.
    """
    from ..protocol.commitment import BindingOutcome

    outcomes = [a.binding.outcome for a in attempts if a.binding is not None]
    replay = sum(1 for o in outcomes if o is BindingOutcome.REPLAY)
    stale = sum(1 for o in outcomes if o is BindingOutcome.STALE)
    if replay + stale and (replay + stale) * 2 >= len(attempts):
        return CallStatus.REPLAY if replay >= stale else CallStatus.STALE
    return CallStatus.INCONCLUSIVE


def _window_stale_fraction(
    stale: np.ndarray, lo_s: float, hi_s: float, rate: float
) -> float:
    """Fraction of stale samples inside the [lo_s, hi_s] time window."""
    lo = max(0, int(np.floor(lo_s * rate)))
    hi = min(stale.size, int(np.ceil(hi_s * rate)) + 1)
    if hi <= lo:
        return 0.0
    return float(stale[lo:hi].mean())


@dataclasses.dataclass(frozen=True)
class ClipQuality:
    """Evidential quality of one streaming clip."""

    landmark_hit_fraction: float
    frozen_fraction: float
    transmitted_changes: int
    received_changes: int
    issues: tuple[QualityIssue, ...] = ()
    #: Fraction of samples that carried no live measurement at all —
    #: frozen/concealed frames *or* landmark misses (the union, not the
    #: sum of the two fractions above).
    stale_fraction: float = 0.0

    @property
    def conclusive(self) -> bool:
        return not self.issues


#: Attempt verdicts that count as rejections in the vote.
_REJECTING_VERDICTS = frozenset(
    {AttemptVerdict.REJECT, AttemptVerdict.REPLAY, AttemptVerdict.STALE}
)

#: Statuses that condemn the peer and fire ``on_alert``.
_CONDEMNED_STATUSES = frozenset(
    {CallStatus.ATTACKER, CallStatus.REPLAY, CallStatus.STALE}
)


@dataclasses.dataclass(frozen=True)
class GatedAttempt:
    """One detection attempt plus its quality grade and binding."""

    result: DetectionResult
    quality: ClipQuality
    binding: "BindingReport | None" = None

    @property
    def conclusive(self) -> bool:
        return self.quality.conclusive

    @property
    def verdict(self) -> AttemptVerdict:
        if not self.quality.conclusive:
            return AttemptVerdict.INCONCLUSIVE
        if self.binding is not None:
            from ..protocol.commitment import BindingOutcome

            if self.binding.outcome is BindingOutcome.REPLAY:
                return AttemptVerdict.REPLAY
            if self.binding.outcome is BindingOutcome.STALE:
                return AttemptVerdict.STALE
            if self.binding.enforced:
                return AttemptVerdict.REJECT
        return AttemptVerdict.REJECT if self.result.rejected else AttemptVerdict.ACCEPT


@dataclasses.dataclass(frozen=True)
class StreamingState:
    """Snapshot of a streaming verification session."""

    status: CallStatus
    samples_buffered: int
    attempts: tuple[DetectionResult, ...]
    verdict: Verdict | None
    qualities: tuple[ClipQuality, ...] = ()
    inconclusive_attempts: int = 0

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def conclusive_attempts(self) -> int:
        return len(self.attempts) - self.inconclusive_attempts

    @property
    def report(self) -> VerificationReport:
        """The snapshot as the same shape the batch verifier returns."""
        return VerificationReport(verdict=self.verdict, attempts=self.attempts)


class StreamingVerifier:
    """Incremental verifier for a live call.

    Parameters
    ----------
    detector:
        A *trained* :class:`LivenessDetector` (the bank can come from any
        users; see Fig. 11).
    landmark_detector:
        Shared landmark detector for the received frames.
    vote_window:
        Number of most recent attempts entering the majority vote
        (``None`` = all attempts since the call began).  Inconclusive
        attempts occupy window slots (they are real clock time) but never
        vote.
    on_alert:
        Callback invoked exactly once when the status first becomes
        :attr:`CallStatus.ATTACKER`; receives the final state.
    instrumentation:
        Optional observability handle.  Per-clip gate outcomes land in
        ``streaming_attempts_total{verdict=}`` and
        ``streaming_quality_issues_total{issue=}`` (so
        ``challenge_obscured`` / ``spurious_received_change`` counts are
        visible per run); alerts in ``streaming_alerts_total``.  The
        per-frame ``push`` path is deliberately not instrumented.
    """

    def __init__(
        self,
        detector: LivenessDetector,
        landmark_detector: LandmarkDetector | None = None,
        vote_window: int | None = None,
        on_alert: Callable[[StreamingState], None] | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if not detector.is_trained:
            raise ValueError("the liveness detector must be trained first")
        if vote_window is not None and vote_window < 1:
            raise ValueError("vote_window must be >= 1")
        self.detector = detector
        self.config: DetectorConfig = detector.config
        self.landmark_detector = landmark_detector or LandmarkDetector()
        self.vote_window = vote_window
        self.on_alert = on_alert
        self.instrumentation = Instrumentation.ensure(instrumentation)
        self.combiner = VotingCombiner(self.config.vote_fraction)

        self._t_samples: list[float] = []
        self._r_samples: list[float] = []
        self._stale_flags: list[bool] = []  # frozen frame OR landmark miss
        self._last_roi_value: float | None = None
        self._lead_misses = 0  # samples concealed before the first valid ROI
        self._clip_hits = 0
        self._clip_frozen = 0
        self._attempts: list[GatedAttempt] = []
        self._alerted = False
        self._protocol_gate: ProtocolGate | None = None

    # ------------------------------------------------------------------

    def bind_protocol(self, gate: "ProtocolGate | None") -> None:
        """Attach (or detach) this session's challenge-binding gate.

        Once bound, every completed clip's peak times are graded against
        the gate's nonce-derived schedule and the attempt verdict gains
        the ``REPLAY`` / ``STALE`` vocabulary.  With no gate bound the
        verifier behaves exactly as before — bit for bit.
        """
        self._protocol_gate = gate

    @property
    def protocol_gate(self) -> "ProtocolGate | None":
        return self._protocol_gate

    def push(self, transmitted: Frame, received: Frame) -> GatedAttempt | None:
        """Feed one tick's frame pair; returns the fresh gated attempt
        when one completed on this tick, else ``None``.

        Frames are expected at the detector's sampling rate (the
        application samples its capture/playout streams at 10 Hz).
        """
        self._t_samples.append(frame_mean_luminance(transmitted))
        self._push_received(received)
        if len(self._t_samples) < self.config.samples_per_clip:
            return None
        return self._complete_attempt()

    def _push_received(self, received: Frame) -> None:
        # Loss concealment upstream marks held/synthesized frames; a clip
        # dominated by them measures the channel, not the peer.
        frozen = bool(
            received.metadata.get("fresh") is False or received.metadata.get("concealed")
        )
        if frozen:
            self._clip_frozen += 1
        landmarks = self.landmark_detector.detect(received.pixels)
        value = None
        if landmarks is not None:
            value = roi_mean_luminance(received, nasal_bridge_roi(landmarks))
        # A sample is stale when it carries no live measurement — the
        # frame is a frozen repeat, or the tracker had no fix and the
        # signal holds its last value either way.
        self._stale_flags.append(frozen or value is None)
        if value is not None:
            self._clip_hits += 1
            if self._lead_misses:
                # Backfill leading misses with the first valid ROI value.
                # A hard 0.0 placeholder would survive as a phantom
                # luminance step — a fake "significant change" at clip
                # start — exactly what the batch extractor's leading-gap
                # backfill prevents.
                for i in range(1, self._lead_misses + 1):
                    self._r_samples[-i] = value
                self._lead_misses = 0
            self._last_roi_value = value
            self._r_samples.append(value)
            return
        if self._last_roi_value is None:
            # No valid ROI seen yet this call: placeholder, rewritten by
            # the first hit.  An all-miss clip stays flat at zero — no
            # phantom change, and the quality gate marks it inconclusive.
            self._r_samples.append(0.0)
            self._lead_misses += 1
        else:
            # Hold-last concealment, mirroring the batch extractor.
            self._r_samples.append(self._last_roi_value)

    def _complete_attempt(self) -> GatedAttempt:
        t_lum = np.array(self._t_samples)
        r_lum = np.array(self._r_samples)
        stale = np.array(self._stale_flags, dtype=bool)
        samples = len(self._t_samples)
        hits = self._clip_hits
        frozen = self._clip_frozen
        self._t_samples.clear()
        self._r_samples.clear()
        self._stale_flags.clear()
        self._lead_misses = 0
        self._clip_hits = 0
        self._clip_frozen = 0
        instr = self.instrumentation
        with instr.span("streaming.attempt", stage="verdict"):
            result = self.detector.verify_clip(t_lum, r_lum, instrumentation=instr)
            binding = None
            if self._protocol_gate is not None:
                extraction = result.extraction
                binding = self._protocol_gate.grade(
                    extraction.transmitted.peak_times if extraction else (),
                    extraction.received.peak_times if extraction else (),
                )
            attempt = GatedAttempt(
                result=result,
                quality=self._grade(
                    result,
                    hits=hits,
                    frozen=frozen,
                    samples=samples,
                    stale=stale,
                    binding=binding,
                ),
                binding=binding,
            )
        instr.count("streaming_attempts_total", verdict=attempt.verdict.value)
        for issue in attempt.quality.issues:
            instr.count("streaming_quality_issues_total", issue=issue.name.lower())
        self._attempts.append(attempt)
        if self.on_alert is not None and not self._alerted:
            state = self.state
            if state.status in _CONDEMNED_STATUSES:
                self._alerted = True
                instr.count("streaming_alerts_total")
                self.on_alert(state)
        return attempt

    def _grade(
        self,
        result: DetectionResult,
        hits: int,
        frozen: int,
        samples: int,
        stale: np.ndarray,
        binding: "BindingReport | None" = None,
    ) -> ClipQuality:
        """Score the clip's evidence against the config's gate thresholds."""
        config = self.config
        hit_fraction = hits / samples if samples else 0.0
        frozen_fraction = frozen / samples if samples else 0.0
        stale_fraction = float(stale.mean()) if stale.size else 0.0
        extraction = result.extraction
        t_changes = extraction.transmitted.change_count if extraction else 0
        r_changes = extraction.received.change_count if extraction else 0
        issues: list[QualityIssue] = []
        if hit_fraction < config.gate_min_landmark_fraction:
            issues.append(QualityIssue.LOW_LANDMARK_COVERAGE)
        if frozen_fraction > config.gate_max_frozen_fraction:
            issues.append(QualityIssue.FROZEN_SIGNAL)
        if t_changes < config.gate_min_transmitted_changes:
            issues.append(QualityIssue.NO_CHALLENGES)
        issues.extend(self._stale_peak_issues(extraction, stale, samples))
        if binding is not None:
            from ..protocol.commitment import BindingOutcome

            # A schedule that never reached the transmitted video is the
            # verifier's own fault — the binding cannot judge the peer,
            # so the clip must not vote (same philosophy as the quality
            # gate proper).  A response with no peaks on a *clean*
            # channel, by contrast, is the strongest attack evidence the
            # paper has — only when the clip is already gated for
            # channel damage does the missing evidence become a quality
            # explanation rather than an indictment.
            if binding.outcome is BindingOutcome.UNDELIVERED:
                issues.append(QualityIssue.CHALLENGE_UNDELIVERED)
            elif binding.outcome is BindingOutcome.NO_EVIDENCE and issues:
                issues.append(QualityIssue.NO_RESPONSE_EVIDENCE)
        return ClipQuality(
            landmark_hit_fraction=hit_fraction,
            frozen_fraction=frozen_fraction,
            transmitted_changes=t_changes,
            received_changes=r_changes,
            issues=tuple(issues),
            stale_fraction=stale_fraction,
        )

    def _stale_peak_issues(
        self, extraction, stale: np.ndarray, samples: int
    ) -> list[QualityIssue]:
        """Per-change staleness checks: was each challenge observable, and
        is each unmatched received change explainable by the channel?

        Only the peaks inside the boundary guard are considered — the
        same population the z1/z2 denominators count.
        """
        if extraction is None or not stale.size or not stale.any():
            return []
        config = self.config
        rate = config.sample_rate_hz
        tol = config.match_tolerance_s
        guard = config.boundary_guard_s
        clip_end = (samples - 1) / rate
        issues: list[QualityIssue] = []
        for tp in extraction.transmitted.peak_times:
            if tp > clip_end - guard:
                continue
            frac = _window_stale_fraction(stale, tp - tol, tp + tol, rate)
            if frac >= _OBSCURED_STALE_FRACTION:
                issues.append(QualityIssue.CHALLENGE_OBSCURED)
                break
        matched_r = {match.received_index for match in extraction.matches}
        for i, rp in enumerate(extraction.received.peak_times):
            if i in matched_r or rp < guard:
                continue
            frac = _window_stale_fraction(
                stale, rp - _SPURIOUS_WINDOW_BACK_S, rp + _SPURIOUS_WINDOW_FWD_S, rate
            )
            if frac >= _SPURIOUS_STALE_FRACTION:
                issues.append(QualityIssue.SPURIOUS_RECEIVED_CHANGE)
                break
        return issues

    # ------------------------------------------------------------------

    @property
    def state(self) -> StreamingState:
        """Current rolling judgement (vote over conclusive attempts only)."""
        attempts = self._attempts
        if self.vote_window is not None:
            attempts = attempts[-self.vote_window :]
        if not attempts:
            return StreamingState(
                status=CallStatus.GATHERING,
                samples_buffered=len(self._t_samples),
                attempts=(),
                verdict=None,
            )
        verdicts = [a.verdict for a in attempts]
        verdict = self.combiner.combine_conclusive_bools(
            [v in _REJECTING_VERDICTS for v in verdicts],
            [a.conclusive for a in attempts],
        )
        if verdict is None:
            status = _gated_protocol_status(attempts)
        elif verdict.is_attacker:
            status = _condemned_status(verdicts, verdict.reject_votes)
        elif verdict.reject_votes > 0:
            status = CallStatus.SUSPICIOUS
        else:
            status = CallStatus.LIVE
        return StreamingState(
            status=status,
            samples_buffered=len(self._t_samples),
            attempts=tuple(a.result for a in attempts),
            verdict=verdict,
            qualities=tuple(a.quality for a in attempts),
            inconclusive_attempts=sum(1 for a in attempts if not a.conclusive),
        )

    @property
    def all_attempts(self) -> tuple[DetectionResult, ...]:
        """Every attempt since the call began (ignores the vote window)."""
        return tuple(a.result for a in self._attempts)

    @property
    def gated_attempts(self) -> tuple[GatedAttempt, ...]:
        """Every gated attempt since the call began, with its quality."""
        return tuple(self._attempts)

    def reset(self) -> None:
        """Forget all evidence (a new call with the same enrollment).

        A recycled verifier must be *bit-identical* to a fresh one — the
        service layer pools verifiers across sessions, and any state that
        leaks through a reset would make a session's verdict depend on
        which pooled instance served it.  That covers the obvious sample
        buffers and quality counters, but also the landmark detector's
        jitter RNG, which advances on every detection and would otherwise
        replay a different jitter sequence on the next call.
        """
        self._t_samples.clear()
        self._r_samples.clear()
        self._stale_flags.clear()
        self._last_roi_value = None
        self._lead_misses = 0
        self._clip_hits = 0
        self._clip_frozen = 0
        self._attempts.clear()
        self._alerted = False
        self._protocol_gate = None
        self.landmark_detector.reset()
