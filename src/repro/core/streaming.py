"""Online (streaming) verification during a live call.

The batch :class:`~repro.core.pipeline.ChatVerifier` consumes complete
recordings; a deployed system instead watches the call *as it happens*:
frames arrive one by one, a detection attempt fires every clip interval,
and an alert is raised as soon as the voting rule condemns the peer
(Sec. III-B: "our detection methods can be triggered multiple times
during the real-time video chat; if the untrusted user is detected as an
attacker, an alert will be sent").

:class:`StreamingVerifier` implements that loop:

* ``push(transmitted_frame, received_frame)`` — feed the verifier each
  tick's pair of frames (what Alice's app already has in hand).
* every ``clip_duration_s`` worth of samples, a single-clip detection
  runs and joins the rolling vote window;
* ``state`` summarizes the call so far; ``on_alert`` fires once, the
  first time the vote crosses the attacker line.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable

import numpy as np

from ..video.frame import Frame
from ..video.luminance import frame_mean_luminance
from ..vision.landmarks import LandmarkDetector
from .config import DetectorConfig
from .detector import DetectionResult, LivenessDetector
from .luminance import roi_mean_luminance
from .pipeline import VerificationReport
from .roi import nasal_bridge_roi
from .voting import Verdict, VotingCombiner

__all__ = ["CallStatus", "StreamingState", "StreamingVerifier"]


class CallStatus(enum.Enum):
    """Rolling judgement of the remote peer."""

    GATHERING = "gathering"  # not enough samples for the first attempt
    LIVE = "live"  # attempts so far accept the peer
    SUSPICIOUS = "suspicious"  # rejections present but below the vote line
    ATTACKER = "attacker"  # voting rule crossed; alert raised


@dataclasses.dataclass(frozen=True)
class StreamingState:
    """Snapshot of a streaming verification session."""

    status: CallStatus
    samples_buffered: int
    attempts: tuple[DetectionResult, ...]
    verdict: Verdict | None

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def report(self) -> VerificationReport:
        """The snapshot as the same shape the batch verifier returns."""
        return VerificationReport(verdict=self.verdict, attempts=self.attempts)


class StreamingVerifier:
    """Incremental verifier for a live call.

    Parameters
    ----------
    detector:
        A *trained* :class:`LivenessDetector` (the bank can come from any
        users; see Fig. 11).
    landmark_detector:
        Shared landmark detector for the received frames.
    vote_window:
        Number of most recent attempts entering the majority vote
        (``None`` = all attempts since the call began).
    on_alert:
        Callback invoked exactly once when the status first becomes
        :attr:`CallStatus.ATTACKER`; receives the final state.
    """

    def __init__(
        self,
        detector: LivenessDetector,
        landmark_detector: LandmarkDetector | None = None,
        vote_window: int | None = None,
        on_alert: Callable[[StreamingState], None] | None = None,
    ) -> None:
        if not detector.is_trained:
            raise ValueError("the liveness detector must be trained first")
        if vote_window is not None and vote_window < 1:
            raise ValueError("vote_window must be >= 1")
        self.detector = detector
        self.config: DetectorConfig = detector.config
        self.landmark_detector = landmark_detector or LandmarkDetector()
        self.vote_window = vote_window
        self.on_alert = on_alert
        self.combiner = VotingCombiner(self.config.vote_fraction)

        self._t_samples: list[float] = []
        self._r_samples: list[float] = []
        self._last_roi_value: float | None = None
        self._attempts: list[DetectionResult] = []
        self._alerted = False

    # ------------------------------------------------------------------

    def push(self, transmitted: Frame, received: Frame) -> DetectionResult | None:
        """Feed one tick's frame pair; returns a fresh attempt when one
        completed on this tick, else ``None``.

        Frames are expected at the detector's sampling rate (the
        application samples its capture/playout streams at 10 Hz).
        """
        self._t_samples.append(frame_mean_luminance(transmitted))
        self._r_samples.append(self._extract_roi(received))
        if len(self._t_samples) < self.config.samples_per_clip:
            return None
        return self._complete_attempt()

    def _extract_roi(self, received: Frame) -> float:
        landmarks = self.landmark_detector.detect(received.pixels)
        value = None
        if landmarks is not None:
            value = roi_mean_luminance(received, nasal_bridge_roi(landmarks))
        if value is None:
            # Hold-last concealment, mirroring the batch extractor.
            value = self._last_roi_value if self._last_roi_value is not None else 0.0
        self._last_roi_value = value
        return value

    def _complete_attempt(self) -> DetectionResult:
        t_lum = np.array(self._t_samples)
        r_lum = np.array(self._r_samples)
        self._t_samples.clear()
        self._r_samples.clear()
        result = self.detector.verify_clip(t_lum, r_lum)
        self._attempts.append(result)
        if self.on_alert is not None and not self._alerted:
            state = self.state
            if state.status is CallStatus.ATTACKER:
                self._alerted = True
                self.on_alert(state)
        return result

    # ------------------------------------------------------------------

    @property
    def state(self) -> StreamingState:
        """Current rolling judgement."""
        attempts = self._attempts
        if self.vote_window is not None:
            attempts = attempts[-self.vote_window :]
        if not attempts:
            return StreamingState(
                status=CallStatus.GATHERING,
                samples_buffered=len(self._t_samples),
                attempts=(),
                verdict=None,
            )
        verdict = self.combiner.combine(attempts)
        if verdict.is_attacker:
            status = CallStatus.ATTACKER
        elif verdict.reject_votes > 0:
            status = CallStatus.SUSPICIOUS
        else:
            status = CallStatus.LIVE
        return StreamingState(
            status=status,
            samples_buffered=len(self._t_samples),
            attempts=tuple(attempts),
            verdict=verdict,
        )

    @property
    def all_attempts(self) -> tuple[DetectionResult, ...]:
        """Every attempt since the call began (ignores the vote window)."""
        return tuple(self._attempts)

    def reset(self) -> None:
        """Forget all evidence (a new call with the same enrollment)."""
        self._t_samples.clear()
        self._r_samples.clear()
        self._last_roi_value = None
        self._attempts.clear()
        self._alerted = False
