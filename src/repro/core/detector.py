"""Single-clip fake-video detection (Sec. VII-A).

:class:`LivenessDetector` is the deployable unit: fit it once on a bank
of legitimate feature vectors (from *any* users — the paper shows
training on other volunteers' data works as well as the user's own,
Fig. 11), then verify clips.  A clip is rejected as an attack when its
LOF score exceeds the decision threshold tau (default 3, swept in
Fig. 12).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..obs.instrument import Instrumentation
from .config import DetectorConfig
from .features import FeatureExtraction, FeatureVector, extract_features_batch
from .lof import LocalOutlierFactor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> core)
    from ..engine import ExecutionEngine

__all__ = ["DetectionResult", "LivenessDetector", "verify_clips"]


@dataclasses.dataclass(frozen=True)
class DetectionResult:
    """Outcome of one detection attempt on one clip."""

    features: FeatureVector
    lof_score: float
    threshold: float
    extraction: FeatureExtraction | None = None

    @property
    def accepted(self) -> bool:
        """True when the clip is judged live (LOF <= tau)."""
        return self.lof_score <= self.threshold

    @property
    def rejected(self) -> bool:
        """True when the clip is judged an attack."""
        return not self.accepted


class LivenessDetector:
    """LOF-based fake-face detector for one feature configuration.

    Parameters
    ----------
    config:
        Pipeline constants; defaults to the paper's values.
    instrumentation:
        Optional observability handle; disabled (:data:`~repro.obs.
        instrument.NULL`) when omitted.  Deliberately *not* part of
        ``config``: the config's ``dataclasses.asdict`` fingerprint keys
        the feature cache, and a handle is process-local state.
    """

    def __init__(
        self,
        config: DetectorConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.config = config or DetectorConfig()
        self.instrumentation = Instrumentation.ensure(instrumentation)
        self._model = LocalOutlierFactor(n_neighbors=self.config.lof_neighbors)

    @property
    def is_trained(self) -> bool:
        return self._model.is_fitted

    @property
    def training_size(self) -> int:
        """Number of legitimate instances in the fitted bank."""
        return self._model.train_size

    def fit(self, bank: Sequence[FeatureVector] | np.ndarray) -> "LivenessDetector":
        """Fit on a bank of legitimate-user feature vectors.

        The bank needs no attacker data and no data from the user being
        verified — the paper's key training-cost property.
        """
        if isinstance(bank, np.ndarray):
            X = np.asarray(bank, dtype=np.float64)
        else:
            X = np.array([fv.as_array() for fv in bank], dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != 4:
            raise ValueError(f"bank must have shape (n, 4), got {X.shape}")
        self._model.fit(X)
        return self

    def fit_from_clips(
        self,
        clips: Iterable[tuple[np.ndarray, np.ndarray]],
    ) -> "LivenessDetector":
        """Fit from raw legitimate (transmitted, received) luminance pairs."""
        bank = [
            extraction.features
            for extraction in extract_features_batch(list(clips), self.config)
        ]
        if len(bank) < 2:
            raise ValueError("need at least 2 training clips")
        return self.fit(bank)

    def score(self, features: FeatureVector) -> float:
        """Raw LOF score of one feature vector."""
        if not self.is_trained:
            raise RuntimeError("detector is not trained; call fit() first")
        return self._model.score(features.as_array())

    def score_samples(self, features: np.ndarray) -> np.ndarray:
        """Raw LOF scores of a feature matrix ``(n, 4)``.

        The experiment runners score whole test splits through this, so
        protocol rounds and deployed verification share one model and
        one threshold semantics.
        """
        if not self.is_trained:
            raise RuntimeError("detector is not trained; call fit() first")
        return self._model.score_samples(np.asarray(features, dtype=np.float64))

    def verify_features(
        self,
        features: FeatureVector,
        extraction: FeatureExtraction | None = None,
    ) -> DetectionResult:
        """Classify one already-extracted feature vector."""
        return DetectionResult(
            features=features,
            lof_score=self.score(features),
            threshold=self.config.lof_threshold,
            extraction=extraction,
        )

    def verify_clip(
        self,
        transmitted_luminance: np.ndarray,
        received_luminance: np.ndarray,
        instrumentation: Instrumentation | None = None,
    ) -> DetectionResult:
        """Full single-clip detection from raw luminance signals.

        ``instrumentation`` overrides the detector's own handle for this
        call (the streaming verifier passes its handle through here).
        """
        instr = (
            instrumentation if instrumentation is not None else self.instrumentation
        )
        with instr.span("detector.verify_clip", stage="verdict"):
            extraction = extract_features_batch(
                [(transmitted_luminance, received_luminance)],
                self.config,
                instrumentation=instr,
            )[0]
            result = self.verify_features(extraction.features, extraction)
        verdict = "accept" if result.accepted else "reject"
        instr.count("detector_clips_total", verdict=verdict)
        return result


def verify_clips(
    pairs: Sequence[tuple[np.ndarray, np.ndarray]],
    detector: LivenessDetector,
    engine: "ExecutionEngine | None" = None,
) -> list[DetectionResult]:
    """Batch verification: many clips against one fitted detector.

    The documented entry point for offline verification.  Features for
    every ``(transmitted, received)`` luminance pair are extracted in one
    pass through the batch core — or, when an
    :class:`~repro.engine.ExecutionEngine` is given, through its
    content-addressed cache and (for ``jobs > 1``) its shared-memory
    process pool — then classified against the detector's LOF model.
    Results come back in submission order, each bit-identical to
    :meth:`LivenessDetector.verify_clip` on that pair alone.

    The engine path returns :class:`DetectionResult` objects without the
    ``extraction`` intermediates (the cache stores bare feature vectors).
    """
    pairs = list(pairs)
    if not pairs:
        return []
    instr = detector.instrumentation
    with instr.span("detector.verify_clips", stage="verdict", clips=len(pairs)):
        if engine is not None:
            features = engine.extract_features_batch(pairs, detector.config)
            results = [detector.verify_features(fv) for fv in features]
        else:
            results = [
                detector.verify_features(extraction.features, extraction)
                for extraction in extract_features_batch(
                    pairs, detector.config, instrumentation=instr
                )
            ]
        for result in results:
            instr.count(
                "detector_clips_total",
                verdict="accept" if result.accepted else "reject",
            )
    return results
