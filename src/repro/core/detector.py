"""Single-clip fake-video detection (Sec. VII-A).

:class:`LivenessDetector` is the deployable unit: fit it once on a bank
of legitimate feature vectors (from *any* users — the paper shows
training on other volunteers' data works as well as the user's own,
Fig. 11), then verify clips.  A clip is rejected as an attack when its
LOF score exceeds the decision threshold tau (default 3, swept in
Fig. 12).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import numpy as np

from ..obs.instrument import Instrumentation
from .config import DetectorConfig
from .features import FeatureExtraction, FeatureVector, extract_features
from .lof import LocalOutlierFactor

__all__ = ["DetectionResult", "LivenessDetector"]


@dataclasses.dataclass(frozen=True)
class DetectionResult:
    """Outcome of one detection attempt on one clip."""

    features: FeatureVector
    lof_score: float
    threshold: float
    extraction: FeatureExtraction | None = None

    @property
    def accepted(self) -> bool:
        """True when the clip is judged live (LOF <= tau)."""
        return self.lof_score <= self.threshold

    @property
    def rejected(self) -> bool:
        """True when the clip is judged an attack."""
        return not self.accepted


class LivenessDetector:
    """LOF-based fake-face detector for one feature configuration.

    Parameters
    ----------
    config:
        Pipeline constants; defaults to the paper's values.
    instrumentation:
        Optional observability handle; disabled (:data:`~repro.obs.
        instrument.NULL`) when omitted.  Deliberately *not* part of
        ``config``: the config's ``dataclasses.asdict`` fingerprint keys
        the feature cache, and a handle is process-local state.
    """

    def __init__(
        self,
        config: DetectorConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.config = config or DetectorConfig()
        self.instrumentation = Instrumentation.ensure(instrumentation)
        self._model = LocalOutlierFactor(n_neighbors=self.config.lof_neighbors)

    @property
    def is_trained(self) -> bool:
        return self._model.is_fitted

    @property
    def training_size(self) -> int:
        """Number of legitimate instances in the fitted bank."""
        return self._model.train_size

    def fit(self, bank: Sequence[FeatureVector] | np.ndarray) -> "LivenessDetector":
        """Fit on a bank of legitimate-user feature vectors.

        The bank needs no attacker data and no data from the user being
        verified — the paper's key training-cost property.
        """
        if isinstance(bank, np.ndarray):
            X = np.asarray(bank, dtype=np.float64)
        else:
            X = np.array([fv.as_array() for fv in bank], dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != 4:
            raise ValueError(f"bank must have shape (n, 4), got {X.shape}")
        self._model.fit(X)
        return self

    def fit_from_clips(
        self,
        clips: Iterable[tuple[np.ndarray, np.ndarray]],
    ) -> "LivenessDetector":
        """Fit from raw legitimate (transmitted, received) luminance pairs."""
        bank = [
            extract_features(t_lum, r_lum, self.config).features
            for t_lum, r_lum in clips
        ]
        if len(bank) < 2:
            raise ValueError("need at least 2 training clips")
        return self.fit(bank)

    def score(self, features: FeatureVector) -> float:
        """Raw LOF score of one feature vector."""
        if not self.is_trained:
            raise RuntimeError("detector is not trained; call fit() first")
        return self._model.score(features.as_array())

    def score_samples(self, features: np.ndarray) -> np.ndarray:
        """Raw LOF scores of a feature matrix ``(n, 4)``.

        The experiment runners score whole test splits through this, so
        protocol rounds and deployed verification share one model and
        one threshold semantics.
        """
        if not self.is_trained:
            raise RuntimeError("detector is not trained; call fit() first")
        return self._model.score_samples(np.asarray(features, dtype=np.float64))

    def verify_features(
        self,
        features: FeatureVector,
        extraction: FeatureExtraction | None = None,
    ) -> DetectionResult:
        """Classify one already-extracted feature vector."""
        return DetectionResult(
            features=features,
            lof_score=self.score(features),
            threshold=self.config.lof_threshold,
            extraction=extraction,
        )

    def verify_clip(
        self,
        transmitted_luminance: np.ndarray,
        received_luminance: np.ndarray,
        instrumentation: Instrumentation | None = None,
    ) -> DetectionResult:
        """Full single-clip detection from raw luminance signals.

        ``instrumentation`` overrides the detector's own handle for this
        call (the streaming verifier passes its handle through here).
        """
        instr = (
            instrumentation if instrumentation is not None else self.instrumentation
        )
        with instr.span("detector.verify_clip", stage="verdict"):
            extraction = extract_features(
                transmitted_luminance,
                received_luminance,
                self.config,
                instrumentation=instr,
            )
            result = self.verify_features(extraction.features, extraction)
        verdict = "accept" if result.accepted else "reject"
        instr.count("detector_clips_total", verdict=verdict)
        return result
