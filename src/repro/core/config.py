"""Configuration for the liveness-detection pipeline.

Every constant the paper fixes is a named, documented field here, with the
paper's value as the default.  The evaluation section of the paper sweeps
several of them (decision threshold, sampling rate, number of detection
attempts, training-set size); the experiment harness does the same by
constructing modified configs rather than monkey-patching the pipeline.
"""

from __future__ import annotations

import dataclasses
import warnings

__all__ = ["DetectorConfig", "PAPER_CONFIG"]


@dataclasses.dataclass(frozen=True)
class DetectorConfig:
    """All tunables of the detection pipeline (paper defaults).

    Attributes
    ----------
    sample_rate_hz:
        Rate at which frames are sampled from both videos (Sec. IV: 10 Hz;
        Sec. VIII-H shows 8 Hz is the lowest viable rate).
    clip_duration_s:
        Length of one detection clip (Sec. VIII-A: 15 seconds).
    lowpass_cutoff_hz:
        Cut-off of the first low-pass filter (Sec. V / Fig. 6: 1 Hz).
    lowpass_taps:
        Length of the windowed-sinc FIR used for the low-pass stage.  Not
        specified by the paper; 41 taps at 10 Hz gives a ~0.25 Hz
        transition band, comfortably isolating the sub-1 Hz band.
    variance_window:
        Moving window (samples) for the short-time variance (Sec. V: 10).
    variance_threshold:
        Cut-off applied to the variance signal to remove small spikes
        (Sec. V: 2).
    rms_window:
        Moving window (samples) for the root-mean-square smoothing
        (Sec. V: 30).
    savgol_window:
        Savitzky-Golay filter window length (Sec. V: 31 samples).
    savgol_polyorder:
        Polynomial order of the Savitzky-Golay fit.  The paper says only
        "polynomial fitting"; order 3 is the filter's common default.
    moving_average_window:
        Final moving-average window (Sec. V: 10 samples).
    peak_prominence_screen:
        Minimal prominence for peaks in the transmitted-video (screen
        light) variance signal (Sec. V: 10).
    peak_prominence_face:
        Minimal prominence for peaks in the received-video (face
        reflection) variance signal (Sec. V: 0.5).
    match_tolerance_s:
        Two significant luminance changes are "matched" when their times
        differ by at most this much.  The paper leaves F(T, R)/G(T, R)
        unspecified; 1.0 s absorbs the network round trip plus display
        latency while staying well under the spacing of distinct metering
        events (wider tolerances measurably inflate an attacker's lucky
        coincidences).
    boundary_guard_s:
        Changes whose counterpart falls outside the clip cannot be
        matched no matter how live the face is: a transmitted change in
        the last ``boundary_guard_s`` seconds has its (delayed) reflection
        truncated by the clip end, and a received change in the first
        ``boundary_guard_s`` seconds reflects a challenge sent before the
        clip started.  Such changes are excluded from the counts N and M
        of Eqs. 4-5 (an unstated but necessary detail of segmenting a
        continuous chat into equal clips).  The default covers the
        round-trip delay plus the group delay of the smoothing chain
        (RMS window 30 + Savitzky-Golay 31 at 10 Hz ~ 1.5-2 s).
    dtw_scale:
        z4 is the max DTW distance between segment pairs divided by this
        (Sec. VI: 30), to keep its range comparable to z1..z3.
    segment_count:
        The smoothed variance signal is cut into this many equal segments
        for the trend features (Sec. VI: 2).
    lof_neighbors:
        k of the Local Outlier Factor model (Sec. VII-A: 5).
    lof_threshold:
        Decision threshold tau on LOF(z) (Sec. VII-A: 3; Sec. VIII-D
        sweeps 1.5..4 and finds the EER near 2.8-3).
    vote_fraction:
        An untrusted user is declared an attacker when its attacker votes
        exceed ``vote_fraction * D`` over D attempts (Sec. VII-B: 0.7).
    gate_min_landmark_fraction:
        Streaming quality gate: minimum fraction of a clip's received
        samples with a usable landmark detection.  Below it the clip's
        attempt is graded ``INCONCLUSIVE`` and excluded from the vote —
        a face the system cannot find proves nothing either way.
    gate_max_frozen_fraction:
        Streaming quality gate: maximum fraction of a clip's received
        samples allowed to be loss-concealed (frozen/stale) frames.  A
        signal dominated by freeze concealment carries the *channel's*
        behaviour, not the peer's.
    gate_min_transmitted_changes:
        Streaming quality gate: minimum number of significant luminance
        changes the transmitted clip must contain for its attempt to be
        conclusive (no challenge issued means nothing to verify).
    min_challenges:
        Challenges the active scheduler guarantees per detection window,
        and the count :func:`~repro.core.challenge.challenge_quality`
        requires before grading a clip *sufficient*.  Also the number of
        challenge times a protocol-derived schedule places per clip.
    min_gap_s:
        Minimum spacing between scheduled challenges.  Must exceed the
        Sec. V smoothing chain's merge radius (~4 s at 10 Hz) or two
        challenges collapse into one variance peak and are undercounted.
    """

    sample_rate_hz: float = 10.0
    clip_duration_s: float = 15.0

    lowpass_cutoff_hz: float = 1.0
    lowpass_taps: int = 41

    variance_window: int = 10
    variance_threshold: float = 2.0
    rms_window: int = 30
    savgol_window: int = 31
    savgol_polyorder: int = 3
    moving_average_window: int = 10

    peak_prominence_screen: float = 10.0
    peak_prominence_face: float = 0.5

    match_tolerance_s: float = 1.0
    boundary_guard_s: float = 2.0
    dtw_scale: float = 30.0
    segment_count: int = 2

    lof_neighbors: int = 5
    lof_threshold: float = 3.0
    vote_fraction: float = 0.7

    gate_min_landmark_fraction: float = 0.5
    gate_max_frozen_fraction: float = 0.5
    gate_min_transmitted_changes: int = 1

    min_challenges: int = 2
    min_gap_s: float = 4.5

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if self.clip_duration_s <= 0:
            raise ValueError("clip_duration_s must be positive")
        if not 0 < self.lowpass_cutoff_hz < self.sample_rate_hz / 2:
            raise ValueError(
                "lowpass_cutoff_hz must lie in (0, nyquist); got "
                f"{self.lowpass_cutoff_hz} at fs={self.sample_rate_hz}"
            )
        if self.lowpass_taps < 3 or self.lowpass_taps % 2 == 0:
            raise ValueError("lowpass_taps must be an odd integer >= 3")
        for name in ("variance_window", "rms_window", "moving_average_window"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.savgol_window % 2 == 0 or self.savgol_window < 3:
            raise ValueError("savgol_window must be an odd integer >= 3")
        if not 0 <= self.savgol_polyorder < self.savgol_window:
            raise ValueError("savgol_polyorder must be < savgol_window")
        if self.peak_prominence_screen <= 0 or self.peak_prominence_face <= 0:
            raise ValueError("peak prominences must be positive")
        if self.match_tolerance_s <= 0:
            raise ValueError("match_tolerance_s must be positive")
        if self.boundary_guard_s < 0:
            raise ValueError("boundary_guard_s must be non-negative")
        if self.dtw_scale <= 0:
            raise ValueError("dtw_scale must be positive")
        if self.segment_count < 1:
            raise ValueError("segment_count must be >= 1")
        if self.lof_neighbors < 1:
            raise ValueError("lof_neighbors must be >= 1")
        if self.lof_threshold <= 0:
            raise ValueError("lof_threshold must be positive")
        if not 0 < self.vote_fraction < 1:
            raise ValueError("vote_fraction must lie in (0, 1)")
        if not 0.0 <= self.gate_min_landmark_fraction <= 1.0:
            raise ValueError("gate_min_landmark_fraction must lie in [0, 1]")
        if not 0.0 <= self.gate_max_frozen_fraction <= 1.0:
            raise ValueError("gate_max_frozen_fraction must lie in [0, 1]")
        if self.gate_min_transmitted_changes < 0:
            raise ValueError("gate_min_transmitted_changes must be >= 0")
        if self.min_challenges < 1:
            raise ValueError("min_challenges must be >= 1")
        if self.min_gap_s <= 0:
            raise ValueError("min_gap_s must be positive")
        # Whether min_challenges * min_gap_s fits the usable window is
        # checked where a schedule is actually built (ChallengeScheduler,
        # protocol derivation): clip-duration sweeps legitimately build
        # configs whose window is too short for the *default* challenge
        # count and never schedule from them.

    @property
    def samples_per_clip(self) -> int:
        """Number of luminance samples in one detection clip."""
        return int(round(self.clip_duration_s * self.sample_rate_hz))

    def with_overrides(self, **overrides: object) -> "DetectorConfig":
        """Return a validated copy with the given fields changed.

        This is the blessed way to derive sweep/ablation configs: unknown
        field names fail loudly (instead of ``dataclasses.replace``'s
        bare ``TypeError``) and the copy re-runs every ``__post_init__``
        check, so an invalid sweep point cannot reach the pipeline.
        """
        valid = {field.name for field in dataclasses.fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown DetectorConfig field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    def replace(self, **changes: object) -> "DetectorConfig":
        """Deprecated alias of :meth:`with_overrides`."""
        warnings.warn(
            "DetectorConfig.replace is deprecated; use with_overrides",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.with_overrides(**changes)


#: The exact configuration evaluated in the paper.
PAPER_CONFIG = DetectorConfig()
