"""Light metering (Sec. II-B).

Digital cameras predict how much light hits the subject and set exposure
accordingly.  The paper leans on the two common modes:

* **spot metering** — measure a small window; by *touching the screen*
  the legitimate user moves that window between bright and dark parts of
  the scene, which swings the auto-exposure and therefore the overall
  luminance of the transmitted video.  This is the paper's challenge
  mechanism, and it preserves the scene content (no flashing frames).
* **multi-zone metering** — a center-weighted grid average, the default
  mode when the user is not interacting.

Metering operates on *linear scene radiance* (what the sensor sees before
gamma), matching real metering hardware.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

__all__ = ["MeteringMode", "LightMeter"]


class MeteringMode(enum.Enum):
    """Supported metering modes."""

    SPOT = "spot"
    MULTI_ZONE = "multi_zone"


def _window(radiance: np.ndarray, cx: float, cy: float, size: float) -> np.ndarray:
    """Extract the metering window around a normalized center."""
    height, width = radiance.shape[:2]
    half_h = max(int(size * height / 2.0), 1)
    half_w = max(int(size * width / 2.0), 1)
    row = int(cy * height)
    col = int(cx * width)
    r0 = min(max(row - half_h, 0), height - 1)
    r1 = min(max(row + half_h, r0 + 1), height)
    c0 = min(max(col - half_w, 0), width - 1)
    c1 = min(max(col + half_w, c0 + 1), width)
    return radiance[r0:r1, c0:c1]


@dataclasses.dataclass
class LightMeter:
    """Measures scene radiance for the auto-exposure loop.

    Attributes
    ----------
    mode:
        Current metering mode.
    spot_x, spot_y:
        Normalized [0, 1] center of the spot window (mutable: the user
        re-points it by touching the screen).
    spot_size:
        Side of the spot window as a fraction of the frame.
    grid:
        Zone grid for multi-zone mode.
    center_weight:
        Extra weight on the central zones in multi-zone mode.
    """

    mode: MeteringMode = MeteringMode.MULTI_ZONE
    spot_x: float = 0.5
    spot_y: float = 0.5
    spot_size: float = 0.12
    grid: tuple[int, int] = (3, 3)
    center_weight: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.spot_x <= 1.0 or not 0.0 <= self.spot_y <= 1.0:
            raise ValueError("spot center must lie in [0, 1] x [0, 1]")
        if not 0.0 < self.spot_size <= 1.0:
            raise ValueError("spot_size must lie in (0, 1]")
        if self.grid[0] < 1 or self.grid[1] < 1:
            raise ValueError("grid must have at least one zone per axis")
        if self.center_weight < 1.0:
            raise ValueError("center_weight must be >= 1")

    def point_spot(self, x: float, y: float) -> None:
        """Move the spot window (the user's screen touch)."""
        if not 0.0 <= x <= 1.0 or not 0.0 <= y <= 1.0:
            raise ValueError("spot center must lie in [0, 1] x [0, 1]")
        self.mode = MeteringMode.SPOT
        self.spot_x = x
        self.spot_y = y

    def measure(self, radiance: np.ndarray) -> float:
        """Measured scene level (linear radiance units, channel-averaged)."""
        radiance = np.asarray(radiance, dtype=np.float64)
        if radiance.ndim != 3 or radiance.shape[2] != 3:
            raise ValueError("radiance must have shape (h, w, 3)")
        if self.mode is MeteringMode.SPOT:
            window = _window(radiance, self.spot_x, self.spot_y, self.spot_size)
            return float(window.mean())
        return self._multi_zone(radiance)

    def _multi_zone(self, radiance: np.ndarray) -> float:
        rows, cols = self.grid
        height, width = radiance.shape[:2]
        luma = radiance.mean(axis=2)
        total = 0.0
        weight_sum = 0.0
        for i in range(rows):
            for j in range(cols):
                r0 = i * height // rows
                r1 = (i + 1) * height // rows
                c0 = j * width // cols
                c1 = (j + 1) * width // cols
                zone_mean = float(luma[r0:r1, c0:c1].mean())
                is_center = (i == rows // 2) and (j == cols // 2)
                weight = self.center_weight if is_center else 1.0
                total += weight * zone_mean
                weight_sum += weight
        return total / weight_sum
