"""Camera substrate: metering, auto-exposure, sensor."""

from .camera import Camera
from .exposure import AutoExposureController
from .metering import LightMeter, MeteringMode
from .sensor import ImageSensor

__all__ = [
    "Camera",
    "AutoExposureController",
    "LightMeter",
    "MeteringMode",
    "ImageSensor",
]
