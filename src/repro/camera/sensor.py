"""Image sensor model: exposure scaling, gamma encoding, noise, clipping.

Converts linear scene radiance (from the renderer) into display-referred
pixels (what the codec and the detector see).  The noise terms are the
standard pair:

* **shot noise** — photon arrival statistics, standard deviation growing
  with the square root of the signal;
* **read noise** — additive electronics noise, constant per pixel.

Both contribute the broadband high-frequency floor visible in the paper's
Fig. 6 spectrum, which the 1 Hz low-pass stage removes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ImageSensor"]


class ImageSensor:
    """Radiance -> pixel conversion with a realistic noise model.

    Parameters
    ----------
    gamma:
        Encoding gamma (pixels = 255 * linear**(1/gamma)).
    read_noise:
        Standard deviation of additive noise, in 8-bit pixel units.
    shot_noise_scale:
        Shot-noise standard deviation at full scale, in pixel units
        (scales with sqrt of the pixel level).
    rng:
        Generator for the noise draws; ``None`` disables noise (useful
        for exact-numerics tests).
    """

    def __init__(
        self,
        gamma: float = 2.2,
        read_noise: float = 0.7,
        shot_noise_scale: float = 1.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if read_noise < 0 or shot_noise_scale < 0:
            raise ValueError("noise levels must be non-negative")
        self.gamma = gamma
        self.read_noise = read_noise
        self.shot_noise_scale = shot_noise_scale
        self.rng = rng

    def expose(self, radiance: np.ndarray, exposure: float) -> np.ndarray:
        """Convert a radiance raster into display-referred pixels.

        ``radiance * exposure`` is the sensor's linear working signal;
        1.0 maps to full scale (255 after encoding), values above clip.
        """
        radiance = np.asarray(radiance, dtype=np.float64)
        if radiance.ndim != 3 or radiance.shape[2] != 3:
            raise ValueError("radiance must have shape (h, w, 3)")
        if exposure <= 0:
            raise ValueError("exposure must be positive")
        linear = np.clip(radiance * exposure, 0.0, 1.0)
        pixels = 255.0 * linear ** (1.0 / self.gamma)
        if self.rng is not None:
            noise_sigma = np.sqrt(
                self.read_noise**2
                + (self.shot_noise_scale**2) * (pixels / 255.0)
            )
            pixels = pixels + self.rng.normal(0.0, 1.0, pixels.shape) * noise_sigma
        return np.clip(pixels, 0.0, 255.0)
