"""The composed camera: meter -> auto-exposure -> sensor.

A :class:`Camera` turns the renderer's linear radiance rasters into
:class:`~repro.video.frame.Frame` objects at a fixed frame rate, running
the metering/AE loop exactly as a phone camera would.  The verifier's
camera (Alice) runs live auto-exposure — her metering touches are the
luminance challenge; the prover's camera (Bob) typically locks exposure
after convergence so the face-reflected screen light is not compensated
away.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..video.frame import Frame
from .exposure import AutoExposureController
from .metering import LightMeter
from .sensor import ImageSensor

__all__ = ["Camera"]


class Camera:
    """A video camera over the synthetic scene.

    Parameters
    ----------
    sensor:
        Pixel-formation model.
    meter:
        Light meter feeding the AE loop.
    auto_exposure:
        Exposure controller.
    fps:
        Capture rate; :meth:`capture` enforces monotonically increasing
        timestamps but does not resample — callers drive the clock.
    """

    def __init__(
        self,
        sensor: ImageSensor | None = None,
        meter: LightMeter | None = None,
        auto_exposure: AutoExposureController | None = None,
        fps: float = 10.0,
    ) -> None:
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.sensor = sensor or ImageSensor()
        self.meter = meter or LightMeter()
        self.auto_exposure = auto_exposure or AutoExposureController()
        self.fps = fps
        self._last_timestamp: float | None = None

    def capture(
        self,
        radiance: np.ndarray,
        timestamp: float,
        metadata: dict[str, Any] | None = None,
    ) -> Frame:
        """Capture one frame from a radiance raster.

        The AE loop advances by the wall-clock gap since the previous
        capture, then the sensor exposes the raster.
        """
        if self._last_timestamp is not None and timestamp <= self._last_timestamp:
            raise ValueError(
                f"timestamps must increase: {timestamp} after {self._last_timestamp}"
            )
        dt = (
            1.0 / self.fps
            if self._last_timestamp is None
            else timestamp - self._last_timestamp
        )
        self._last_timestamp = timestamp

        measured = self.meter.measure(radiance)
        exposure = self.auto_exposure.update(measured, dt)
        pixels = self.sensor.expose(radiance, exposure)
        frame_metadata: dict[str, Any] = {"exposure": exposure, "metered_level": measured}
        if metadata:
            frame_metadata.update(metadata)
        return Frame(pixels=pixels, timestamp=timestamp, metadata=frame_metadata)

    def reset_clock(self) -> None:
        """Forget the previous timestamp (start of a new recording)."""
        self._last_timestamp = None
