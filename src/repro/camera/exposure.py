"""Auto-exposure control.

The camera adjusts shutter/aperture so that the metered region lands on a
target level (Sec. II-B).  We model the combined effect as a single
multiplicative *exposure factor* with first-order (log-domain) convergence
— real AE loops ramp over a few hundred milliseconds rather than snapping,
which is what gives the transmitted-video luminance its smooth rising and
falling edges (Fig. 7a).

The receiving side of the paper's pipeline assumes the *prover's* camera
does not cancel the screen-light reflection; consumer cameras converge far
too slowly (and meter the whole scene, not the nose) to track a sub-second
reflection change, which the ``time_constant_s`` captures.  ``locked``
freezes exposure entirely (the common video-call behaviour after initial
convergence).
"""

from __future__ import annotations

import math

__all__ = ["AutoExposureController"]


class AutoExposureController:
    """First-order auto-exposure loop in the log-exposure domain.

    Parameters
    ----------
    target_level:
        Desired metered level after exposure (linear, on the sensor's
        0..1 working scale — the classic 18 % gray target by default).
    time_constant_s:
        Time for ~63 % convergence toward the ideal exposure.
    min_exposure, max_exposure:
        Clamp on the exposure factor (sensor gain/shutter limits).
    initial_exposure:
        Starting factor; ``None`` snaps to the ideal value on the first
        update (camera pre-converged before the call starts).
    locked:
        When true, :meth:`update` keeps returning the current factor.
    """

    def __init__(
        self,
        target_level: float = 0.18,
        time_constant_s: float = 0.35,
        min_exposure: float = 1e-6,
        max_exposure: float = 1e3,
        initial_exposure: float | None = None,
        locked: bool = False,
    ) -> None:
        if target_level <= 0:
            raise ValueError("target_level must be positive")
        if time_constant_s <= 0:
            raise ValueError("time_constant_s must be positive")
        if min_exposure <= 0 or max_exposure <= min_exposure:
            raise ValueError("exposure bounds must satisfy 0 < min < max")
        if initial_exposure is not None and initial_exposure <= 0:
            raise ValueError("initial_exposure must be positive")
        self.target_level = target_level
        self.time_constant_s = time_constant_s
        self.min_exposure = min_exposure
        self.max_exposure = max_exposure
        self.locked = locked
        self._exposure = initial_exposure

    @property
    def exposure(self) -> float:
        """Current exposure factor (before the first update: the ideal
        factor has not been observed yet, so this raises)."""
        if self._exposure is None:
            raise RuntimeError("exposure is undefined before the first update")
        return self._exposure

    def _ideal(self, measured_level: float) -> float:
        ideal = self.target_level / max(measured_level, 1e-12)
        return min(max(ideal, self.min_exposure), self.max_exposure)

    def update(self, measured_level: float, dt: float) -> float:
        """Advance the loop by ``dt`` seconds given a metered level.

        Returns the exposure factor to apply to the current frame.
        """
        if measured_level < 0:
            raise ValueError("measured_level must be non-negative")
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if self._exposure is None:
            self._exposure = self._ideal(measured_level)
            return self._exposure
        if self.locked:
            return self._exposure
        ideal = self._ideal(measured_level)
        alpha = 1.0 - math.exp(-dt / self.time_constant_s)
        log_now = math.log(self._exposure)
        log_ideal = math.log(ideal)
        self._exposure = math.exp(log_now + alpha * (log_ideal - log_now))
        return self._exposure

    def lock(self) -> None:
        """Freeze the current exposure (video-call steady state)."""
        if self._exposure is None:
            raise RuntimeError("cannot lock before the first update")
        self.locked = True

    def unlock(self) -> None:
        """Resume automatic adjustment."""
        self.locked = False
