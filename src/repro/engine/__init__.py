"""Parallel cached execution engine for the experiment protocol.

Public surface:

* :class:`ExecutionEngine` — deterministic process-pool mapping, cached
  feature extraction, per-stage perf counters.
* :class:`FeatureCache` — content-addressed feature memo (signal hash +
  config fingerprint).
* :class:`PerfReport` / :class:`StagePerf` — printable run measurements.
* :func:`task_rng` — the per-task seeding rule every runner uses.
"""

from .cache import FeatureCache, clip_signal_hash, config_fingerprint
from .engine import ExecutionEngine, task_rng
from .perf import PerfRecorder, PerfReport, StagePerf

__all__ = [
    "ExecutionEngine",
    "FeatureCache",
    "PerfRecorder",
    "PerfReport",
    "StagePerf",
    "clip_signal_hash",
    "config_fingerprint",
    "task_rng",
]
