"""Per-stage performance counters for the execution engine.

The engine's promise is "as fast as the hardware allows, and
measurable": every pipeline stage that runs under the engine (dataset
simulation, feature extraction, protocol rounds, aggregation) is timed,
cache traffic is counted, and the whole picture is exportable as one
frozen :class:`PerfReport` that the CLI can print after a run.

The mutable side lives in :class:`PerfRecorder` (owned by the engine);
the immutable snapshot handed to callers is :class:`PerfReport`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from collections.abc import Iterator

__all__ = ["StagePerf", "PerfReport", "PerfRecorder"]


@dataclasses.dataclass(frozen=True)
class StagePerf:
    """Aggregate timing of one named pipeline stage."""

    name: str
    calls: int
    wall_s: float
    tasks: int

    @property
    def tasks_per_sec(self) -> float:
        return self.tasks / self.wall_s if self.wall_s > 0 else float("inf")


@dataclasses.dataclass(frozen=True)
class PerfReport:
    """Immutable snapshot of an engine run, printable from the CLI."""

    jobs: int
    wall_s: float
    stages: tuple[StagePerf, ...]
    cache_hits: int
    cache_misses: int
    tasks_completed: int
    #: Named event counters reported by the pipelines that ran under the
    #: engine (e.g. the streaming quality gate's ``clips_inconclusive``).
    counters: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def tasks_per_sec(self) -> float:
        return self.tasks_completed / self.wall_s if self.wall_s > 0 else 0.0

    def lines(self) -> list[str]:
        """The report as printable rows (one per stage plus totals)."""
        out = [
            f"PerfReport (jobs={self.jobs})",
            f"{'stage':>12s} {'calls':>7s} {'tasks':>7s} {'wall_s':>9s} {'tasks/s':>9s}",
        ]
        for stage in self.stages:
            rate = stage.tasks_per_sec
            rate_text = f"{rate:9.1f}" if rate != float("inf") else "      inf"
            out.append(
                f"{stage.name:>12s} {stage.calls:7d} {stage.tasks:7d} "
                f"{stage.wall_s:9.3f} {rate_text}"
            )
        out.append(
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%} hit rate)"
        )
        out.append(
            f"total: {self.tasks_completed} tasks in {self.wall_s:.3f}s "
            f"({self.tasks_per_sec:.1f} tasks/s)"
        )
        for name in sorted(self.counters):
            out.append(f"{name}: {self.counters[name]}")
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


class _StageCounters:
    __slots__ = ("calls", "wall_s", "tasks")

    def __init__(self) -> None:
        self.calls = 0
        self.wall_s = 0.0
        self.tasks = 0


class PerfRecorder:
    """Mutable counters behind :class:`PerfReport`.

    Stage order is preserved (first time a stage reports, it gets a row),
    so reports read in pipeline order.
    """

    def __init__(self) -> None:
        self._stages: dict[str, _StageCounters] = {}
        self._started = time.perf_counter()
        self._tasks_completed = 0
        self._counters: dict[str, int] = {}

    def reset(self) -> None:
        self._stages.clear()
        self._started = time.perf_counter()
        self._tasks_completed = 0
        self._counters.clear()

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter (surfaced in the report)."""
        self._counters[name] = self._counters.get(name, 0) + n

    @contextlib.contextmanager
    def stage(self, name: str, tasks: int = 0) -> Iterator[None]:
        """Time one call of the named stage; ``tasks`` counts work items."""
        counters = self._stages.setdefault(name, _StageCounters())
        t0 = time.perf_counter()
        try:
            yield
        finally:
            counters.calls += 1
            counters.wall_s += time.perf_counter() - t0
            counters.tasks += tasks
            self._tasks_completed += tasks

    def add_tasks(self, name: str, tasks: int) -> None:
        """Count extra work items against an (already timed) stage."""
        counters = self._stages.setdefault(name, _StageCounters())
        counters.tasks += tasks
        self._tasks_completed += tasks

    def snapshot(self, jobs: int, cache_hits: int, cache_misses: int) -> PerfReport:
        return PerfReport(
            jobs=jobs,
            wall_s=time.perf_counter() - self._started,
            stages=tuple(
                StagePerf(name=name, calls=c.calls, wall_s=c.wall_s, tasks=c.tasks)
                for name, c in self._stages.items()
            ),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            tasks_completed=self._tasks_completed,
            counters=dict(self._counters),
        )
