"""Per-stage performance counters for the execution engine.

The engine's promise is "as fast as the hardware allows, and
measurable": every pipeline stage that runs under the engine (dataset
simulation, feature extraction, protocol rounds, aggregation) is timed,
cache traffic is counted, and the whole picture is exportable as one
frozen :class:`PerfReport` that the CLI can print after a run.

Since the observability subsystem landed, :class:`PerfRecorder` is a
*view* over a :class:`~repro.obs.metrics.MetricsRegistry`: stage calls,
wall time and task counts live in ``engine_stage_*`` series, event
counters (e.g. the fault matrix's ``clips_*``) are plain registry
counters, and :class:`PerfReport` renders from those series.  There is
exactly one counter API underneath — the registry's — and the report
stays the printable shape it always was.  Timing is read through the
:mod:`repro.obs.clock` abstraction, never from ``time.*`` directly.
"""

from __future__ import annotations

import contextlib
import dataclasses
from collections.abc import Iterator

from ..obs.clock import MONOTONIC_CLOCK, Clock
from ..obs.metrics import MetricsRegistry

__all__ = ["StagePerf", "PerfReport", "PerfRecorder"]

#: Registry series backing the per-stage view.
_STAGE_CALLS = "engine_stage_calls_total"
_STAGE_TASKS = "engine_stage_tasks_total"
_STAGE_WALL = "engine_stage_wall_seconds_total"


@dataclasses.dataclass(frozen=True)
class StagePerf:
    """Aggregate timing of one named pipeline stage."""

    name: str
    calls: int
    wall_s: float
    tasks: int

    @property
    def tasks_per_sec(self) -> float:
        return self.tasks / self.wall_s if self.wall_s > 0 else float("inf")


@dataclasses.dataclass(frozen=True)
class PerfReport:
    """Immutable snapshot of an engine run, printable from the CLI."""

    jobs: int
    wall_s: float
    stages: tuple[StagePerf, ...]
    cache_hits: int
    cache_misses: int
    tasks_completed: int
    #: Named event counters reported by the pipelines that ran under the
    #: engine (e.g. the streaming quality gate's ``clips_inconclusive``).
    counters: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        # Guarded: an empty run (no lookups) is a 0.0 rate, not a crash.
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups > 0 else 0.0

    @property
    def tasks_per_sec(self) -> float:
        # Guarded: a zero-duration run (empty, or a ManualClock that
        # never advanced) reports 0.0 instead of dividing by zero.
        return self.tasks_completed / self.wall_s if self.wall_s > 0 else 0.0

    def lines(self) -> list[str]:
        """The report as printable rows (one per stage plus totals)."""
        out = [
            f"PerfReport (jobs={self.jobs})",
            f"{'stage':>12s} {'calls':>7s} {'tasks':>7s} {'wall_s':>9s} {'tasks/s':>9s}",
        ]
        for stage in self.stages:
            rate = stage.tasks_per_sec
            rate_text = f"{rate:9.1f}" if rate != float("inf") else "      inf"
            out.append(
                f"{stage.name:>12s} {stage.calls:7d} {stage.tasks:7d} "
                f"{stage.wall_s:9.3f} {rate_text}"
            )
        out.append(
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%} hit rate)"
        )
        out.append(
            f"total: {self.tasks_completed} tasks in {self.wall_s:.3f}s "
            f"({self.tasks_per_sec:.1f} tasks/s)"
        )
        for name in sorted(self.counters):
            out.append(f"{name}: {self.counters[name]}")
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


class PerfRecorder:
    """Mutable counters behind :class:`PerfReport`, registry-backed.

    Stage order is preserved (first time a stage reports, it gets a row),
    so reports read in pipeline order.  The underlying
    :class:`MetricsRegistry` is shared with the engine's
    :class:`~repro.obs.instrument.Instrumentation` handle, so event
    counters recorded through either API land in the same series.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stage_order: list[str] = []
        self._started = self._clock.now()

    def reset(self) -> None:
        self.registry.clear()
        self._stage_order.clear()
        self._started = self._clock.now()

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter (surfaced in the report)."""
        self.registry.counter(name).inc(n)

    @contextlib.contextmanager
    def stage(self, name: str, tasks: int = 0) -> Iterator[None]:
        """Time one call of the named stage; ``tasks`` counts work items."""
        if name not in self._stage_order:
            self._stage_order.append(name)
        t0 = self._clock.now()
        try:
            yield
        finally:
            self.registry.counter(_STAGE_CALLS, stage=name).inc()
            self.registry.counter(_STAGE_WALL, stage=name).inc(self._clock.now() - t0)
            if tasks:
                self.registry.counter(_STAGE_TASKS, stage=name).inc(tasks)

    def add_tasks(self, name: str, tasks: int) -> None:
        """Count extra work items against an (already timed) stage."""
        if name not in self._stage_order:
            self._stage_order.append(name)
        self.registry.counter(_STAGE_TASKS, stage=name).inc(tasks)

    def _series_value(self, name: str, stage: str) -> float:
        found = self.registry.get(name, stage=stage)
        return found.value if found is not None else 0

    def snapshot(self, jobs: int, cache_hits: int, cache_misses: int) -> PerfReport:
        stages = tuple(
            StagePerf(
                name=name,
                calls=int(self._series_value(_STAGE_CALLS, name)),
                wall_s=float(self._series_value(_STAGE_WALL, name)),
                tasks=int(self._series_value(_STAGE_TASKS, name)),
            )
            for name in self._stage_order
        )
        counters = {
            series.name: int(series.value)
            for series in self.registry.snapshot().series
            if series.kind == "counter"
            and not series.labels
            and not series.name.startswith("engine_stage_")
        }
        return PerfReport(
            jobs=jobs,
            wall_s=self._clock.now() - self._started,
            stages=stages,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            tasks_completed=sum(stage.tasks for stage in stages),
            counters=counters,
        )
