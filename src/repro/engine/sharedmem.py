"""Shared-memory transport for batched feature extraction.

Pickling per-clip arrays into worker processes costs more than the
per-clip NumPy work it fans out (``results/engine_scaling.txt``), so the
engine ships signal batches as **one** structure-of-arrays
:class:`multiprocessing.shared_memory.SharedMemory` segment instead:

* :class:`SignalPack` (parent side) concatenates every transmitted and
  received signal of a batch into a single float64 buffer and owns the
  segment's lifetime (create -> fill -> close+unlink).
* :class:`PackHandle` is the tiny picklable descriptor a worker needs to
  find its slice: segment name, per-signal offsets and lengths.
* :func:`extract_pack_chunk` (worker side) attaches by name, slices one
  contiguous chunk of pairs as zero-copy views, and runs the batch core
  on them — returning only the small feature vectors.

Chunks partition the batch, so worker results concatenated in submission
order are exactly the batch-of-N result: pool output stays bit-identical
to serial output.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..core.config import DetectorConfig
from ..core.features import FeatureVector, extract_features_batch

__all__ = ["PackHandle", "SignalPack", "extract_pack_chunk"]


@dataclasses.dataclass(frozen=True)
class PackHandle:
    """Picklable descriptor of one packed signal segment.

    Signal ``2*i`` is clip ``i``'s transmitted luminance, ``2*i + 1`` its
    received luminance; each lives at ``[offsets[j], offsets[j] +
    lengths[j])`` in the segment's float64 view.
    """

    name: str
    offsets: np.ndarray
    lengths: np.ndarray
    total: int

    @property
    def pair_count(self) -> int:
        return self.lengths.size // 2


class SignalPack:
    """Parent-side owner of one shared SoA buffer of (t, r) signal pairs.

    Use as a context manager: the segment is unlinked on exit, after all
    worker futures have been drained.  Refuses to create an empty
    segment — the engine routes degenerate batches in-process instead.
    """

    def __init__(self, pairs: Sequence[tuple[np.ndarray, np.ndarray]]) -> None:
        flats: list[np.ndarray] = []
        for t_lum, r_lum in pairs:
            flats.append(np.ascontiguousarray(t_lum, dtype=np.float64).ravel())
            flats.append(np.ascontiguousarray(r_lum, dtype=np.float64).ravel())
        lengths = np.array([f.size for f in flats], dtype=np.int64)
        total = int(lengths.sum()) if flats else 0
        if total == 0:
            raise ValueError("refusing to create an empty shared-memory segment")
        offsets = np.zeros(lengths.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        self._shm = shared_memory.SharedMemory(create=True, size=total * 8)
        view = np.ndarray((total,), dtype=np.float64, buffer=self._shm.buf)
        for offset, flat in zip(offsets, flats):
            view[offset : offset + flat.size] = flat
        del view  # release the buffer export so close() can unmap
        self.handle = PackHandle(
            name=self._shm.name, offsets=offsets, lengths=lengths, total=total
        )

    def close(self) -> None:
        """Unmap and remove the segment (workers must be done)."""
        self._shm.close()
        self._shm.unlink()

    def __enter__(self) -> "SignalPack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker bookkeeping.

    The parent owns the segment's lifetime (create + unlink).  Before
    Python 3.13 attaching also *registers* the segment with the attaching
    process's resource tracker: a worker with its own tracker then warns
    about a "leaked" segment at shutdown, and a worker sharing the
    parent's tracker cannot unregister without deleting the parent's
    entry.  So the attach itself must not register — via ``track=False``
    where available, else by masking ``register`` for the one call.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def extract_pack_chunk(
    payload: tuple[PackHandle, int, int, DetectorConfig],
) -> list[FeatureVector]:
    """Worker-side batch extraction over pairs ``[lo, hi)`` of a pack.

    Module-level for pickling.  Attaches to the shared segment by name,
    builds zero-copy signal views, and runs the structure-of-arrays core
    on the whole chunk in one call.  Only the feature vectors cross back
    to the parent; every view into the segment is dropped before the
    worker detaches.
    """
    handle, lo, hi, config = payload
    shm = _attach_untracked(handle.name)
    try:
        flat = np.ndarray((handle.total,), dtype=np.float64, buffer=shm.buf)
        pairs = []
        for i in range(lo, hi):
            t_off = int(handle.offsets[2 * i])
            r_off = int(handle.offsets[2 * i + 1])
            t_len = int(handle.lengths[2 * i])
            r_len = int(handle.lengths[2 * i + 1])
            pairs.append((flat[t_off : t_off + t_len], flat[r_off : r_off + r_len]))
        out = [
            extraction.features
            for extraction in extract_features_batch(pairs, config)
        ]
    finally:
        # Drop the buffer exports before detaching: mmap refuses to close
        # while NumPy views are still alive.
        pairs = None
        flat = None
        shm.close()
    return out
