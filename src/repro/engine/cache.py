"""Content-addressed memoization of feature extraction.

The 7-stage preprocessing chain plus the z1..z4 feature computation is
the per-clip hot path of every experiment; sweeps that reuse clips
(decision threshold, voting attempts, training-set size) re-run it on
byte-identical inputs.  :class:`FeatureCache` keys each extraction by a
SHA-256 over the two raw luminance signals *and* a fingerprint of every
:class:`~repro.core.config.DetectorConfig` field, so

* the same clip under the same config is extracted exactly once, and
* any config change (an ablation, a sampling-rate sweep) automatically
  misses — there is no version flag to forget to bump.

Only the final :class:`~repro.core.features.FeatureVector` is stored
(4 floats per clip), not the intermediate signals, so the cache stays
small enough to keep every clip of a full evaluation resident.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from ..core.config import DetectorConfig
from ..core.features import FeatureVector

__all__ = ["FeatureCache", "config_fingerprint", "clip_signal_hash"]


def config_fingerprint(config: DetectorConfig) -> str:
    """Stable digest over every config field (sweep-proof cache key part)."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def clip_signal_hash(
    transmitted_luminance: np.ndarray, received_luminance: np.ndarray
) -> str:
    """Content hash of one clip's raw luminance pair."""
    t = np.ascontiguousarray(transmitted_luminance, dtype=np.float64)
    r = np.ascontiguousarray(received_luminance, dtype=np.float64)
    digest = hashlib.sha256()
    digest.update(str(t.shape).encode())
    digest.update(t.tobytes())
    digest.update(str(r.shape).encode())
    digest.update(r.tobytes())
    return digest.hexdigest()[:32]


class FeatureCache:
    """In-memory content-addressed store of extracted feature vectors.

    Parameters
    ----------
    max_entries:
        Optional bound; when exceeded the oldest entries are evicted
        (insertion order — the access pattern of sweeps is "extract the
        whole dataset, then reuse it", so FIFO loses nothing).  ``None``
        keeps everything.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self._store: dict[str, FeatureVector] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @staticmethod
    def key_for(
        transmitted_luminance: np.ndarray,
        received_luminance: np.ndarray,
        config: DetectorConfig,
    ) -> str:
        return (
            clip_signal_hash(transmitted_luminance, received_luminance)
            + ":"
            + config_fingerprint(config)
        )

    def get(self, key: str) -> FeatureVector | None:
        """Look up by key, counting the hit or miss."""
        found = self._store.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def put(self, key: str, features: FeatureVector) -> None:
        if self.max_entries is not None and key not in self._store:
            while len(self._store) >= self.max_entries:
                self._store.pop(next(iter(self._store)))
        self._store[key] = features

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
