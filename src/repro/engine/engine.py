"""Parallel, cached, instrumented execution of the experiment protocol.

:class:`ExecutionEngine` is the one object the evaluation harness talks
to.  It provides three guarantees:

**Determinism.**  Work is submitted as an ordered list of self-contained
tasks, each carrying its own seed material (see :func:`task_rng`), and
results come back in submission order.  Nothing about the outcome
depends on how many workers ran or how the OS scheduled them, so
``jobs=4`` is bit-identical to ``jobs=1`` — and to running the same
tasks without any engine at all.

**Memoization.**  Feature extraction — the per-clip hot path — is
routed through a content-addressed :class:`~repro.engine.cache.FeatureCache`
keyed by the raw signal bytes plus the full
:class:`~repro.core.config.DetectorConfig` fingerprint.  Sweeps that
revisit clips (threshold, attempts, training size, forgery delay at
zero shift) stop re-running the preprocessing chain.

**Measurement.**  Every stage executed under the engine is timed, cache
traffic is counted, and :meth:`perf_report` returns a printable
:class:`~repro.engine.perf.PerfReport` (the CLI's ``--perf`` flag).

Workers are plain ``concurrent.futures`` processes; task functions must
be module-level (picklable).  The pool is created lazily on the first
parallel ``map`` and torn down by :meth:`close` (or the context
manager), so a serial engine never pays for a pool.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import AbstractContextManager
from typing import Any, TypeVar

import numpy as np

from ..core.config import DetectorConfig
from ..core.features import FeatureVector, extract_features
from ..obs.instrument import Instrumentation
from ..obs.metrics import MetricsSnapshot
from .cache import FeatureCache
from .perf import PerfRecorder, PerfReport

__all__ = ["ExecutionEngine", "task_rng"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def task_rng(*key: int) -> np.random.Generator:
    """Deterministic per-task random generator.

    Each protocol task (one user's rounds, one sweep point, ...) derives
    its generator from the experiment seed plus its own coordinates, so
    the stream a task sees is a pure function of *what* the task is, not
    of *when or where* it runs.  This is what makes parallel execution
    bit-identical to serial.
    """
    return np.random.default_rng(list(key))


def _extract_one(payload: tuple[np.ndarray, np.ndarray, DetectorConfig]) -> FeatureVector:
    """Worker-side feature extraction (module-level for pickling)."""
    t_lum, r_lum, config = payload
    return extract_features(t_lum, r_lum, config).features


class ExecutionEngine(AbstractContextManager):
    """Maps protocol tasks over a process pool, with caching and perf.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) executes in-process with
        no pool; results are identical either way.
    cache:
        Shared :class:`FeatureCache`; a private one is created when not
        given.  Pass one engine (or one cache) across several runners to
        let sweeps reuse each other's extractions.
    max_cache_entries:
        Bound for the private cache (ignored when ``cache`` is given).
    instrumentation:
        Optional :class:`~repro.obs.instrument.Instrumentation`.  Its
        tracer (when present) records ``engine.<stage>`` spans around
        every mapped stage; its registry is ignored in favour of the
        engine's own perf registry so that :attr:`instrumentation` —
        the handle instrumented pipelines should use — feeds the same
        series :meth:`perf_report` renders from.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: FeatureCache | None = None,
        max_cache_entries: int | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache if cache is not None else FeatureCache(max_cache_entries)
        self._recorder = PerfRecorder()
        external = Instrumentation.ensure(instrumentation)
        #: The handle pipelines running under this engine should record
        #: through: the engine's perf registry plus the caller's tracer.
        self.instrumentation = Instrumentation(
            registry=self._recorder.registry, tracer=external.tracer
        )
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Task mapping
    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[_T], _R],
        tasks: Sequence[_T],
        stage: str = "map",
        chunksize: int | None = None,
    ) -> list[_R]:
        """Apply ``fn`` to every task, in order, serially or on the pool.

        ``fn`` must be a module-level callable and each task must carry
        everything it needs (including its seed) — the engine does not
        smuggle state into workers.
        """
        tasks = list(tasks)
        span = self.instrumentation.span(
            f"engine.{stage}", stage="engine", tasks=len(tasks), jobs=self.jobs
        )
        with span, self._recorder.stage(stage, tasks=len(tasks)):
            if self.jobs == 1 or len(tasks) <= 1:
                return [fn(task) for task in tasks]
            if chunksize is None:
                # Amortize pickling without starving workers of chunks.
                chunksize = max(1, len(tasks) // (self.jobs * 8))
            return list(self._ensure_pool().map(fn, tasks, chunksize=chunksize))

    def stage(self, name: str, tasks: int = 0):
        """Context manager timing an in-process stage (e.g. aggregation)."""
        return self._recorder.stage(name, tasks=tasks)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter in the perf report (e.g. the
        streaming quality gate's ``clips_inconclusive``)."""
        self._recorder.count(name, n)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's :class:`MetricsSnapshot` into this engine's
        registry.  Merging worker snapshots in submission order is the
        associative path that keeps ``jobs=N`` metrics bit-identical to
        ``jobs=1`` (enabled handles themselves never cross processes)."""
        self._recorder.registry.merge_snapshot(snapshot)

    # ------------------------------------------------------------------
    # Cached feature extraction
    # ------------------------------------------------------------------

    def extract_features_cached(
        self,
        transmitted_luminance: np.ndarray,
        received_luminance: np.ndarray,
        config: DetectorConfig,
    ) -> FeatureVector:
        """One clip's features, via the content-addressed cache."""
        return self.extract_features_batch(
            [(transmitted_luminance, received_luminance)], config
        )[0]

    def extract_features_batch(
        self,
        pairs: Sequence[tuple[np.ndarray, np.ndarray]],
        config: DetectorConfig,
        stage: str = "features",
    ) -> list[FeatureVector]:
        """Features for many clips: cache lookups first, then one
        parallel map over the misses only.

        Duplicate pairs within one batch are extracted once.
        """
        keys = [self.cache.key_for(t, r, config) for t, r in pairs]
        span = self.instrumentation.span(
            f"engine.{stage}", stage="engine", tasks=len(pairs), jobs=self.jobs
        )
        with span, self._recorder.stage(stage, tasks=len(pairs)):
            found: dict[str, FeatureVector] = {}
            pending: set[str] = set()
            miss_keys: list[str] = []
            miss_payloads: list[tuple[np.ndarray, np.ndarray, DetectorConfig]] = []
            for key, (t, r) in zip(keys, pairs):
                if key in found or key in pending:  # duplicate within this batch
                    self.cache.hits += 1
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    found[key] = cached
                else:
                    pending.add(key)
                    miss_keys.append(key)
                    miss_payloads.append((t, r, config))
            if miss_payloads:
                if self.jobs == 1 or len(miss_payloads) <= 1:
                    extracted = [_extract_one(p) for p in miss_payloads]
                else:
                    chunksize = max(1, len(miss_payloads) // (self.jobs * 8))
                    extracted = list(
                        self._ensure_pool().map(
                            _extract_one, miss_payloads, chunksize=chunksize
                        )
                    )
                for key, features in zip(miss_keys, extracted):
                    self.cache.put(key, features)
                    found[key] = features
        return [found[key] for key in keys]

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------

    def perf_report(self) -> PerfReport:
        """Snapshot of all stages, cache traffic, and throughput."""
        return self._recorder.snapshot(
            jobs=self.jobs,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
        )

    def reset_perf(self) -> None:
        """Zero the timers and counters (cache contents are kept)."""
        self._recorder.reset()
        self.cache.hits = 0
        self.cache.misses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExecutionEngine(jobs={self.jobs}, cache_entries={len(self.cache)}, "
            f"hits={self.cache.hits}, misses={self.cache.misses})"
        )
