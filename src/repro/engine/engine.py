"""Parallel, cached, instrumented execution of the experiment protocol.

:class:`ExecutionEngine` is the one object the evaluation harness talks
to.  It provides three guarantees:

**Determinism.**  Work is submitted as an ordered list of self-contained
tasks, each carrying its own seed material (see :func:`task_rng`), and
results come back in submission order.  Nothing about the outcome
depends on how many workers ran or how the OS scheduled them, so
``jobs=4`` is bit-identical to ``jobs=1`` — and to running the same
tasks without any engine at all.

**Memoization.**  Feature extraction — the per-clip hot path — is
routed through a content-addressed :class:`~repro.engine.cache.FeatureCache`
keyed by the raw signal bytes plus the full
:class:`~repro.core.config.DetectorConfig` fingerprint.  Sweeps that
revisit clips (threshold, attempts, training size, forgery delay at
zero shift) stop re-running the preprocessing chain.

**Measurement.**  Every stage executed under the engine is timed, cache
traffic is counted, and :meth:`perf_report` returns a printable
:class:`~repro.engine.perf.PerfReport` (the CLI's ``--perf`` flag).

Workers are plain ``concurrent.futures`` processes; task functions must
be module-level (picklable).  The pool is created lazily on the first
parallel ``map`` and torn down by :meth:`close` (or the context
manager), so a serial engine never pays for a pool.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import AbstractContextManager
from typing import Any, TypeVar

import numpy as np

from ..core.config import DetectorConfig
from ..core.features import FeatureVector, extract_features_batch
from ..obs.instrument import Instrumentation
from ..obs.metrics import MetricsSnapshot
from .cache import FeatureCache
from .perf import PerfRecorder, PerfReport
from .sharedmem import SignalPack, extract_pack_chunk

__all__ = ["ExecutionEngine", "task_rng"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Below this many cache misses the pool + shared-memory setup cannot
#: beat simply running the batch core in-process.
_MIN_SHARED_BATCH = 2


def task_rng(*key: int) -> np.random.Generator:
    """Deterministic per-task random generator.

    Each protocol task (one user's rounds, one sweep point, ...) derives
    its generator from the experiment seed plus its own coordinates, so
    the stream a task sees is a pure function of *what* the task is, not
    of *when or where* it runs.  This is what makes parallel execution
    bit-identical to serial.
    """
    return np.random.default_rng(list(key))


def _run_chunk(payload: tuple[Callable[[Any], Any], list[Any]]) -> list[Any]:
    """Worker-side execution of one chunk of tasks (module-level for
    pickling): the function is shipped once per chunk, not once per task."""
    fn, chunk = payload
    return [fn(task) for task in chunk]


def _chunk_bounds(count: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``count`` items into ``chunks`` contiguous non-empty ranges."""
    edges = [count * c // chunks for c in range(chunks + 1)]
    return list(zip(edges[:-1], edges[1:]))


class ExecutionEngine(AbstractContextManager):
    """Maps protocol tasks over a process pool, with caching and perf.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) executes in-process with
        no pool; results are identical either way.
    cache:
        Shared :class:`FeatureCache`; a private one is created when not
        given.  Pass one engine (or one cache) across several runners to
        let sweeps reuse each other's extractions.
    max_cache_entries:
        Bound for the private cache (ignored when ``cache`` is given).
    instrumentation:
        Optional :class:`~repro.obs.instrument.Instrumentation`.  Its
        tracer (when present) records ``engine.<stage>`` spans around
        every mapped stage; its registry is ignored in favour of the
        engine's own perf registry so that :attr:`instrumentation` —
        the handle instrumented pipelines should use — feeds the same
        series :meth:`perf_report` renders from.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: FeatureCache | None = None,
        max_cache_entries: int | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache if cache is not None else FeatureCache(max_cache_entries)
        self._recorder = PerfRecorder()
        external = Instrumentation.ensure(instrumentation)
        #: The handle pipelines running under this engine should record
        #: through: the engine's perf registry plus the caller's tracer.
        self.instrumentation = Instrumentation(
            registry=self._recorder.registry, tracer=external.tracer
        )
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Task mapping
    # ------------------------------------------------------------------

    def map_batches(
        self,
        fn: Callable[[_T], _R],
        tasks: Sequence[_T],
        stage: str = "map",
        chunk_size: int | None = None,
    ) -> list[_R]:
        """Apply ``fn`` to every task, in order, with chunked submission.

        The one place task batching lives: every runner that fans work
        out (experiment sweeps, session simulation, the fault matrix)
        routes through here, so chunk sizing policy is defined once.
        Each chunk ships ``fn`` plus its tasks as a single pickle and a
        worker runs the whole chunk — ``jobs * chunks-per-worker``
        pickles total instead of one per task.

        ``fn`` must be a module-level callable and each task must carry
        everything it needs (including its seed) — the engine does not
        smuggle state into workers.  An empty task list is a no-op: no
        span, no ``engine_stage_*`` sample, no pool spin-up.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        span = self.instrumentation.span(
            f"engine.{stage}", stage="engine", tasks=len(tasks), jobs=self.jobs
        )
        with span, self._recorder.stage(stage, tasks=len(tasks)):
            if self.jobs == 1 or len(tasks) == 1:
                return [fn(task) for task in tasks]
            if chunk_size is None:
                # Amortize pickling while leaving a few chunks per worker
                # for load balancing.
                chunk_size = max(1, -(-len(tasks) // (self.jobs * 4)))
            chunks = [
                tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)
            ]
            pool = self._ensure_pool()
            futures = [pool.submit(_run_chunk, (fn, chunk)) for chunk in chunks]
            results: list[_R] = []
            for future in futures:
                results.extend(future.result())
            return results

    def map(
        self,
        fn: Callable[[_T], _R],
        tasks: Sequence[_T],
        stage: str = "map",
        chunksize: int | None = None,
    ) -> list[_R]:
        """Compatibility alias of :meth:`map_batches`."""
        return self.map_batches(fn, tasks, stage=stage, chunk_size=chunksize)

    def stage(self, name: str, tasks: int = 0):
        """Context manager timing an in-process stage (e.g. aggregation)."""
        return self._recorder.stage(name, tasks=tasks)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter in the perf report (e.g. the
        streaming quality gate's ``clips_inconclusive``)."""
        self._recorder.count(name, n)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's :class:`MetricsSnapshot` into this engine's
        registry.  Merging worker snapshots in submission order is the
        associative path that keeps ``jobs=N`` metrics bit-identical to
        ``jobs=1`` (enabled handles themselves never cross processes)."""
        self._recorder.registry.merge_snapshot(snapshot)

    # ------------------------------------------------------------------
    # Cached feature extraction
    # ------------------------------------------------------------------

    def extract_features_cached(
        self,
        transmitted_luminance: np.ndarray,
        received_luminance: np.ndarray,
        config: DetectorConfig,
    ) -> FeatureVector:
        """One clip's features, via the content-addressed cache."""
        return self.extract_features_batch(
            [(transmitted_luminance, received_luminance)], config
        )[0]

    def extract_features_batch(
        self,
        pairs: Sequence[tuple[np.ndarray, np.ndarray]],
        config: DetectorConfig,
        stage: str = "features",
    ) -> list[FeatureVector]:
        """Features for many clips: cache lookups first, then one
        parallel map over the misses only.

        Misses run through the structure-of-arrays batch core — in
        process for a serial engine, or fanned out over the pool via one
        shared-memory :class:`~repro.engine.sharedmem.SignalPack` so
        workers attach to the signal bytes instead of unpickling them.
        Duplicate pairs within one batch are extracted once.  An empty
        batch is a no-op (no span, no stage sample, no pool).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        keys = [self.cache.key_for(t, r, config) for t, r in pairs]
        span = self.instrumentation.span(
            f"engine.{stage}", stage="engine", tasks=len(pairs), jobs=self.jobs
        )
        with span, self._recorder.stage(stage, tasks=len(pairs)):
            found: dict[str, FeatureVector] = {}
            pending: set[str] = set()
            miss_keys: list[str] = []
            miss_pairs: list[tuple[np.ndarray, np.ndarray]] = []
            for key, (t, r) in zip(keys, pairs):
                if key in found or key in pending:  # duplicate within this batch
                    self.cache.hits += 1
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    found[key] = cached
                else:
                    pending.add(key)
                    miss_keys.append(key)
                    miss_pairs.append((t, r))
            if miss_pairs:
                for key, features in zip(
                    miss_keys, self._extract_misses(miss_pairs, config)
                ):
                    self.cache.put(key, features)
                    found[key] = features
        return [found[key] for key in keys]

    def _extract_misses(
        self,
        miss_pairs: list[tuple[np.ndarray, np.ndarray]],
        config: DetectorConfig,
    ) -> list[FeatureVector]:
        """Extract uncached pairs: batch core in-process, or chunked over
        the pool through one shared-memory pack.

        Chunks partition the miss list into at most ``min(jobs, n)``
        contiguous non-empty ranges (never an empty chunk, never an
        empty segment), and the batch kernels are row-independent, so
        concatenating chunk results reproduces the serial batch bitwise.
        """
        total_samples = sum(
            np.asarray(t).size + np.asarray(r).size for t, r in miss_pairs
        )
        if (
            self.jobs == 1
            or len(miss_pairs) < _MIN_SHARED_BATCH
            or total_samples == 0
        ):
            return [
                extraction.features
                for extraction in extract_features_batch(miss_pairs, config)
            ]
        pool = self._ensure_pool()
        with SignalPack(miss_pairs) as pack:
            futures = [
                pool.submit(extract_pack_chunk, (pack.handle, lo, hi, config))
                for lo, hi in _chunk_bounds(
                    len(miss_pairs), min(self.jobs, len(miss_pairs))
                )
            ]
            extracted: list[FeatureVector] = []
            for future in futures:
                extracted.extend(future.result())
        return extracted

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------

    def perf_report(self) -> PerfReport:
        """Snapshot of all stages, cache traffic, and throughput."""
        return self._recorder.snapshot(
            jobs=self.jobs,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
        )

    def reset_perf(self) -> None:
        """Zero the timers and counters (cache contents are kept)."""
        self._recorder.reset()
        self.cache.hits = 0
        self.cache.misses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExecutionEngine(jobs={self.jobs}, cache_entries={len(self.cache)}, "
            f"hits={self.cache.hits}, misses={self.cache.misses})"
        )
