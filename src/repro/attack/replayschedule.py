"""Attackers aimed specifically at the challenge-binding protocol.

Two ways a recording attacker can try to survive nonce-derived
challenges, both of which the binding layer (not the LOF) must catch:

* :class:`ReplayScheduleAttacker` — plays back footage of the victim
  genuinely answering an **earlier** session's schedule.  The luminance
  response is perfectly genuine-shaped (it *was* genuine), so the LOF
  has no handle on it; but the response peaks land at the *old*
  schedule's times, which the verifier still remembers in its
  commitment ledger (``REPLAY``).
* :class:`StaleRelayAttacker` — the Sec. VIII-J adaptive forger run
  through a relay whose reflection synthesis is slower than the
  protocol's freshness window.  It answers the **current** schedule,
  just too late to have been produced live (``STALE``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..screen.display import DELL_27_LED, ScreenSpec
from ..vision.expression import ExpressionTrack
from .adaptive import AdaptiveLuminanceForger
from .reenactment import ReenactmentAttacker
from .target import TargetRecording

if TYPE_CHECKING:
    from collections.abc import Sequence

    from ..protocol.schedule import DerivedSchedule
    from ..video.frame import Frame

__all__ = ["ReplayScheduleAttacker", "StaleRelayAttacker"]


class ReplayScheduleAttacker(ReenactmentAttacker):
    """Replays the victim's genuine response to a prior schedule.

    The attacker recorded one of the victim's earlier calls.  The
    footage carries the real screen-reflection response to that call's
    challenges — piecewise steps of the facial illuminance at the old
    schedule's times, shifted by the genuine response path delay.  The
    attacker now pipes this footage through the virtual camera in a new
    session: the reflections look flawless, but they answer yesterday's
    nonce.

    Parameters
    ----------
    target:
        Victim recording being replayed (face identity + base track).
    observed_schedules:
        The challenge schedules of the session the footage was recorded
        in — what the verifier committed to back then.
    response_delay_s:
        Genuine path delay baked into the recording (network + display
        latency when the footage was shot).
    start_offset_s:
        Session warmup preceding the first recorded clip; absolute
        challenge times are shifted by it (matching
        :class:`~repro.chat.endpoints.DerivedMeteringBehavior`).
    baseline_reflection_lux:
        Mid-level screen reflection of the recorded scene; challenge
        responses swing around it.
    ambient_lux:
        Steady ambient light of the recorded scene.
    """

    def __init__(
        self,
        target: TargetRecording,
        observed_schedules: "Sequence[DerivedSchedule]",
        response_delay_s: float = 0.4,
        start_offset_s: float = 0.0,
        baseline_reflection_lux: float = 60.0,
        ambient_lux: float = 50.0,
        driving: ExpressionTrack | None = None,
        artifact_level: float = 0.012,
        frame_size: tuple[int, int] = (96, 96),
        seed: int = 100,
    ) -> None:
        if response_delay_s < 0:
            raise ValueError("response_delay_s must be non-negative")
        if start_offset_s < 0:
            raise ValueError("start_offset_s must be non-negative")
        if baseline_reflection_lux < 0:
            raise ValueError("baseline_reflection_lux must be non-negative")
        if ambient_lux < 0:
            raise ValueError("ambient_lux must be non-negative")
        super().__init__(
            target=target,
            driving=driving,
            artifact_level=artifact_level,
            frame_size=frame_size,
            seed=seed,
        )
        self.observed_schedules = tuple(observed_schedules)
        self.response_delay_s = response_delay_s
        self.start_offset_s = start_offset_s
        self.baseline_reflection_lux = baseline_reflection_lux
        self.ambient_lux = ambient_lux
        # Absolute (time, swing) events of the recorded response.  A
        # challenge that pointed the verifier's meter at the bright zone
        # darkened the transmitted video, so the recorded reflection
        # stepped *down*; the dark zone stepped it up.
        events: list[tuple[float, float]] = []
        for schedule in self.observed_schedules:
            base = start_offset_s + schedule.attempt_index * schedule.clip_duration_s
            for challenge in schedule.challenges:
                swing = 0.5 * challenge.delta_lux
                events.append(
                    (
                        base + challenge.time_s + response_delay_s,
                        swing if challenge.spot == "dark" else -swing,
                    )
                )
        self._events = sorted(events)

    def _illuminance(self, t: float, displayed: "Frame | None") -> float:
        del displayed  # recorded footage; the live screen is irrelevant
        level = self.baseline_reflection_lux
        for event_time, swing in self._events:
            if event_time <= t:
                level = self.baseline_reflection_lux + swing
            else:
                break
        return self.ambient_lux + max(level, 0.0)


class StaleRelayAttacker(AdaptiveLuminanceForger):
    """The adaptive forger behind a slow reflection-synthesis relay.

    Identical physics to :class:`AdaptiveLuminanceForger` — it forges
    the *correct* reflection for the current session's challenges — but
    its processing pipeline is slower than the protocol's freshness
    window, so every response peak arrives as a late echo of the live
    schedule and the binding layer grades the clips ``STALE``.
    """

    def __init__(
        self,
        target: TargetRecording,
        processing_delay_s: float = 4.0,
        driving: ExpressionTrack | None = None,
        artifact_level: float = 0.012,
        frame_size: tuple[int, int] = (96, 96),
        seed: int = 100,
        mimic_screen: ScreenSpec = DELL_27_LED,
        mimic_distance_m: float = 0.5,
        ambient_lux: float = 50.0,
    ) -> None:
        super().__init__(
            target=target,
            processing_delay_s=processing_delay_s,
            driving=driving,
            artifact_level=artifact_level,
            frame_size=frame_size,
            seed=seed,
            mimic_screen=mimic_screen,
            mimic_distance_m=mimic_distance_m,
            ambient_lux=ambient_lux,
        )
