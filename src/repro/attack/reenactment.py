"""Face reenactment attacker (the paper's ICFace stand-in).

Reenactment transfers the *driving actor's* expressions and head pose
onto the *target* face and re-renders photo-realistically (Sec. II-A).
Two properties of the technique define the attack surface the paper
exploits, and both are reproduced here exactly:

1. The output inherits the **target recording's illumination** — the
   attacker's screen light never reaches the fake face, so the received
   video's luminance is decoupled from the verifier's transmitted video.
2. The synthesis adds small temporal **artifacts** (blending jitter at
   the face boundary, slight intensity flicker) — far below what the
   human victim can spot, per the adversary model.

The attacker endpoint plugs straight into :class:`VideoChatSession` in
Bob's chair via the virtual-camera capability of the adversary model.
"""

from __future__ import annotations

import numpy as np

from ..camera.camera import Camera
from ..camera.exposure import AutoExposureController
from ..camera.metering import LightMeter, MeteringMode
from ..camera.sensor import ImageSensor
from ..video.frame import Frame
from ..vision.expression import ExpressionTrack
from ..vision.renderer import FaceRenderer
from .target import TargetRecording

__all__ = ["ReenactmentAttacker"]


class ReenactmentAttacker:
    """Generates fake facial video of the victim in real time.

    Parameters
    ----------
    target:
        The victim footage being reenacted.
    driving:
        The attacker's own performance (expressions/pose transferred onto
        the victim's face).  Defaults to a fresh seeded track.
    artifact_level:
        Relative amplitude of synthesis flicker (multiplicative noise on
        the rendered radiance).  ICFace-quality output keeps this small.
    frame_size:
        Raster size of the generated video.
    seed:
        Seed for artifact noise and the synthetic recording camera.
    """

    def __init__(
        self,
        target: TargetRecording,
        driving: ExpressionTrack | None = None,
        artifact_level: float = 0.012,
        frame_size: tuple[int, int] = (96, 96),
        seed: int = 100,
    ) -> None:
        if artifact_level < 0:
            raise ValueError("artifact_level must be non-negative")
        self.target = target
        self.driving = driving or ExpressionTrack(seed=seed + 3)
        self.artifact_level = artifact_level
        height, width = frame_size
        self.renderer = FaceRenderer(target.victim, height=height, width=width, seed=seed)
        self._rng = np.random.default_rng(seed + 7)
        # The footage was shot by a real camera; model it with a locked
        # exposure converged on the recording's typical light level.
        self.camera = Camera(
            sensor=ImageSensor(rng=np.random.default_rng(seed + 11)),
            meter=LightMeter(mode=MeteringMode.MULTI_ZONE),
            auto_exposure=AutoExposureController(target_level=0.22),
        )
        self._exposure_locked = False

    def _illuminance(self, t: float, displayed: Frame | None) -> float:
        """Light on the fake face at time ``t``.

        Plain reenactment uses the target recording's track and ignores
        the verifier's video entirely — the decoupling the defense
        detects.  Subclasses (the adaptive forger) override this.
        """
        del displayed  # the fake face never sees the attacker's screen
        return self.target.illuminance_at(t)

    def produce_frame(self, t: float, displayed: Frame | None) -> Frame:
        """ProverEndpoint interface: synthesize the fake frame at ``t``."""
        pose = self.driving.sample(t)
        illuminance = self._illuminance(t, displayed)
        result = self.renderer.render(
            pose,
            face_illuminance_lux=illuminance,
            ambient_lux=illuminance,
        )
        radiance = result.radiance
        if self.artifact_level > 0:
            flicker = 1.0 + self._rng.normal(0.0, self.artifact_level)
            spatial = self._rng.normal(
                0.0, self.artifact_level * 0.5, size=radiance.shape[:2]
            )
            radiance = radiance * np.clip(flicker + spatial, 0.8, 1.2)[..., None]
        frame = self.camera.capture(
            radiance,
            timestamp=t,
            metadata={
                "landmarks_truth": result.landmarks,
                "fake": True,
                "attack": type(self).__name__,
            },
        )
        if not self._exposure_locked:
            # One metering pass is enough: the recording camera was
            # already converged when the footage was shot.
            self.camera.auto_exposure.lock()
            self._exposure_locked = True
        return frame
