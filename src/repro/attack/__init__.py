"""Attacker substrate: reenactment, adaptive forgery, replay."""

from .adaptive import AdaptiveLuminanceForger
from .reenactment import ReenactmentAttacker
from .replay import ReplayAttacker
from .replayschedule import ReplayScheduleAttacker, StaleRelayAttacker
from .target import TargetRecording
from .virtualcam import VirtualCamera

__all__ = [
    "AdaptiveLuminanceForger",
    "ReenactmentAttacker",
    "ReplayAttacker",
    "ReplayScheduleAttacker",
    "StaleRelayAttacker",
    "TargetRecording",
    "VirtualCamera",
]
