"""Target recordings: the victim footage an attacker reenacts.

The paper's adversary model (Sec. III-A) assumes the attacker harvested
the victim's videos from social networks.  A :class:`TargetRecording`
captures what matters about such footage for the defense: the victim's
appearance (face model), the victim's original performance, and — the
crux of the paper — the *illumination track under which the footage was
shot*.  Face reenactment transfers expressions but keeps this lighting
(Sec. II-A), so the fake video's luminance follows this track instead of
the verifier's screen light.
"""

from __future__ import annotations

import numpy as np

from ..screen.illumination import AmbientLight
from ..vision.expression import ExpressionTrack
from ..vision.face_model import FaceModel

__all__ = ["TargetRecording"]


class TargetRecording:
    """Pre-recorded victim footage available to the attacker.

    Parameters
    ----------
    victim:
        The impersonated person's appearance.
    illumination:
        The lighting process of the original recording.  Victim footage
        shot during *their own* video calls or in live environments has
        its own significant luminance changes — which is what gives an
        attacker occasional lucky coincidences with the verifier's
        challenge (the paper's residual false-accept rate).
    expression:
        The victim's original performance (used by replay attacks; the
        reenactment attacker overrides it with the driving actor's).
    duration_s:
        Length of the footage; playback loops beyond it.
    """

    def __init__(
        self,
        victim: FaceModel,
        illumination: AmbientLight | None = None,
        expression: ExpressionTrack | None = None,
        duration_s: float = 300.0,
        seed: int = 0,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self.victim = victim
        rng = np.random.default_rng(seed)
        if illumination is None:
            # Footage shot in a live environment: base light plus its own
            # occasional changes (lamps, passing scenes, the victim's own
            # screen during their original call).
            illumination = AmbientLight(
                base_lux=float(rng.uniform(60.0, 140.0)),
                drift_lux=3.0,
                event_rate_hz=0.08,
                event_lux_range=(20.0, 90.0),
                rng=np.random.default_rng(seed + 1),
            )
        self.illumination = illumination
        self.expression = expression or ExpressionTrack(seed=seed + 2)
        self.duration_s = duration_s

    def playback_time(self, t: float, offset_s: float = 0.0) -> float:
        """Map wall-clock time to looping footage time."""
        if t < 0:
            raise ValueError("time must be non-negative")
        return (t + offset_s) % self.duration_s

    def illuminance_at(self, t: float, offset_s: float = 0.0) -> float:
        """Illuminance (lux) on the victim's face at footage time."""
        return float(self.illumination.sample_scalar(self.playback_time(t, offset_s)))
