"""The strong attacker of Sec. VIII-J: forging the reflection itself.

To beat the defense an attacker must reconstruct, on the fake face, the
screen-light reflection a genuine prover would show — in real time.  The
paper argues the extra image-processing layer costs generation time, and
evaluates how the defense degrades as that *forgery processing delay*
grows (Fig. 17: rejection climbs to ~80 % at 1.3 s of delay, above which
the attack is hopeless even with a perfect luminance model).

:class:`AdaptiveLuminanceForger` implements the strongest version: it
watches the verifier's incoming video on its own screen, computes the
exact reflection a genuine prover's face would receive (same panel
photometry and viewing-distance model the genuine endpoint uses), and
injects it into the reenacted output — ``processing_delay_s`` seconds
late.  With zero delay the forgery is physically perfect; the delay knob
reproduces Fig. 17.
"""

from __future__ import annotations

import collections

from ..screen.display import DELL_27_LED, ScreenSpec
from ..screen.illumination import screen_illuminance
from ..video.frame import Frame
from ..video.luminance import frame_mean_luminance
from ..vision.expression import ExpressionTrack
from .reenactment import ReenactmentAttacker
from .target import TargetRecording

__all__ = ["AdaptiveLuminanceForger"]


class AdaptiveLuminanceForger(ReenactmentAttacker):
    """Reenactment attacker that also forges the face-reflected light.

    Parameters
    ----------
    target, driving, artifact_level, frame_size, seed:
        As in :class:`ReenactmentAttacker`.
    processing_delay_s:
        Latency of the reflection-synthesis layer.  The attacker cannot
        apply light it has not yet computed, so the forged reflection
        trails the true screen light by this much.
    mimic_screen:
        Panel the attacker pretends the victim is using.
    mimic_distance_m:
        Pretended viewing distance.
    ambient_lux:
        Steady ambient level of the forged scene (a static, quiet room —
        the attacker's best case, no confounding events).
    """

    def __init__(
        self,
        target: TargetRecording,
        processing_delay_s: float = 0.5,
        driving: ExpressionTrack | None = None,
        artifact_level: float = 0.012,
        frame_size: tuple[int, int] = (96, 96),
        seed: int = 100,
        mimic_screen: ScreenSpec = DELL_27_LED,
        mimic_distance_m: float = 0.5,
        ambient_lux: float = 50.0,
    ) -> None:
        if processing_delay_s < 0:
            raise ValueError("processing_delay_s must be non-negative")
        if mimic_distance_m <= 0:
            raise ValueError("mimic_distance_m must be positive")
        if ambient_lux < 0:
            raise ValueError("ambient_lux must be non-negative")
        super().__init__(
            target=target,
            driving=driving,
            artifact_level=artifact_level,
            frame_size=frame_size,
            seed=seed,
        )
        self.processing_delay_s = processing_delay_s
        self.mimic_screen = mimic_screen
        self.mimic_distance_m = mimic_distance_m
        self.ambient_lux = ambient_lux
        self._reflection_log: collections.deque[tuple[float, float]] = collections.deque()

    def _observed_screen_lux(self, displayed: Frame | None) -> float:
        """Reflection a genuine face would receive from the current
        screen content."""
        mean_pixel = 0.0 if displayed is None else frame_mean_luminance(displayed)
        nits = self.mimic_screen.emitted_luminance(mean_pixel)
        return screen_illuminance(
            nits, self.mimic_screen.area_m2, self.mimic_distance_m
        )

    def _illuminance(self, t: float, displayed: Frame | None) -> float:
        # Record what the reflection *should* be right now...
        self._reflection_log.append((t, self._observed_screen_lux(displayed)))
        # ...but only apply the value computed processing_delay_s ago.
        apply_time = t - self.processing_delay_s
        forged = 0.0
        while (
            len(self._reflection_log) > 1
            and self._reflection_log[1][0] <= apply_time
        ):
            self._reflection_log.popleft()
        if self._reflection_log and self._reflection_log[0][0] <= apply_time:
            forged = self._reflection_log[0][1]
        return self.ambient_lux + forged
