"""Virtual webcam redirection (adversary capability 3, Sec. III-A).

The paper's attacker redirects the chat software's input stream from the
physical camera to generated fake video using a virtual web camera — the
fake frames reach the victim "without any loss and interference" from a
replay screen.  :class:`VirtualCamera` models that plumbing: it adapts an
arbitrary frame source into the :class:`ProverEndpoint` interface the
chat session expects, optionally enforcing the source's maximum
generation rate (a reenactment model that cannot keep up simply repeats
its last frame — visible to the defense as a frozen luminance signal).
"""

from __future__ import annotations

from typing import Callable

from ..video.frame import Frame

__all__ = ["VirtualCamera"]


class VirtualCamera:
    """Feed arbitrary generated frames into the chat software.

    Parameters
    ----------
    source:
        ``source(t, displayed)`` producing the fake frame — usually the
        bound ``produce_frame`` of an attacker, but any callable works.
    max_generation_hz:
        Upper bound on how fast the source can synthesize frames
        (e.g. 47.5 Hz for the fastest reenactment the paper cites, or a
        small value for an overloaded attacker).  Requests arriving
        faster than this replay the previous frame with an updated
        timestamp.
    """

    def __init__(
        self,
        source: Callable[[float, Frame | None], Frame],
        max_generation_hz: float | None = None,
    ) -> None:
        if max_generation_hz is not None and max_generation_hz <= 0:
            raise ValueError("max_generation_hz must be positive")
        self.source = source
        self.max_generation_hz = max_generation_hz
        self._last_generated_t: float | None = None
        self._last_frame: Frame | None = None

    def produce_frame(self, t: float, displayed: Frame | None) -> Frame:
        """ProverEndpoint interface."""
        min_gap = (
            0.0 if self.max_generation_hz is None else 1.0 / self.max_generation_hz
        )
        can_generate = (
            self._last_generated_t is None
            or t - self._last_generated_t >= min_gap - 1e-9
        )
        if can_generate or self._last_frame is None:
            frame = self.source(t, displayed)
            self._last_generated_t = t
            self._last_frame = frame
            return frame
        repeated = self._last_frame.copy()
        repeated.timestamp = t
        repeated.metadata["repeated"] = True
        return repeated
