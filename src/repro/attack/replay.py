"""Classic media replay attacker.

The traditional (pre-reenactment) impersonation: feed a pre-recorded
genuine video of the victim into the call.  The paper's adversary model
notes its own model is strictly stronger; the replay attacker is included
as the weakest comparison point — its luminance track is the recording's,
frozen in time, so the defense catches it for the same reason it catches
reenactment (no correlation with the live challenge) *and* its
expressions cannot even respond to conversation.
"""

from __future__ import annotations

from ..video.frame import Frame
from .reenactment import ReenactmentAttacker
from .target import TargetRecording

__all__ = ["ReplayAttacker"]


class ReplayAttacker(ReenactmentAttacker):
    """Replays the victim's own footage (expressions and lighting)."""

    def __init__(
        self,
        target: TargetRecording,
        playback_offset_s: float = 0.0,
        frame_size: tuple[int, int] = (96, 96),
        seed: int = 200,
    ) -> None:
        if playback_offset_s < 0:
            raise ValueError("playback_offset_s must be non-negative")
        # Replay introduces no synthesis artifacts (artifact_level=0) and
        # uses the victim's original expression track as the "driving"
        # performance.
        super().__init__(
            target=target,
            driving=target.expression,
            artifact_level=0.0,
            frame_size=frame_size,
            seed=seed,
        )
        self.playback_offset_s = playback_offset_s

    def _illuminance(self, t: float, displayed: Frame | None) -> float:  # type: ignore[override]
        del displayed
        return self.target.illuminance_at(t, offset_s=self.playback_offset_s)
