"""The blessed public surface of the reproduction.

Everything an application (or the CLI, or the README examples) should
import lives here, re-exported from the subsystem that owns it:

* verification — :func:`verify_clips` (batch, the documented offline
  entry point), :class:`ChatVerifier` (sessions), :class:`StreamingVerifier`
  (live call), the latter two returning :class:`VerificationReport`;
* the deployable classifier — :class:`LivenessDetector` and its
  :class:`DetectionResult`;
* batch feature extraction — :func:`extract_features_batch` over the
  structure-of-arrays :class:`ClipBatch` core (the per-clip
  :func:`extract_features` remains as a deprecated batch-of-1 wrapper);
* configuration — :class:`DetectorConfig` (validated copies via
  :meth:`~repro.core.config.DetectorConfig.with_overrides`) and the
  paper's exact :data:`PAPER_CONFIG`;
* the execution engine — :class:`ExecutionEngine`, :class:`FeatureCache`
  and the printable :class:`PerfReport`;
* session simulation — the ``simulate_*`` entry points the examples use;
* fault injection — :class:`FaultSpec`/:class:`FaultSchedule`, the
  faulted session builder and the :func:`run_fault_matrix` robustness
  sweep, plus the streaming quality-gate vocabulary
  (:class:`GatedAttempt`, :class:`ClipQuality`, :class:`AttemptVerdict`);
* observability — :class:`Instrumentation` (the handle every
  instrumented constructor accepts), the metrics registry and its
  mergeable snapshots, span tracing with the ``repro-trace-v1`` JSONL
  schema, and the Prometheus/JSON exporters;
* the serving layer — :class:`VerificationServer` (admission control,
  per-tenant model banks, bounded per-session queues, deadlines) with
  :class:`ServerConfig`/:class:`SessionOutcome`, the two time regimes
  (:class:`VirtualScheduler` deterministic, :class:`RealTimeScheduler`
  wall clock), the open-loop workload generator
  (:class:`WorkloadConfig`, :func:`run_workload`,
  :func:`make_tenant_bank_provider`) and :func:`build_slo_report`;
* the challenge-binding protocol — :class:`ProtocolConfig`,
  :class:`ProtocolProvisioner` (per-tenant nonces + commitment ledger),
  :class:`ProtocolGate`/:class:`BindingReport` (what the streaming
  verifier consults per clip), the :class:`BindingOutcome` vocabulary,
  the pure derivation helpers (:func:`derive_schedule`,
  :func:`derive_session_schedules`) and the
  :func:`run_protocol_matrix` sweep showing what the layer adds over
  the LOF.

Importing from submodule paths keeps working, but only the names listed
here are covered by the compatibility promise.
"""

from .core.batch import ClipBatch
from .core.config import PAPER_CONFIG, DetectorConfig
from .core.detector import DetectionResult, LivenessDetector, verify_clips
from .core.features import FeatureVector, extract_features, extract_features_batch
from .core.pipeline import ChatVerifier, VerificationReport
from .core.streaming import (
    AttemptVerdict,
    CallStatus,
    ClipQuality,
    GatedAttempt,
    StreamingState,
    StreamingVerifier,
)
from .core.voting import Verdict, VotingCombiner
from .engine import ExecutionEngine, FeatureCache, PerfReport
from .experiments.faultmatrix import (
    DEFAULT_FAULT_SPEC,
    FaultCell,
    FaultMatrixResult,
    run_fault_matrix,
    simulate_faulted_session,
)
from .experiments.protocolmatrix import (
    PROTOCOL_ROLES,
    ProtocolCell,
    ProtocolMatrixResult,
    run_protocol_matrix,
    simulate_protocol_session,
)
from .experiments.simulate import (
    simulate_adaptive_attack_session,
    simulate_attack_session,
    simulate_genuine_session,
    simulate_replay_attack_session,
)
from .faults import FaultSchedule, FaultSpec
from .obs import (
    PIPELINE_STAGES,
    TRACE_SCHEMA,
    Instrumentation,
    JsonlTraceSink,
    MetricsRegistry,
    MetricsSnapshot,
    Tracer,
    read_trace,
    render_json,
    render_prometheus,
)
from .protocol import (
    BindingOutcome,
    BindingReport,
    ProtocolConfig,
    ProtocolGate,
    ProtocolProvisioner,
    derive_schedule,
    derive_session_schedules,
)
from .service import (
    RealTimeScheduler,
    SLOReport,
    ServerConfig,
    SessionOutcome,
    VerificationServer,
    VirtualScheduler,
    WorkloadConfig,
    build_slo_report,
    make_tenant_bank_provider,
    run_workload,
)

__all__ = [
    "AttemptVerdict",
    "BindingOutcome",
    "BindingReport",
    "CallStatus",
    "ClipBatch",
    "ClipQuality",
    "DEFAULT_FAULT_SPEC",
    "FaultCell",
    "FaultMatrixResult",
    "FaultSchedule",
    "FaultSpec",
    "GatedAttempt",
    "ChatVerifier",
    "DetectionResult",
    "DetectorConfig",
    "ExecutionEngine",
    "FeatureCache",
    "FeatureVector",
    "Instrumentation",
    "JsonlTraceSink",
    "LivenessDetector",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PAPER_CONFIG",
    "PIPELINE_STAGES",
    "PROTOCOL_ROLES",
    "PerfReport",
    "ProtocolCell",
    "ProtocolConfig",
    "ProtocolGate",
    "ProtocolMatrixResult",
    "ProtocolProvisioner",
    "RealTimeScheduler",
    "SLOReport",
    "ServerConfig",
    "SessionOutcome",
    "StreamingState",
    "StreamingVerifier",
    "TRACE_SCHEMA",
    "Tracer",
    "Verdict",
    "VerificationReport",
    "VerificationServer",
    "VirtualScheduler",
    "VotingCombiner",
    "WorkloadConfig",
    "build_slo_report",
    "derive_schedule",
    "derive_session_schedules",
    "extract_features",
    "extract_features_batch",
    "make_tenant_bank_provider",
    "read_trace",
    "render_json",
    "render_prometheus",
    "run_fault_matrix",
    "run_protocol_matrix",
    "run_workload",
    "simulate_adaptive_attack_session",
    "simulate_attack_session",
    "simulate_faulted_session",
    "simulate_genuine_session",
    "simulate_protocol_session",
    "simulate_replay_attack_session",
    "verify_clips",
]
