"""The blessed public surface of the reproduction.

Everything an application (or the CLI, or the README examples) should
import lives here, re-exported from the subsystem that owns it:

* verification — :class:`ChatVerifier` (batch), :class:`StreamingVerifier`
  (live call), both returning :class:`VerificationReport`;
* the deployable classifier — :class:`LivenessDetector` and its
  :class:`DetectionResult`;
* configuration — :class:`DetectorConfig` (validated copies via
  :meth:`~repro.core.config.DetectorConfig.with_overrides`) and the
  paper's exact :data:`PAPER_CONFIG`;
* the execution engine — :class:`ExecutionEngine`, :class:`FeatureCache`
  and the printable :class:`PerfReport`;
* session simulation — the ``simulate_*`` entry points the examples use;
* fault injection — :class:`FaultSpec`/:class:`FaultSchedule`, the
  faulted session builder and the :func:`run_fault_matrix` robustness
  sweep, plus the streaming quality-gate vocabulary
  (:class:`GatedAttempt`, :class:`ClipQuality`, :class:`AttemptVerdict`);
* observability — :class:`Instrumentation` (the handle every
  instrumented constructor accepts), the metrics registry and its
  mergeable snapshots, span tracing with the ``repro-trace-v1`` JSONL
  schema, and the Prometheus/JSON exporters.

Importing from submodule paths keeps working, but only the names listed
here are covered by the compatibility promise.
"""

from .core.config import PAPER_CONFIG, DetectorConfig
from .core.detector import DetectionResult, LivenessDetector
from .core.features import FeatureVector, extract_features
from .core.pipeline import ChatVerifier, VerificationReport
from .core.streaming import (
    AttemptVerdict,
    CallStatus,
    ClipQuality,
    GatedAttempt,
    StreamingState,
    StreamingVerifier,
)
from .core.voting import Verdict, VotingCombiner
from .engine import ExecutionEngine, FeatureCache, PerfReport
from .experiments.faultmatrix import (
    DEFAULT_FAULT_SPEC,
    FaultCell,
    FaultMatrixResult,
    run_fault_matrix,
    simulate_faulted_session,
)
from .experiments.simulate import (
    simulate_adaptive_attack_session,
    simulate_attack_session,
    simulate_genuine_session,
    simulate_replay_attack_session,
)
from .faults import FaultSchedule, FaultSpec
from .obs import (
    PIPELINE_STAGES,
    TRACE_SCHEMA,
    Instrumentation,
    JsonlTraceSink,
    MetricsRegistry,
    MetricsSnapshot,
    Tracer,
    read_trace,
    render_json,
    render_prometheus,
)

__all__ = [
    "AttemptVerdict",
    "CallStatus",
    "ClipQuality",
    "DEFAULT_FAULT_SPEC",
    "FaultCell",
    "FaultMatrixResult",
    "FaultSchedule",
    "FaultSpec",
    "GatedAttempt",
    "ChatVerifier",
    "DetectionResult",
    "DetectorConfig",
    "ExecutionEngine",
    "FeatureCache",
    "FeatureVector",
    "Instrumentation",
    "JsonlTraceSink",
    "LivenessDetector",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PAPER_CONFIG",
    "PIPELINE_STAGES",
    "PerfReport",
    "StreamingState",
    "StreamingVerifier",
    "TRACE_SCHEMA",
    "Tracer",
    "Verdict",
    "VerificationReport",
    "VotingCombiner",
    "extract_features",
    "read_trace",
    "render_json",
    "render_prometheus",
    "run_fault_matrix",
    "simulate_adaptive_attack_session",
    "simulate_attack_session",
    "simulate_faulted_session",
    "simulate_genuine_session",
    "simulate_replay_attack_session",
]
