"""Experiment runners: one function per paper figure/table.

Each runner consumes a :class:`~repro.experiments.dataset.FeatureDataset`
(or builds sweep-specific ones), replays the paper's training/testing
protocol, and returns a small result dataclass that the benchmark
harness prints as the figure's rows/series.

Protocol (Sec. VIII-C): per volunteer, 20 rounds; in each round 20
randomly-picked genuine instances train the LOF model and the remaining
instances test it; attacks are scored against the same trained model.
"Own" training uses the tested volunteer's clips, "other" training uses a
different volunteer's clips — the paper's no-new-user-training property.

Execution model
---------------
Every ``run_*`` function accepts an optional
:class:`~repro.engine.ExecutionEngine`.  The Monte-Carlo rounds are
partitioned into self-contained tasks (one task per user, sweep point,
or training size), and every round derives its random generator from
the experiment seed plus the task's coordinates
(:func:`~repro.engine.task_rng`), never from a shared stream.  The
result is therefore a pure function of the inputs: serial execution,
``engine(jobs=1)``, and ``engine(jobs=N)`` are all bit-identical.

With an engine, feature matrices are derived from the clips' raw
luminance signals through the engine's content-addressed cache instead
of read from the dataset's precomputed columns — byte-identical values
(the dataset stored exactly what extraction returns), but sweeps that
revisit the same clips (threshold, attempts, training size, zero-delay
forgery) stop re-running the preprocessing chain, and ablations that
change the config reuse the raw clips without resimulation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..core.config import DetectorConfig
from ..core.detector import LivenessDetector
from ..core.features import extract_features_batch
from ..core.voting import VotingCombiner
from ..engine import ExecutionEngine, task_rng
from .dataset import ATTACK, GENUINE, FeatureDataset, build_dataset
from .metrics import equal_error_rate
from .profiles import DEFAULT_ENVIRONMENT, Environment, UserProfile, make_population

__all__ = [
    "UserPerformance",
    "OverallResult",
    "ThresholdSweepResult",
    "AttemptsResult",
    "TrainingSizeResult",
    "SweepPoint",
    "RateSweepResult",
    "DelaySweepResult",
    "run_overall",
    "run_threshold_sweep",
    "run_attempts",
    "run_training_size",
    "run_screen_size",
    "run_sampling_rate",
    "run_ambient_light",
    "run_forgery_delay",
    "score_round",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def score_round(
    genuine: np.ndarray,
    attacks: np.ndarray,
    train_size: int,
    config: DetectorConfig,
    rng: np.random.Generator,
    train_pool: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One protocol round: fit on ``train_size`` sampled training vectors,
    return (genuine test scores, attack scores).

    When ``train_pool`` is None the tested user's own genuine vectors are
    split into train/test; otherwise the pool provides the training
    sample ("other user" training) and *all* genuine vectors are tested.

    The round is fitted through :class:`LivenessDetector` — the same
    deployable unit the end-to-end verifiers use — so the protocol and
    the product cannot drift apart on threshold or neighbor semantics.
    """
    if genuine.shape[0] < 2:
        raise ValueError("need at least 2 genuine instances")
    if train_pool is None:
        perm = rng.permutation(genuine.shape[0])
        train = genuine[perm[:train_size]]
        test = genuine[perm[train_size:]]
        if test.shape[0] == 0:
            raise ValueError("train_size consumes every genuine instance")
    else:
        idx = rng.choice(train_pool.shape[0], size=min(train_size, train_pool.shape[0]), replace=False)
        train = train_pool[idx]
        test = genuine
    detector = LivenessDetector(config).fit(train)
    genuine_scores = detector.score_samples(test)
    attack_scores = (
        detector.score_samples(attacks) if attacks.shape[0] else np.empty(0)
    )
    return genuine_scores, attack_scores


def _map(
    engine: ExecutionEngine | None,
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    stage: str,
) -> list[Any]:
    """Run protocol tasks through the engine, or serially without one.

    The engine path goes through :meth:`ExecutionEngine.map_batches` —
    the single place chunk sizing and worker submission live — so every
    runner (sweeps here, session simulation, the fault matrix) shares
    one submission policy.
    """
    if engine is None:
        return [fn(task) for task in tasks]
    return engine.map_batches(fn, tasks, stage=stage)


def _features_of(
    dataset: FeatureDataset,
    user: str,
    role: str,
    config: DetectorConfig,
    engine: ExecutionEngine | None,
) -> np.ndarray:
    """Feature matrix of one (user, role) selection.

    Without an engine this reads the dataset's precomputed features;
    with one, features are derived from the raw signals through the
    content-addressed cache (identical values, shareable across sweeps).
    """
    if engine is None:
        return dataset.features_of(user, role)
    clips = dataset.select(user, role)
    if not clips:
        return np.empty((0, 4), dtype=np.float64)
    features = engine.extract_features_batch(
        [(c.transmitted_luminance, c.received_luminance) for c in clips], config
    )
    return np.stack([fv.as_array() for fv in features])


# ----------------------------------------------------------------------
# Fig. 11 — overall TAR / TRR per user, own vs other training
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class UserPerformance:
    """Fig. 11 bars for one volunteer."""

    user: str
    tar_own_mean: float
    tar_own_std: float
    tar_other_mean: float
    tar_other_std: float
    trr_mean: float
    trr_std: float


@dataclasses.dataclass(frozen=True)
class OverallResult:
    """Fig. 11: per-user and averaged single-detection performance."""

    per_user: tuple[UserPerformance, ...]
    avg_tar_own: float
    avg_tar_other: float
    avg_trr: float


def _overall_user_task(
    payload: tuple[np.ndarray, np.ndarray, np.ndarray, DetectorConfig, int, int, int, int],
) -> tuple[list[float], list[float], list[float]]:
    """All rounds of one user's Fig. 11 evaluation (one engine task)."""
    genuine, attacks, other, config, rounds, train_size, seed, user_index = payload
    threshold = config.lof_threshold
    tars_own: list[float] = []
    tars_other: list[float] = []
    trrs: list[float] = []
    for round_index in range(rounds):
        rng = task_rng(seed, user_index, round_index)
        g_scores, a_scores = score_round(genuine, attacks, train_size, config, rng)
        tars_own.append(float((g_scores <= threshold).mean()))
        if a_scores.size:
            trrs.append(float((a_scores > threshold).mean()))
        g_scores_other, _ = score_round(
            genuine, np.empty((0, 4)), train_size, config, rng, train_pool=other
        )
        tars_other.append(float((g_scores_other <= threshold).mean()))
    return tars_own, tars_other, trrs


def run_overall(
    dataset: FeatureDataset,
    config: DetectorConfig | None = None,
    rounds: int = 20,
    train_size: int = 20,
    seed: int = 7,
    engine: ExecutionEngine | None = None,
) -> OverallResult:
    """Reproduce Fig. 11 (Sec. VIII-C)."""
    config = config or DetectorConfig()
    users = dataset.users
    if len(users) < 2:
        raise ValueError("overall evaluation needs at least 2 users")
    payloads = []
    for i, user in enumerate(users):
        genuine = _features_of(dataset, user, GENUINE, config, engine)
        attacks = _features_of(dataset, user, ATTACK, config, engine)
        other = _features_of(dataset, users[(i + 1) % len(users)], GENUINE, config, engine)
        payloads.append((genuine, attacks, other, config, rounds, train_size, seed, i))
    rows = _map(engine, _overall_user_task, payloads, stage="rounds")
    per_user = []
    for user, (tars_own, tars_other, trrs) in zip(users, rows):
        per_user.append(
            UserPerformance(
                user=user,
                tar_own_mean=float(np.mean(tars_own)),
                tar_own_std=float(np.std(tars_own)),
                tar_other_mean=float(np.mean(tars_other)),
                tar_other_std=float(np.std(tars_other)),
                trr_mean=float(np.mean(trrs)) if trrs else float("nan"),
                trr_std=float(np.std(trrs)) if trrs else float("nan"),
            )
        )
    return OverallResult(
        per_user=tuple(per_user),
        avg_tar_own=float(np.mean([u.tar_own_mean for u in per_user])),
        avg_tar_other=float(np.mean([u.tar_other_mean for u in per_user])),
        avg_trr=float(np.mean([u.trr_mean for u in per_user])),
    )


# ----------------------------------------------------------------------
# Fig. 12 — decision-threshold sweep, EER
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ThresholdSweepResult:
    """Fig. 12: FAR/FRR across the decision threshold."""

    thresholds: np.ndarray
    far: np.ndarray
    frr: np.ndarray
    eer: float
    eer_threshold: float


def _threshold_user_task(
    payload: tuple[np.ndarray, np.ndarray, DetectorConfig, int, int, int, int],
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """All rounds of one user's pooled-score collection (one engine task)."""
    genuine, attacks, config, rounds, train_size, seed, user_index = payload
    genuine_scores: list[np.ndarray] = []
    attack_scores: list[np.ndarray] = []
    for round_index in range(rounds):
        rng = task_rng(seed, user_index, round_index)
        g, a = score_round(genuine, attacks, train_size, config, rng)
        genuine_scores.append(g)
        attack_scores.append(a)
    return genuine_scores, attack_scores


def run_threshold_sweep(
    dataset: FeatureDataset,
    config: DetectorConfig | None = None,
    thresholds: Sequence[float] | None = None,
    rounds: int = 20,
    train_size: int = 20,
    seed: int = 11,
    engine: ExecutionEngine | None = None,
) -> ThresholdSweepResult:
    """Reproduce Fig. 12 (Sec. VIII-D).

    LOF scores do not depend on the threshold, so each round is scored
    once and every threshold reads from the pooled score arrays.
    """
    config = config or DetectorConfig()
    if thresholds is None:
        thresholds = np.arange(1.5, 4.01, 0.25)
    thresholds = np.asarray(list(thresholds), dtype=np.float64)
    payloads = []
    for i, user in enumerate(dataset.users):
        genuine = _features_of(dataset, user, GENUINE, config, engine)
        attacks = _features_of(dataset, user, ATTACK, config, engine)
        payloads.append((genuine, attacks, config, rounds, train_size, seed, i))
    rows = _map(engine, _threshold_user_task, payloads, stage="rounds")
    genuine_scores: list[np.ndarray] = []
    attack_scores: list[np.ndarray] = []
    for g_list, a_list in rows:
        genuine_scores.extend(g_list)
        attack_scores.extend(a_list)
    g_all = np.concatenate(genuine_scores)
    a_all = np.concatenate(attack_scores)
    far = np.array([float((a_all <= t).mean()) for t in thresholds])
    frr = np.array([float((g_all > t).mean()) for t in thresholds])
    eer, eer_threshold = equal_error_rate(g_all, a_all)
    return ThresholdSweepResult(
        thresholds=thresholds, far=far, frr=frr, eer=eer, eer_threshold=eer_threshold
    )


# ----------------------------------------------------------------------
# Fig. 14 — number of detection attempts (majority voting)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AttemptsResult:
    """Fig. 14: accuracy vs number of voting attempts."""

    attempts: tuple[int, ...]
    tar_own_mean: np.ndarray
    tar_own_std: np.ndarray
    tar_other_mean: np.ndarray
    tar_other_std: np.ndarray
    trr_mean: np.ndarray
    trr_std: np.ndarray


def _attempts_user_task(
    payload: tuple[
        np.ndarray, np.ndarray, np.ndarray, DetectorConfig,
        tuple[int, ...], int, int, int, int, int,
    ],
) -> tuple[dict[int, list[float]], dict[int, list[float]], dict[int, list[float]]]:
    """All voting rounds of one user's Fig. 14 evaluation."""
    (
        genuine, attacks, other, config,
        attempts, rounds, trials_per_round, train_size, seed, user_index,
    ) = payload
    combiner = VotingCombiner(config.vote_fraction)
    threshold = config.lof_threshold
    acc_own: dict[int, list[float]] = {d: [] for d in attempts}
    acc_other: dict[int, list[float]] = {d: [] for d in attempts}
    rej: dict[int, list[float]] = {d: [] for d in attempts}
    for round_index in range(rounds):
        rng = task_rng(seed, user_index, round_index)
        g_own, a_own = score_round(genuine, attacks, train_size, config, rng)
        g_other, _ = score_round(
            genuine, np.empty((0, 4)), train_size, config, rng, train_pool=other
        )
        for d in attempts:
            for scores, sink, attacker_truth in (
                (g_own, acc_own, False),
                (g_other, acc_other, False),
                (a_own, rej, True),
            ):
                if scores.size == 0:
                    continue
                correct = 0
                for _ in range(trials_per_round):
                    picked = rng.choice(scores, size=d, replace=True)
                    verdict = combiner.combine_bools(list(picked > threshold))
                    if verdict.is_attacker == attacker_truth:
                        correct += 1
                sink[d].append(correct / trials_per_round)
    return acc_own, acc_other, rej


def run_attempts(
    dataset: FeatureDataset,
    config: DetectorConfig | None = None,
    attempts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    rounds: int = 20,
    trials_per_round: int = 10,
    train_size: int = 20,
    seed: int = 13,
    engine: ExecutionEngine | None = None,
) -> AttemptsResult:
    """Reproduce Fig. 14 (Sec. VIII-F): majority voting over D attempts."""
    config = config or DetectorConfig()
    attempts = tuple(attempts)
    users = dataset.users
    payloads = []
    for i, user in enumerate(users):
        genuine = _features_of(dataset, user, GENUINE, config, engine)
        attacks = _features_of(dataset, user, ATTACK, config, engine)
        other = _features_of(dataset, users[(i + 1) % len(users)], GENUINE, config, engine)
        payloads.append(
            (genuine, attacks, other, config,
             attempts, rounds, trials_per_round, train_size, seed, i)
        )
    rows = _map(engine, _attempts_user_task, payloads, stage="rounds")

    acc_own: dict[int, list[float]] = {d: [] for d in attempts}
    acc_other: dict[int, list[float]] = {d: [] for d in attempts}
    rej: dict[int, list[float]] = {d: [] for d in attempts}
    for user_own, user_other, user_rej in rows:
        for d in attempts:
            acc_own[d].extend(user_own[d])
            acc_other[d].extend(user_other[d])
            rej[d].extend(user_rej[d])

    return AttemptsResult(
        attempts=attempts,
        tar_own_mean=np.array([np.mean(acc_own[d]) for d in attempts]),
        tar_own_std=np.array([np.std(acc_own[d]) for d in attempts]),
        tar_other_mean=np.array([np.mean(acc_other[d]) for d in attempts]),
        tar_other_std=np.array([np.std(acc_other[d]) for d in attempts]),
        trr_mean=np.array([np.mean(rej[d]) for d in attempts]),
        trr_std=np.array([np.std(rej[d]) for d in attempts]),
    )


# ----------------------------------------------------------------------
# Fig. 15 — number of training instances
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TrainingSizeResult:
    """Fig. 15: accuracy vs training-set size (one volunteer)."""

    sizes: tuple[int, ...]
    tar_mean: np.ndarray
    tar_std: np.ndarray
    trr_mean: np.ndarray
    trr_std: np.ndarray


def _training_size_task(
    payload: tuple[np.ndarray, np.ndarray, DetectorConfig, int, int, int, int],
) -> tuple[list[float], list[float]]:
    """All rounds at one training-set size (one engine task)."""
    genuine, attacks, config, size, rounds, seed, size_index = payload
    threshold = config.lof_threshold
    tars: list[float] = []
    trrs: list[float] = []
    for round_index in range(rounds):
        rng = task_rng(seed, size_index, round_index)
        g, a = score_round(genuine, attacks, size, config, rng)
        tars.append(float((g <= threshold).mean()))
        trrs.append(float((a > threshold).mean()))
    return tars, trrs


def run_training_size(
    dataset: FeatureDataset,
    user: str | None = None,
    config: DetectorConfig | None = None,
    sizes: Sequence[int] = (4, 8, 12, 16, 20),
    rounds: int = 20,
    seed: int = 17,
    engine: ExecutionEngine | None = None,
) -> TrainingSizeResult:
    """Reproduce Fig. 15 (Sec. VIII-G)."""
    config = config or DetectorConfig()
    user = user or dataset.users[0]
    genuine = _features_of(dataset, user, GENUINE, config, engine)
    attacks = _features_of(dataset, user, ATTACK, config, engine)
    payloads = [
        (genuine, attacks, config, size, rounds, seed, size_index)
        for size_index, size in enumerate(sizes)
    ]
    rows = _map(engine, _training_size_task, payloads, stage="rounds")
    tar_mean, tar_std, trr_mean, trr_std = [], [], [], []
    for tars, trrs in rows:
        tar_mean.append(np.mean(tars))
        tar_std.append(np.std(tars))
        trr_mean.append(np.mean(trrs))
        trr_std.append(np.std(trrs))
    return TrainingSizeResult(
        sizes=tuple(sizes),
        tar_mean=np.array(tar_mean),
        tar_std=np.array(tar_std),
        trr_mean=np.array(trr_mean),
        trr_std=np.array(trr_std),
    )


# ----------------------------------------------------------------------
# Environment sweeps: screen size (Fig. 13), sampling rate (Fig. 16),
# ambient light (Sec. VIII-I)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration of an environment sweep."""

    label: str
    tar_mean: float
    tar_std: float
    trr_mean: float
    trr_std: float


@dataclasses.dataclass(frozen=True)
class RateSweepResult:
    """A labelled series of sweep points."""

    name: str
    points: tuple[SweepPoint, ...]


def _eval_user_task(
    payload: tuple[
        np.ndarray, np.ndarray, np.ndarray | None, int,
        DetectorConfig, int, tuple[int, ...], int,
    ],
) -> tuple[list[float], list[float]]:
    """All rounds of one user within one sweep point (one engine task)."""
    genuine, attacks, pool, effective_train, config, rounds, seed_key, user_index = payload
    threshold = config.lof_threshold
    tars: list[float] = []
    trrs: list[float] = []
    for round_index in range(rounds):
        rng = task_rng(*seed_key, user_index, round_index)
        g, a = score_round(
            genuine, attacks, effective_train, config, rng, train_pool=pool
        )
        tars.append(float((g <= threshold).mean()))
        if a.size:
            trrs.append(float((a > threshold).mean()))
    return tars, trrs


def _evaluate_dataset(
    dataset: FeatureDataset,
    config: DetectorConfig,
    rounds: int,
    train_size: int,
    seed: int | Sequence[int],
    train_dataset: FeatureDataset | None = None,
    engine: ExecutionEngine | None = None,
) -> tuple[float, float, float, float]:
    """Pooled TAR/TRR (mean, std over rounds) across the dataset's users.

    When ``train_dataset`` is given, each user's LOF bank is drawn from
    *that* dataset (the nominal condition) while testing happens on
    ``dataset`` (the swept condition) — the deployment-faithful protocol
    for environment sweeps.  Training per swept condition would let a
    degenerate environment (no reflection at all) collapse genuine and
    attack features onto the same point and report a flattering TAR with
    zero real security.
    """
    seed_key = (seed,) if isinstance(seed, int) else tuple(seed)
    payloads = []
    for i, user in enumerate(dataset.users):
        genuine = _features_of(dataset, user, GENUINE, config, engine)
        attacks = _features_of(dataset, user, ATTACK, config, engine)
        if train_dataset is None:
            effective_train = min(train_size, genuine.shape[0] - 1)
            pool = None
        else:
            pool = _features_of(train_dataset, user, GENUINE, config, engine)
            if pool.shape[0] < 2:
                raise ValueError(f"train dataset lacks genuine clips for {user!r}")
            effective_train = min(train_size, pool.shape[0])
        payloads.append(
            (genuine, attacks, pool, effective_train, config, rounds, seed_key, i)
        )
    rows = _map(engine, _eval_user_task, payloads, stage="rounds")
    tars: list[float] = []
    trrs: list[float] = []
    for user_tars, user_trrs in rows:
        tars.extend(user_tars)
        trrs.extend(user_trrs)
    return (
        float(np.mean(tars)),
        float(np.std(tars)),
        float(np.mean(trrs)) if trrs else float("nan"),
        float(np.std(trrs)) if trrs else float("nan"),
    )


def run_screen_size(
    screens: Sequence[tuple[str, Environment]],
    population: Sequence[UserProfile] | None = None,
    config: DetectorConfig | None = None,
    train_env: Environment | None = None,
    clips_per_role: int = 20,
    rounds: int = 10,
    train_size: int = 10,
    seed: int = 19,
    progress: bool = False,
    engine: ExecutionEngine | None = None,
) -> RateSweepResult:
    """Reproduce Fig. 13 (Sec. VIII-E): performance vs screen size.

    ``screens`` is a list of (label, environment) pairs — environments
    differ in ``screen`` and possibly ``viewing_distance_m`` (the paper's
    6-inch-phone-at-10-cm observation).  Training banks come from the
    ``train_env`` (nominal testbed) dataset: the system is enrolled once
    and then used in front of whatever screen the user has.
    """
    config = config or DetectorConfig()
    population = list(population) if population is not None else make_population(4)
    train_dataset = build_dataset(
        population=population,
        clips_per_role=clips_per_role,
        env=train_env or DEFAULT_ENVIRONMENT,
        config=config,
        progress=progress,
        engine=engine,
    )
    points = []
    for point_index, (label, env) in enumerate(screens):
        dataset = build_dataset(
            population=population,
            clips_per_role=clips_per_role,
            env=env,
            config=config,
            progress=progress,
            engine=engine,
        )
        tar_m, tar_s, trr_m, trr_s = _evaluate_dataset(
            dataset, config, rounds, train_size,
            seed=(seed, point_index), train_dataset=train_dataset, engine=engine,
        )
        points.append(SweepPoint(label, tar_m, tar_s, trr_m, trr_s))
    return RateSweepResult(name="screen size", points=tuple(points))


def run_sampling_rate(
    rates_hz: Sequence[float] = (5.0, 8.0, 10.0),
    population: Sequence[UserProfile] | None = None,
    config: DetectorConfig | None = None,
    env: Environment | None = None,
    clips_per_role: int = 40,
    rounds: int = 20,
    train_size: int = 20,
    seed: int = 23,
    progress: bool = False,
    engine: ExecutionEngine | None = None,
) -> RateSweepResult:
    """Reproduce Fig. 16 (Sec. VIII-H): performance vs sampling rate.

    The paper uses one volunteer; the default population does too.  The
    filter-chain windows stay fixed *in samples* (the paper specifies
    them that way), which is precisely why low rates collapse: at 5 Hz
    the 30-sample RMS window spans 6 s and smears neighbouring changes
    together.

    Unlike the environment sweeps, training happens *at the swept rate*:
    the sampling rate is a detector build-time choice, so a 5 Hz system
    would also have enrolled at 5 Hz.
    """
    base_config = config or DetectorConfig()
    env = env or DEFAULT_ENVIRONMENT
    population = list(population) if population is not None else make_population(1)
    points = []
    for point_index, rate in enumerate(rates_hz):
        rate_config = base_config.with_overrides(sample_rate_hz=float(rate))
        dataset = build_dataset(
            population=population,
            clips_per_role=clips_per_role,
            env=env,
            config=rate_config,
            progress=progress,
            engine=engine,
        )
        tar_m, tar_s, trr_m, trr_s = _evaluate_dataset(
            dataset, rate_config, rounds, train_size,
            seed=(seed, point_index), engine=engine,
        )
        points.append(SweepPoint(f"{rate:g} Hz", tar_m, tar_s, trr_m, trr_s))
    return RateSweepResult(name="sampling rate", points=tuple(points))


def run_ambient_light(
    lux_levels: Sequence[float] = (50.0, 120.0, 240.0),
    population: Sequence[UserProfile] | None = None,
    config: DetectorConfig | None = None,
    env: Environment | None = None,
    clips_per_role: int = 20,
    rounds: int = 10,
    train_size: int = 10,
    seed: int = 29,
    progress: bool = False,
    engine: ExecutionEngine | None = None,
) -> RateSweepResult:
    """Reproduce Sec. VIII-I: performance vs ambient illuminance."""
    config = config or DetectorConfig()
    base_env = env or DEFAULT_ENVIRONMENT
    population = list(population) if population is not None else make_population(2)
    # Enrollment happens in the nominal room; the sweep changes the room.
    train_dataset = build_dataset(
        population=population,
        clips_per_role=clips_per_role,
        env=base_env,
        config=config,
        progress=progress,
        engine=engine,
    )
    points = []
    for point_index, lux in enumerate(lux_levels):
        sweep_env = base_env.replace(prover_ambient_lux=float(lux))
        dataset = build_dataset(
            population=population,
            clips_per_role=clips_per_role,
            env=sweep_env,
            config=config,
            progress=progress,
            engine=engine,
        )
        tar_m, tar_s, trr_m, trr_s = _evaluate_dataset(
            dataset, config, rounds, train_size,
            seed=(seed, point_index), train_dataset=train_dataset, engine=engine,
        )
        points.append(SweepPoint(f"{lux:g} lux", tar_m, tar_s, trr_m, trr_s))
    return RateSweepResult(name="ambient light", points=tuple(points))


# ----------------------------------------------------------------------
# Fig. 17 — forgery processing delay
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DelaySweepResult:
    """Fig. 17: rejection rate vs forgery processing delay."""

    delays_s: np.ndarray
    rejection_rate: np.ndarray


def _delayed_received(received: np.ndarray, shift: int) -> np.ndarray:
    """The received signal as a forger with ``shift`` samples of
    processing delay would present it."""
    if shift <= 0:
        return received
    return np.concatenate([np.full(shift, received[0]), received[:-shift]])


def run_forgery_delay(
    dataset: FeatureDataset,
    config: DetectorConfig | None = None,
    delays_s: Sequence[float] = (0.0, 0.3, 0.5, 0.8, 1.0, 1.3, 1.6, 2.0, 2.5, 3.0),
    rounds: int = 5,
    train_size: int = 20,
    max_clips_per_user: int = 20,
    seed: int = 31,
    engine: ExecutionEngine | None = None,
) -> DelaySweepResult:
    """Reproduce Fig. 17 (Sec. VIII-J).

    The paper's method, exactly: take *legitimate* signal pairs (i.e. an
    attacker who forges the reflected luminance perfectly), shift the
    received signal by the forgery processing delay, and measure how the
    rejection rate grows with the delay.  With an engine, the zero-delay
    point is a pure cache hit (the shifted pair *is* the original clip),
    and each delay's re-extraction fans out over the pool.
    """
    config = config or DetectorConfig()
    delays = np.asarray(list(delays_s), dtype=np.float64)
    rejection = np.zeros_like(delays)

    per_user_clips = {
        user: dataset.select(user, GENUINE)[:max_clips_per_user]
        for user in dataset.users
    }

    # Pre-fit `rounds` detectors per user on independent training samples.
    detectors: dict[str, list[LivenessDetector]] = {}
    for user_index, user in enumerate(dataset.users):
        genuine = _features_of(dataset, user, GENUINE, config, engine)
        size = min(train_size, genuine.shape[0] - 1)
        user_detectors = []
        for round_index in range(rounds):
            rng = task_rng(seed, user_index, round_index)
            perm = rng.permutation(genuine.shape[0])
            user_detectors.append(LivenessDetector(config).fit(genuine[perm[:size]]))
        detectors[user] = user_detectors

    for d_index, delay in enumerate(delays):
        shift = int(round(delay * config.sample_rate_hz))
        ordered_users = [u for u, clips in per_user_clips.items() if clips]
        pairs = [
            (clip.transmitted_luminance, _delayed_received(clip.received_luminance, shift))
            for user in ordered_users
            for clip in per_user_clips[user]
        ]
        if engine is None:
            feature_vectors = [
                extraction.features
                for extraction in extract_features_batch(pairs, config)
            ]
        else:
            feature_vectors = engine.extract_features_batch(pairs, config)
        rejected = 0
        total = 0
        cursor = 0
        for user in ordered_users:
            for _ in per_user_clips[user]:
                features = feature_vectors[cursor]
                cursor += 1
                for detector in detectors[user]:
                    rejected += int(detector.verify_features(features).rejected)
                    total += 1
        rejection[d_index] = rejected / total if total else float("nan")
    return DelaySweepResult(delays_s=delays, rejection_rate=rejection)
