"""Protocol matrix: what the nonce-binding layer adds over the LOF.

The motivating gap: a recording of the victim *genuinely answering an
earlier call* carries a flawless luminance response — the LOF alone
grades it live.  This sweep runs each prover role through the full chat
stack twice, with the challenge-binding protocol off and on, so the two
columns show exactly which verdicts the cryptographic layer changes:

========  ==================  ============================
role      protocol off        protocol on
========  ==================  ============================
genuine   LIVE                LIVE (binding grades BOUND)
replay    LIVE  *(the gap)*   REPLAY
stale     ATTACKER            STALE (attributed)
attack    ATTACKER            ATTACKER
========  ==================  ============================

Every cell is a self-contained seeded task (the
:mod:`~repro.experiments.faultmatrix` pattern), so ``engine(jobs=N)``
is bit-identical to serial execution.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..attack.reenactment import ReenactmentAttacker
from ..attack.replayschedule import ReplayScheduleAttacker, StaleRelayAttacker
from ..attack.target import TargetRecording
from ..chat.endpoints import DerivedMeteringBehavior
from ..chat.session import SessionRecord, VideoChatSession
from ..core.config import DetectorConfig
from ..core.detector import LivenessDetector
from ..core.seeding import spawn_seeds
from ..core.streaming import StreamingVerifier
from ..engine import ExecutionEngine, task_rng
from ..obs.instrument import Instrumentation
from ..protocol import ProtocolConfig, ProtocolProvisioner
from ..protocol.gate import ProtocolGate
from ..protocol.nonce import ack_tag, handshake_payload
from .faultmatrix import _enrollment_bank
from .profiles import DEFAULT_ENVIRONMENT, Environment, UserProfile
from .runner import _map
from .simulate import (
    build_genuine_prover,
    build_links,
    build_verifier,
    default_user,
)

__all__ = [
    "PROTOCOL_ROLES",
    "ProtocolCell",
    "ProtocolMatrixResult",
    "run_protocol_matrix",
    "simulate_protocol_session",
]

PROTOCOL_ROLES = ("genuine", "replay", "stale", "attack")

#: Deployment secret of the simulated verifier service.  Any fixed
#: string works — both call ends and the grader derive from it.
_EXPERIMENT_SECRET = "repro-protocol-matrix"


def _build_protocol_prover(
    role: str,
    gate: ProtocolGate,
    prior: ProtocolGate | None,
    clips: int,
    warmup_s: float,
    user: UserProfile,
    env: Environment,
    seed: int,
):
    """The untrusted endpoint for one cell role.

    ``replay`` needs the *prior* session's gate (the schedules the
    recorded footage answered); everyone else plays against the live
    session only.
    """
    if role == "genuine":
        prover = build_genuine_prover(user, env, seed)
        key, nonce = gate.tenant_key, gate.nonce
        prover.on_handshake = lambda payload: ack_tag(
            key, bytes.fromhex(payload["nonce"])
        ).hex()
        return prover
    s_target, s_attacker = spawn_seeds(seed, 2)
    target = TargetRecording(victim=user.face, seed=s_target)
    if role == "replay":
        observed = prior if prior is not None else gate
        return ReplayScheduleAttacker(
            target=target,
            observed_schedules=observed.schedules(clips),
            start_offset_s=warmup_s,
            frame_size=env.frame_size,
            seed=s_attacker,
        )
    if role == "stale":
        return StaleRelayAttacker(
            target=target,
            frame_size=env.frame_size,
            seed=s_attacker,
            mimic_screen=env.screen,
            mimic_distance_m=env.viewing_distance_m,
            ambient_lux=env.prover_ambient_lux,
        )
    if role == "attack":
        return ReenactmentAttacker(
            target=target,
            artifact_level=0.012,
            frame_size=env.frame_size,
            seed=s_attacker,
        )
    raise ValueError(f"unknown role {role!r} (expected one of {PROTOCOL_ROLES})")


def simulate_protocol_session(
    role: str,
    gate: ProtocolGate,
    clips: int = 2,
    seed: int = 0,
    prior: ProtocolGate | None = None,
    env: Environment | None = None,
    user: UserProfile | None = None,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """One chat session whose verifier drives the *derived* schedule.

    The verifier's metering replays ``gate``'s nonce-derived challenge
    times (:class:`~repro.chat.endpoints.DerivedMeteringBehavior`) and
    its frames carry the handshake payload; the prover is built per
    ``role``.  The recording is what a
    :class:`~repro.core.streaming.StreamingVerifier` with the same gate
    bound would observe.
    """
    env = env or DEFAULT_ENVIRONMENT
    user = user or default_user()
    s_prover, s_verifier, s_links = spawn_seeds(seed, 3)
    verifier = build_verifier(env, s_verifier)
    warmup_s = 2.0  # VideoChatSession default; schedule times shift by it
    background = verifier.renderer.background
    verifier.metering = DerivedMeteringBehavior(
        bright_spot=background.bright_spot,
        dark_spot=background.dark_spot,
        schedules=gate.schedules(clips),
        start_offset_s=warmup_s,
    )
    verifier.handshake = handshake_payload(gate.session_id, gate.nonce)
    prover = _build_protocol_prover(
        role, gate, prior, clips, warmup_s, user, env, s_prover
    )
    uplink, downlink = build_links(env, s_links, instrumentation)
    session = VideoChatSession(
        verifier=verifier,
        prover=prover,
        uplink=uplink,
        downlink=downlink,
        fps=env.fps,
        warmup_s=warmup_s,
        instrumentation=instrumentation,
    )
    return session.run(clips * gate.config.clip_duration_s)


@dataclasses.dataclass(frozen=True)
class ProtocolCell:
    """Aggregate behaviour of one (role, protocol on/off) grid cell."""

    role: str
    protocol: bool
    sessions: int
    statuses: tuple[str, ...]  # final CallStatus.value per session
    bindings: dict[str, int]  # BindingOutcome.value -> clips (on-cells)
    acks_ok: int  # sessions whose prover answered the handshake

    @property
    def condemned_fraction(self) -> float:
        condemned = sum(
            s in ("attacker", "replay", "stale") for s in self.statuses
        )
        return condemned / self.sessions if self.sessions else 0.0


@dataclasses.dataclass(frozen=True)
class ProtocolMatrixResult:
    """The full role × protocol matrix."""

    roles: tuple[str, ...]
    cells: tuple[ProtocolCell, ...]

    def cell(self, role: str, protocol: bool) -> ProtocolCell:
        for cell in self.cells:
            if cell.role == role and cell.protocol == protocol:
                return cell
        raise KeyError(f"no cell for role={role!r}, protocol={protocol}")

    def lines(self) -> list[str]:
        out = [
            f"{'role':>8s} {'protocol':>9s} {'condemned':>10s} "
            f"{'acks':>5s}  statuses / bindings"
        ]
        for c in self.cells:
            bindings = " ".join(
                f"{name}={count}" for name, count in sorted(c.bindings.items())
            )
            tail = ",".join(c.statuses) + (f"  [{bindings}]" if bindings else "")
            out.append(
                f"{c.role:>8s} {'on' if c.protocol else 'off':>9s} "
                f"{c.condemned_fraction:10.2f} {c.acks_ok:5d}  {tail}"
            )
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


def _protocol_cell_task(payload: tuple) -> dict:
    """One grid cell (module-level and self-seeded: picklable,
    bit-identical on any worker count).

    Each session provisions a *prior* gate first (the tenant's previous
    call — what a recording attacker observed and what the verifier's
    ledger remembers) and then the live gate, mirroring the service's
    submit-order ledger discipline.
    """
    (bank, config, protocol_config, role, use_protocol, sessions,
     clips, seed, env, user, r_idx, p_idx) = payload
    detector = LivenessDetector(config).fit(bank)
    provisioner = ProtocolProvisioner(
        _EXPERIMENT_SECRET, config=config, protocol=protocol_config
    )
    statuses: list[str] = []
    bindings: dict[str, int] = {}
    acks_ok = 0
    for k in range(sessions):
        # p_idx is deliberately absent from the seed chain: the off and
        # on columns replay the *same* sessions, so any verdict
        # difference between them is the binding layer's doing.
        session_seed = int(task_rng(seed, r_idx, 7, k).integers(0, 2**31 - 1))
        tenant = f"cell-{r_idx}"
        prior = provisioner.provision(tenant, f"prior-{k:03d}")
        gate = provisioner.provision(tenant, f"live-{k:03d}")
        record = simulate_protocol_session(
            role=role,
            gate=gate,
            clips=clips,
            seed=session_seed,
            prior=prior,
            env=env,
            user=user,
        )
        streaming = StreamingVerifier(detector)
        if use_protocol:
            streaming.bind_protocol(gate)
        acked = False
        for t_frame, r_frame in zip(record.transmitted, record.received):
            ack = r_frame.metadata.get("ack")
            if use_protocol and not acked and ack is not None:
                acked = gate.note_ack(ack)
            streaming.push(t_frame, r_frame)
        statuses.append(streaming.state.status.value)
        acks_ok += int(acked)
        for attempt in streaming.gated_attempts:
            if attempt.binding is not None:
                name = attempt.binding.outcome.value
                bindings[name] = bindings.get(name, 0) + 1
    return {
        "role": role,
        "protocol": use_protocol,
        "sessions": sessions,
        "statuses": tuple(statuses),
        "bindings": bindings,
        "acks_ok": acks_ok,
    }


def run_protocol_matrix(
    roles: Sequence[str] = PROTOCOL_ROLES,
    sessions_per_cell: int = 2,
    clips: int = 2,
    enroll_sessions: int = 8,
    config: DetectorConfig | None = None,
    protocol: ProtocolConfig | None = None,
    env: Environment | None = None,
    user: UserProfile | None = None,
    seed: int = 211,
    engine: ExecutionEngine | None = None,
) -> ProtocolMatrixResult:
    """Sweep role × protocol-on/off through the gated streaming verifier.

    Enrollment happens on the clean passive channel (the same bank the
    fault matrix trains from); each cell then replays
    ``sessions_per_cell`` protocol-driven calls against that model.
    """
    config = config or DetectorConfig()
    protocol = protocol or ProtocolConfig()
    env = env or DEFAULT_ENVIRONMENT
    user = user or default_user()
    roles = tuple(roles)
    if sessions_per_cell < 1:
        raise ValueError("sessions_per_cell must be >= 1")
    if not 1 <= clips <= protocol.commit_attempts:
        raise ValueError(
            f"clips must lie in [1, commit_attempts={protocol.commit_attempts}]"
        )
    unknown = [r for r in roles if r not in PROTOCOL_ROLES]
    if unknown:
        raise ValueError(f"unknown roles {unknown!r} (expected {PROTOCOL_ROLES})")

    bank = _enrollment_bank(config, env, user, enroll_sessions, seed, engine)
    payloads = [
        (bank, config, protocol, role, use_protocol, sessions_per_cell,
         clips, seed, env, user, r_idx, p_idx)
        for r_idx, role in enumerate(roles)
        for p_idx, use_protocol in enumerate((False, True))
    ]
    rows = _map(engine, _protocol_cell_task, payloads, stage="protocolcells")

    cells = [
        ProtocolCell(
            role=row["role"],
            protocol=row["protocol"],
            sessions=row["sessions"],
            statuses=row["statuses"],
            bindings=row["bindings"],
            acks_ok=row["acks_ok"],
        )
        for row in rows
    ]
    if engine is not None:
        instr = engine.instrumentation
        instr.count("protocol_matrix_sessions", sum(c.sessions for c in cells))
        instr.count(
            "protocol_matrix_condemned",
            sum(
                sum(s in ("attacker", "replay", "stale") for s in c.statuses)
                for c in cells
            ),
        )
    return ProtocolMatrixResult(roles=roles, cells=tuple(cells))
