"""Synthetic volunteer population and environment settings.

Stand-in for the paper's testbed (Sec. VIII-A): ten volunteers (diverse
skin tones, some with glasses), a Dell 27-inch LED monitor at 85 %
brightness, ~50 cm viewing distance, a stable indoor environment, and a
consumer network path.  Every experiment draws its sessions from these
profiles so that sweeps (screen size, ambient light, sampling rate, ...)
change exactly one knob at a time.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..screen.display import DELL_27_LED, ScreenSpec
from ..vision.face_model import FaceModel, make_face

__all__ = ["UserProfile", "Environment", "make_population", "DEFAULT_ENVIRONMENT"]


@dataclasses.dataclass(frozen=True)
class UserProfile:
    """One synthetic volunteer (the untrusted-user role)."""

    name: str
    face: FaceModel
    seed: int
    movement_amplitude: float = 0.02
    blink_rate_hz: float = 0.25
    talking: bool = True

    def __post_init__(self) -> None:
        if self.movement_amplitude < 0:
            raise ValueError("movement_amplitude must be non-negative")
        if self.blink_rate_hz < 0:
            raise ValueError("blink_rate_hz must be non-negative")


@dataclasses.dataclass(frozen=True)
class Environment:
    """Everything about the testbed that is not the person.

    The defaults mirror the paper's setup; the figure sweeps construct
    modified copies via :func:`dataclasses.replace`.
    """

    screen: ScreenSpec = DELL_27_LED
    viewing_distance_m: float = 0.5
    prover_ambient_lux: float = 50.0
    prover_ambient_event_rate_hz: float = 0.006
    verifier_ambient_lux: float = 90.0
    uplink_delay_s: float = 0.08
    downlink_delay_s: float = 0.08
    jitter_s: float = 0.01
    loss_rate: float = 0.005
    playout_delay_s: float = 0.12
    fps: float = 10.0
    frame_size: tuple[int, int] = (96, 96)
    verifier_frame_size: tuple[int, int] = (64, 64)

    def __post_init__(self) -> None:
        if self.viewing_distance_m <= 0:
            raise ValueError("viewing_distance_m must be positive")
        if self.prover_ambient_lux < 0 or self.verifier_ambient_lux < 0:
            raise ValueError("ambient levels must be non-negative")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    def replace(self, **changes: object) -> "Environment":
        """Copy with the given fields changed (sweep helper)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


#: The paper's nominal testbed.
DEFAULT_ENVIRONMENT = Environment()

_TONE_CYCLE = ("light", "tan", "medium", "brown", "dark")


def make_population(count: int = 10, seed: int = 42) -> list[UserProfile]:
    """Build the volunteer roster (paper: ten, diverse skin colors).

    Tones cycle through the full ladder so both dark and light skin are
    always represented; a few volunteers wear glasses; movement ranges
    vary per person.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    users = []
    for i in range(count):
        tone = _TONE_CYCLE[i % len(_TONE_CYCLE)]
        has_glasses = i % 4 == 3
        user_seed = int(rng.integers(0, 2**31 - 1))
        face = make_face(
            name=f"user_{i}",
            tone=tone,
            rng=np.random.default_rng(user_seed),
            has_glasses=has_glasses,
        )
        users.append(
            UserProfile(
                name=f"user_{i}",
                face=face,
                seed=user_seed,
                movement_amplitude=float(rng.uniform(0.01, 0.035)),
                blink_rate_hz=float(rng.uniform(0.15, 0.35)),
                talking=bool(rng.random() < 0.8),
            )
        )
    return users
