"""Robustness sweep: detection quality as the call itself degrades.

The paper evaluates the defense on clean recordings; a deployed verifier
rides a real conferencing path that loses packets in bursts, jitters,
freezes frames, and loses the face tracker for whole windows.  This
module sweeps a :class:`~repro.faults.FaultSpec` over a severity grid
and measures, per (severity, role) cell, how the quality-gated streaming
verifier behaves: a *graceful* system turns channel damage into
``INCONCLUSIVE`` attempts instead of condemning live users, while still
flagging reenactment attacks whenever the surviving clips carry enough
evidence.

Like every runner, :func:`run_fault_matrix` is a pure function of its
inputs: each cell is a self-contained task seeded through
:func:`~repro.engine.task_rng`, so ``engine(jobs=N)`` is bit-identical
to serial execution.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..core.config import DetectorConfig
from ..core.detector import LivenessDetector
from ..core.features import extract_features_batch
from ..core.pipeline import ChatVerifier
from ..core.streaming import CallStatus, StreamingVerifier
from ..chat.session import SessionRecord, VideoChatSession
from ..attack.reenactment import ReenactmentAttacker
from ..attack.target import TargetRecording
from ..engine import ExecutionEngine, task_rng
from ..faults import FaultSpec, apply_faults_to_record, build_faulty_links
from ..obs.instrument import Instrumentation
from .dataset import ATTACK, GENUINE
from .profiles import DEFAULT_ENVIRONMENT, Environment, UserProfile
from .runner import _map
from ..core.seeding import spawn_seeds
from .simulate import (
    SessionSpec,
    build_genuine_prover,
    build_links,
    build_verifier,
    default_user,
    simulate_genuine_session,
    simulate_session_batch,
)

__all__ = [
    "DEFAULT_FAULT_SPEC",
    "FaultCell",
    "FaultMatrixResult",
    "run_fault_matrix",
    "simulate_faulted_session",
]

#: Severity-1.0 profile for the standard robustness sweep: a congested
#: wireless path with an unreliable face tracker.  ``scaled(s)`` walks
#: every rate down linearly, so severity 0 is the clean channel.
DEFAULT_FAULT_SPEC = FaultSpec(
    loss_burst_rate=0.30,
    mean_burst_s=1.0,
    jitter_spike_rate=0.25,
    jitter_spike_s=0.15,
    landmark_dropout_rate=0.60,
    mean_dropout_s=1.5,
    freeze_rate=0.25,
    mean_freeze_s=0.8,
    clock_skew=0.01,
)


def _build_prover(role: str, user: UserProfile, env: Environment, seed: int):
    """The untrusted endpoint for one cell role."""
    if role == GENUINE:
        return build_genuine_prover(user, env, seed)
    if role == ATTACK:
        s_target, s_attacker = spawn_seeds(seed, 2)
        return ReenactmentAttacker(
            target=TargetRecording(victim=user.face, seed=s_target),
            artifact_level=0.012,
            frame_size=env.frame_size,
            seed=s_attacker,
        )
    raise ValueError(f"unknown role {role!r} (expected {GENUINE!r} or {ATTACK!r})")


def simulate_faulted_session(
    role: str,
    spec: FaultSpec,
    duration_s: float = 30.0,
    seed: int = 0,
    env: Environment | None = None,
    user: UserProfile | None = None,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """One chat session with a seeded fault schedule riding the path.

    Mirrors :func:`~repro.experiments.simulate.run_session` but wraps
    both channel directions with the compiled schedule and replays the
    receiver-side vision faults (freezes, landmark dropout) over the
    finished recording.  Severity 0 specs produce all-clear schedules,
    so the clean session stays the special case of this function.
    """
    env = env or DEFAULT_ENVIRONMENT
    user = user or default_user()
    s_prover, s_verifier, s_links, s_faults = spawn_seeds(seed, 4)
    prover = _build_prover(role, user, env, s_prover)
    verifier = build_verifier(env, s_verifier)
    uplink, downlink = build_links(env, s_links, instrumentation)
    session = VideoChatSession(
        verifier=verifier,
        prover=prover,
        uplink=uplink,
        downlink=downlink,
        fps=env.fps,
        instrumentation=instrumentation,
    )
    # Frame timestamps are absolute (warm-up included) and arrivals run a
    # little behind the send clock, so the schedule covers the whole run
    # plus a de-jitter margin; `tick_of` clamps anything later.
    schedule = spec.schedule(session.warmup_s + duration_s + 5.0, env.fps, seed=s_faults)
    session.uplink, session.downlink = build_faulty_links(
        uplink, downlink, schedule, instrumentation
    )
    record = session.run(duration_s)
    return apply_faults_to_record(record, schedule, instrumentation)


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FaultCell:
    """Aggregate behaviour of one (severity, role) grid cell."""

    severity: float
    role: str
    sessions: int
    statuses: tuple[str, ...]  # final CallStatus.value per session
    attacker_fraction: float  # sessions ending in ATTACKER
    inconclusive_fraction: float  # sessions ending in INCONCLUSIVE
    attempts_total: int
    attempts_inconclusive: int
    attempts_rejected: int  # conclusive attempts voting "attacker"
    mean_landmark_hit_fraction: float
    mean_frozen_fraction: float

    @property
    def gated_fraction(self) -> float:
        """Fraction of attempts the quality gate withheld from the vote."""
        return self.attempts_inconclusive / self.attempts_total if self.attempts_total else 0.0


@dataclasses.dataclass(frozen=True)
class FaultMatrixResult:
    """The full severity × role robustness matrix."""

    spec: FaultSpec
    severities: tuple[float, ...]
    roles: tuple[str, ...]
    cells: tuple[FaultCell, ...]

    def cell(self, severity: float, role: str) -> FaultCell:
        for cell in self.cells:
            if cell.severity == severity and cell.role == role:
                return cell
        raise KeyError(f"no cell for severity={severity}, role={role!r}")

    def lines(self) -> list[str]:
        """The matrix as printable rows (one per cell)."""
        out = [
            f"{'severity':>8s} {'role':>8s} {'attacker':>9s} {'inconcl.':>9s} "
            f"{'gated':>7s} {'lm-hit':>7s} {'frozen':>7s}  statuses"
        ]
        for c in self.cells:
            out.append(
                f"{c.severity:8.2f} {c.role:>8s} {c.attacker_fraction:9.2f} "
                f"{c.inconclusive_fraction:9.2f} {c.gated_fraction:7.2f} "
                f"{c.mean_landmark_hit_fraction:7.2f} {c.mean_frozen_fraction:7.2f}  "
                + ",".join(c.statuses)
            )
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


def _enrollment_bank(
    config: DetectorConfig,
    env: Environment,
    user: UserProfile,
    sessions: int,
    seed: int,
    engine: ExecutionEngine | None,
) -> np.ndarray:
    """Legitimate feature bank from clean genuine sessions (one clip each)."""
    verifier = ChatVerifier(config)
    specs = [
        SessionSpec(
            kind="genuine",
            seed=int(task_rng(seed, 900, i).integers(0, 2**31 - 1)),
            duration_s=config.clip_duration_s,
        )
        for i in range(sessions)
    ]
    records = simulate_session_batch(specs, env=env, user=user, engine=engine)
    pairs = [
        verifier.extract_signals(record.transmitted, record.received)
        for record in records
    ]
    if engine is None:
        features = [
            extraction.features
            for extraction in extract_features_batch(pairs, config)
        ]
    else:
        features = engine.extract_features_batch(pairs, config, stage="enroll")
    return np.stack([fv.as_array() for fv in features])


def _fault_cell_task(payload: tuple) -> dict:
    """One grid cell: run its sessions through the gated streaming loop.

    Module-level and self-seeded (picklable; bit-identical on any worker
    count).  Refits the LOF detector from the shipped bank — cheaper to
    ship the small feature matrix than a fitted model.
    """
    (bank, config, spec, severity, role, sessions, duration_s,
     seed, env, user, s_idx, r_idx) = payload
    detector = LivenessDetector(config).fit(bank)
    scaled = spec.scaled(severity)
    statuses: list[str] = []
    attempts_total = attempts_inconclusive = attempts_rejected = 0
    hit_fractions: list[float] = []
    frozen_fractions: list[float] = []
    for k in range(sessions):
        session_seed = int(task_rng(seed, s_idx, r_idx, k).integers(0, 2**31 - 1))
        record = simulate_faulted_session(
            role=role,
            spec=scaled,
            duration_s=duration_s,
            seed=session_seed,
            env=env,
            user=user,
        )
        streaming = StreamingVerifier(detector)
        for t_frame, r_frame in zip(record.transmitted, record.received):
            streaming.push(t_frame, r_frame)
        statuses.append(streaming.state.status.value)
        for attempt in streaming.gated_attempts:
            attempts_total += 1
            if not attempt.conclusive:
                attempts_inconclusive += 1
            elif attempt.result.rejected:
                attempts_rejected += 1
            hit_fractions.append(attempt.quality.landmark_hit_fraction)
            frozen_fractions.append(attempt.quality.frozen_fraction)
    return {
        "severity": severity,
        "role": role,
        "sessions": sessions,
        "statuses": tuple(statuses),
        "attempts_total": attempts_total,
        "attempts_inconclusive": attempts_inconclusive,
        "attempts_rejected": attempts_rejected,
        "mean_hit": float(np.mean(hit_fractions)) if hit_fractions else 0.0,
        "mean_frozen": float(np.mean(frozen_fractions)) if frozen_fractions else 0.0,
    }


def run_fault_matrix(
    severities: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    roles: Sequence[str] = (GENUINE, ATTACK),
    spec: FaultSpec | None = None,
    sessions_per_cell: int = 2,
    duration_s: float = 30.0,
    enroll_sessions: int = 8,
    config: DetectorConfig | None = None,
    env: Environment | None = None,
    user: UserProfile | None = None,
    seed: int = 97,
    engine: ExecutionEngine | None = None,
) -> FaultMatrixResult:
    """Sweep the fault grid through the gated streaming verifier.

    Enrollment always happens on the clean channel (Alice trained her
    model under normal conditions); every (severity, role) cell then
    replays ``sessions_per_cell`` faulted calls against that model and
    aggregates the final call statuses plus attempt-level gate traffic.
    """
    config = config or DetectorConfig()
    env = env or DEFAULT_ENVIRONMENT
    user = user or default_user()
    spec = spec or DEFAULT_FAULT_SPEC
    severities = tuple(float(s) for s in severities)
    roles = tuple(roles)
    if sessions_per_cell < 1:
        raise ValueError("sessions_per_cell must be >= 1")

    bank = _enrollment_bank(config, env, user, enroll_sessions, seed, engine)
    payloads = [
        (bank, config, spec, severity, role, sessions_per_cell, duration_s,
         seed, env, user, s_idx, r_idx)
        for s_idx, severity in enumerate(severities)
        for r_idx, role in enumerate(roles)
    ]
    rows = _map(engine, _fault_cell_task, payloads, stage="faultcells")

    cells = []
    for row in rows:
        sessions = row["sessions"]
        statuses = row["statuses"]
        cells.append(
            FaultCell(
                severity=row["severity"],
                role=row["role"],
                sessions=sessions,
                statuses=statuses,
                attacker_fraction=sum(
                    s == CallStatus.ATTACKER.value for s in statuses
                ) / sessions,
                inconclusive_fraction=sum(
                    s == CallStatus.INCONCLUSIVE.value for s in statuses
                ) / sessions,
                attempts_total=row["attempts_total"],
                attempts_inconclusive=row["attempts_inconclusive"],
                attempts_rejected=row["attempts_rejected"],
                mean_landmark_hit_fraction=row["mean_hit"],
                mean_frozen_fraction=row["mean_frozen"],
            )
        )
    if engine is not None:
        # One counter API: the registry behind engine.instrumentation is
        # the same one PerfReport renders from, so these still show up in
        # `repro faults --perf` exactly as before.
        instr = engine.instrumentation
        instr.count("clips_total", sum(c.attempts_total for c in cells))
        instr.count("clips_inconclusive", sum(c.attempts_inconclusive for c in cells))
        instr.count("clips_rejected", sum(c.attempts_rejected for c in cells))
        instr.count("fault_sessions", sum(c.sessions for c in cells))
    return FaultMatrixResult(
        spec=spec,
        severities=severities,
        roles=roles,
        cells=tuple(cells),
    )
