"""Feature datasets: simulate sessions, extract features, cache to disk.

The paper's dataset (Sec. VIII-A): ten volunteers, each acting both as a
legitimate user and as a face-reenactment attacker, 40 clips of 15 s per
role.  Here every clip is one simulated chat session; its two luminance
signals and its z1..z4 feature vector are stored.

Simulation is the expensive step (~0.6 s per clip on one core), so
datasets are cached as ``.npz`` under ``.cache/`` keyed by a hash of
everything that influences the data (environment, detector config,
population, clip counts, seed, generator version).  Raw luminance
signals are kept alongside the features because two experiments need
them: the forgery-delay sweep (Fig. 17) re-shifts genuine signals, and
the ablation benches re-extract features with modified configs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..engine import ExecutionEngine

from ..core.config import DetectorConfig
from ..core.features import FeatureVector, extract_features_batch
from ..core.luminance import received_luminance_signal, transmitted_luminance_signal
from ..vision.landmarks import LandmarkDetector
from .profiles import DEFAULT_ENVIRONMENT, Environment, UserProfile, make_population
from .simulate import (
    build_genuine_prover,
    run_session,
    simulate_adaptive_attack_session,
    simulate_attack_session,
    simulate_genuine_session,
)

__all__ = ["ClipInstance", "FeatureDataset", "build_dataset", "clip_from_session"]

#: Bump when the generation pipeline changes incompatibly (invalidates caches).
GENERATOR_VERSION = 11

GENUINE = "genuine"
ATTACK = "attack"


@dataclasses.dataclass(frozen=True)
class ClipInstance:
    """One 15-second clip: signals, features, and provenance."""

    user: str
    role: str  # GENUINE or ATTACK (or e.g. "adaptive:0.5")
    seed: int
    features: FeatureVector
    transmitted_luminance: np.ndarray
    received_luminance: np.ndarray

    @property
    def is_genuine(self) -> bool:
        return self.role == GENUINE


class FeatureDataset:
    """A bag of clip instances with per-user/per-role selectors."""

    def __init__(self, instances: Sequence[ClipInstance]) -> None:
        self.instances = list(instances)

    def __len__(self) -> int:
        return len(self.instances)

    @property
    def users(self) -> list[str]:
        seen: dict[str, None] = {}
        for inst in self.instances:
            seen.setdefault(inst.user, None)
        return list(seen)

    def select(self, user: str | None = None, role: str | None = None) -> list[ClipInstance]:
        """Instances filtered by user and/or role."""
        return [
            inst
            for inst in self.instances
            if (user is None or inst.user == user)
            and (role is None or inst.role == role)
        ]

    def features_of(self, user: str | None = None, role: str | None = None) -> np.ndarray:
        """Feature matrix ``(n, 4)`` of the selected instances."""
        selected = self.select(user, role)
        if not selected:
            return np.empty((0, 4), dtype=np.float64)
        return np.stack([inst.features.as_array() for inst in selected])

    def merged_with(self, other: "FeatureDataset") -> "FeatureDataset":
        return FeatureDataset(self.instances + other.instances)


def clip_from_session(
    record,
    user: str,
    role: str,
    seed: int,
    config: DetectorConfig,
    landmark_detector: LandmarkDetector | None = None,
) -> ClipInstance:
    """Extract one :class:`ClipInstance` from a session record."""
    detector = landmark_detector or LandmarkDetector()
    rate = config.sample_rate_hz
    transmitted = record.transmitted
    received = record.received
    if transmitted.fps != rate:
        transmitted = transmitted.resampled(rate)
    if received.fps != rate:
        received = received.resampled(rate)
    t_lum = transmitted_luminance_signal(transmitted)
    r_lum = received_luminance_signal(received, detector).luminance
    n = min(t_lum.size, r_lum.size, config.samples_per_clip)
    t_lum, r_lum = t_lum[:n], r_lum[:n]
    features = extract_features_batch([(t_lum, r_lum)], config)[0].features
    return ClipInstance(
        user=user,
        role=role,
        seed=seed,
        features=features,
        transmitted_luminance=t_lum,
        received_luminance=r_lum,
    )


def _clip_seed(base_seed: int, user_index: int, role: str, clip_index: int) -> int:
    """Stable per-clip seed."""
    digest = hashlib.sha256(
        f"{base_seed}:{user_index}:{role}:{clip_index}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "little")


def _generate_clip_task(
    payload: tuple[UserProfile, int, str, int, Environment, DetectorConfig, int],
) -> ClipInstance:
    """Engine task wrapper: one payload tuple -> one simulated clip."""
    return _generate_clip(*payload)


def _generate_clip(
    user: UserProfile,
    user_index: int,
    role: str,
    clip_index: int,
    env: Environment,
    config: DetectorConfig,
    base_seed: int,
) -> ClipInstance:
    seed = _clip_seed(base_seed, user_index, role, clip_index)
    duration = config.clip_duration_s
    if role == GENUINE:
        record = simulate_genuine_session(duration_s=duration, seed=seed, env=env, user=user)
    elif role == ATTACK:
        record = simulate_attack_session(duration_s=duration, seed=seed, env=env, victim=user)
    elif role.startswith("adaptive:"):
        delay = float(role.split(":", 1)[1])
        record = simulate_adaptive_attack_session(
            processing_delay_s=delay, duration_s=duration, seed=seed, env=env, victim=user
        )
    else:
        raise ValueError(f"unknown role {role!r}")
    return clip_from_session(record, user.name, role, seed, config)


def _cache_key(
    population: Sequence[UserProfile],
    clips_per_role: int,
    roles: Sequence[str],
    env: Environment,
    config: DetectorConfig,
    base_seed: int,
) -> str:
    payload = {
        "version": GENERATOR_VERSION,
        "users": [(u.name, u.seed, u.movement_amplitude, u.blink_rate_hz, u.talking) for u in population],
        "clips_per_role": clips_per_role,
        "roles": list(roles),
        "env": dataclasses.asdict(env),
        "config": dataclasses.asdict(config),
        "base_seed": base_seed,
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:20]


def _default_cache_dir() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3] / ".cache" / "datasets"


def _save(path: pathlib.Path, dataset: FeatureDataset) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    n = len(dataset)
    t_len = max((inst.transmitted_luminance.size for inst in dataset.instances), default=0)
    t_sig = np.zeros((n, t_len))
    r_sig = np.zeros((n, t_len))
    lengths = np.zeros(n, dtype=np.int64)
    feats = np.zeros((n, 4))
    seeds = np.zeros(n, dtype=np.int64)
    users = []
    roles = []
    for i, inst in enumerate(dataset.instances):
        m = inst.transmitted_luminance.size
        lengths[i] = m
        t_sig[i, :m] = inst.transmitted_luminance
        r_sig[i, : inst.received_luminance.size] = inst.received_luminance
        feats[i] = inst.features.as_array()
        seeds[i] = inst.seed
        users.append(inst.user)
        roles.append(inst.role)
    np.savez_compressed(
        path,
        t_sig=t_sig,
        r_sig=r_sig,
        lengths=lengths,
        feats=feats,
        seeds=seeds,
        users=np.array(users),
        roles=np.array(roles),
    )


def _load(path: pathlib.Path) -> FeatureDataset:
    data = np.load(path, allow_pickle=False)
    instances = []
    for i in range(data["feats"].shape[0]):
        m = int(data["lengths"][i])
        instances.append(
            ClipInstance(
                user=str(data["users"][i]),
                role=str(data["roles"][i]),
                seed=int(data["seeds"][i]),
                features=FeatureVector.from_array(data["feats"][i]),
                transmitted_luminance=data["t_sig"][i, :m].copy(),
                received_luminance=data["r_sig"][i, :m].copy(),
            )
        )
    return FeatureDataset(instances)


def build_dataset(
    population: Sequence[UserProfile] | None = None,
    clips_per_role: int = 40,
    roles: Sequence[str] = (GENUINE, ATTACK),
    env: Environment | None = None,
    config: DetectorConfig | None = None,
    base_seed: int = 1234,
    cache_dir: pathlib.Path | str | None = None,
    use_cache: bool = True,
    progress: bool = False,
    engine: "ExecutionEngine | None" = None,
) -> FeatureDataset:
    """Simulate (or load from cache) a full evaluation dataset.

    Defaults mirror the paper: ten users, two roles, 40 clips each.

    ``engine`` (an :class:`~repro.engine.ExecutionEngine`) parallelizes
    the simulation across its process pool.  Every clip's seed is a pure
    function of ``(base_seed, user, role, clip index)``, so the parallel
    dataset is bit-identical to the serial one.
    """
    population = list(population) if population is not None else make_population()
    env = env or DEFAULT_ENVIRONMENT
    config = config or DetectorConfig()
    if clips_per_role < 1:
        raise ValueError("clips_per_role must be >= 1")

    cache_path = None
    if use_cache:
        directory = pathlib.Path(cache_dir) if cache_dir else _default_cache_dir()
        key = _cache_key(population, clips_per_role, roles, env, config, base_seed)
        cache_path = directory / f"dataset_{key}.npz"
        if cache_path.exists():
            return _load(cache_path)

    tasks = [
        (user, user_index, role, clip_index, env, config, base_seed)
        for user_index, user in enumerate(population)
        for role in roles
        for clip_index in range(clips_per_role)
    ]
    if engine is not None:
        instances = engine.map_batches(_generate_clip_task, tasks, stage="simulate")
    else:
        instances = []
        for done, task in enumerate(tasks, start=1):
            instances.append(_generate_clip_task(task))
            if progress and done % 50 == 0:
                print(f"  dataset: {done}/{len(tasks)} clips", flush=True)
    dataset = FeatureDataset(instances)
    if cache_path is not None:
        _save(cache_path, dataset)
    return dataset
