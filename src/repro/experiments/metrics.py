"""Evaluation metrics (Sec. VIII-B).

* **true acceptance rate (TAR)** — accepted legitimate attempts / total
  legitimate attempts.
* **true rejection rate (TRR)** — rejected attack attempts / total attack
  attempts.
* **false acceptance rate (FAR)** = 1 - TRR; **false rejection rate
  (FRR)** = 1 - TAR.
* **equal error rate (EER)** — the rate at the threshold where FAR and
  FRR cross (Fig. 12 reads ~5.5 % off the sweep).

All helpers work on raw LOF scores (higher = more anomalous; accept when
``score <= threshold``) so a single scored dataset supports the whole
threshold sweep without re-classification.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "RateSummary",
    "true_acceptance_rate",
    "true_rejection_rate",
    "rates_at_threshold",
    "equal_error_rate",
]


@dataclasses.dataclass(frozen=True)
class RateSummary:
    """The four rates at one decision threshold."""

    threshold: float
    tar: float
    trr: float

    @property
    def far(self) -> float:
        """False acceptance rate (attacks let through)."""
        return 1.0 - self.trr

    @property
    def frr(self) -> float:
        """False rejection rate (legitimate users bounced)."""
        return 1.0 - self.tar


def _validate_scores(scores: np.ndarray) -> np.ndarray:
    arr = np.asarray(scores, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    return arr


def true_acceptance_rate(genuine_scores: np.ndarray, threshold: float) -> float:
    """Fraction of genuine attempts with ``score <= threshold``."""
    scores = _validate_scores(genuine_scores)
    return float((scores <= threshold).mean())


def true_rejection_rate(attack_scores: np.ndarray, threshold: float) -> float:
    """Fraction of attack attempts with ``score > threshold``."""
    scores = _validate_scores(attack_scores)
    return float((scores > threshold).mean())


def rates_at_threshold(
    genuine_scores: np.ndarray,
    attack_scores: np.ndarray,
    threshold: float,
) -> RateSummary:
    """TAR/TRR (and thus FAR/FRR) at one threshold."""
    return RateSummary(
        threshold=threshold,
        tar=true_acceptance_rate(genuine_scores, threshold),
        trr=true_rejection_rate(attack_scores, threshold),
    )


def equal_error_rate(
    genuine_scores: np.ndarray,
    attack_scores: np.ndarray,
) -> tuple[float, float]:
    """(EER, threshold at which it occurs).

    Sweeps every candidate threshold (the union of observed scores) and
    returns the point where |FAR - FRR| is smallest, averaging the two
    rates there — the discrete analogue of the curve crossing in Fig. 12.
    """
    genuine = _validate_scores(genuine_scores)
    attacks = _validate_scores(attack_scores)
    candidates = np.unique(np.concatenate([genuine, attacks]))
    best_gap = np.inf
    best_eer = 1.0
    best_threshold = float(candidates[0])
    for threshold in candidates:
        frr = float((genuine > threshold).mean())
        far = float((attacks <= threshold).mean())
        gap = abs(far - frr)
        if gap < best_gap:
            best_gap = gap
            best_eer = (far + frr) / 2.0
            best_threshold = float(threshold)
    return best_eer, best_threshold
