"""One-call regeneration of every paper figure.

The benchmark harness (``pytest benchmarks/ --benchmark-only``) is the
canonical way to reproduce the evaluation — it also times and asserts
each figure.  This module is the lightweight sibling for scripting and
the CLI: each ``figure_*`` function runs one experiment and returns the
figure's rows as printable lines; :func:`generate_all` writes the whole
set to a directory.

    python -m repro.experiments.figures --out results/

Datasets are shared with the benchmarks through the same on-disk cache,
so whichever runs first pays the simulation cost.
"""

from __future__ import annotations

import argparse
import pathlib
from collections.abc import Callable, Sequence

import numpy as np

from ..engine import ExecutionEngine
from .dataset import FeatureDataset, build_dataset
from .profiles import DEFAULT_ENVIRONMENT
from .runner import (
    run_ambient_light,
    run_attempts,
    run_forgery_delay,
    run_overall,
    run_sampling_rate,
    run_screen_size,
    run_threshold_sweep,
    run_training_size,
)

__all__ = [
    "figure_11_overall",
    "figure_12_threshold",
    "figure_13_screen_size",
    "figure_14_attempts",
    "figure_15_training_size",
    "figure_16_sampling_rate",
    "figure_17_forgery_delay",
    "figure_ambient_light",
    "generate_all",
]


def _main_dataset(engine: ExecutionEngine | None = None) -> FeatureDataset:
    return build_dataset(clips_per_role=40, engine=engine)


def figure_11_overall(
    dataset: FeatureDataset | None = None,
    engine: ExecutionEngine | None = None,
) -> list[str]:
    """Fig. 11: per-user TAR/TRR, own vs others' training data."""
    dataset = dataset if dataset is not None else _main_dataset(engine)
    result = run_overall(dataset, rounds=20, train_size=20, engine=engine)
    lines = [
        "Fig. 11 single-detection performance",
        f"{'user':8s} {'TAR(own)':>10s} {'TAR(other)':>11s} {'TRR':>8s}",
    ]
    for u in result.per_user:
        lines.append(
            f"{u.user:8s} {u.tar_own_mean:10.3f} {u.tar_other_mean:11.3f} {u.trr_mean:8.3f}"
        )
    lines.append(
        f"{'AVERAGE':8s} {result.avg_tar_own:10.3f} "
        f"{result.avg_tar_other:11.3f} {result.avg_trr:8.3f}"
    )
    return lines


def figure_12_threshold(
    dataset: FeatureDataset | None = None,
    engine: ExecutionEngine | None = None,
) -> list[str]:
    """Fig. 12: FAR/FRR across the decision threshold, EER."""
    dataset = dataset if dataset is not None else _main_dataset(engine)
    result = run_threshold_sweep(dataset, rounds=10, train_size=20, engine=engine)
    lines = ["Fig. 12 FAR/FRR vs tau", f"{'tau':>5s} {'FAR':>8s} {'FRR':>8s}"]
    for tau, far, frr in zip(result.thresholds, result.far, result.frr):
        lines.append(f"{tau:5.2f} {far:8.4f} {frr:8.4f}")
    lines.append(f"EER = {result.eer:.4f} at tau = {result.eer_threshold:.2f}")
    return lines


def figure_13_screen_size(engine: ExecutionEngine | None = None) -> list[str]:
    """Fig. 13: performance vs screen size (incl. the phone cases)."""
    from ..screen.display import PHONE_6_OLED, SCREEN_SIZE_LADDER

    screens = [
        (f'{s.diagonal_in:g}"', DEFAULT_ENVIRONMENT.replace(screen=s))
        for s in SCREEN_SIZE_LADDER
    ]
    screens.append(('6" phone @0.5m', DEFAULT_ENVIRONMENT.replace(screen=PHONE_6_OLED)))
    screens.append(
        (
            '6" phone @0.1m',
            DEFAULT_ENVIRONMENT.replace(screen=PHONE_6_OLED, viewing_distance_m=0.1),
        )
    )
    result = run_screen_size(screens, engine=engine)
    lines = ["Fig. 13 performance vs screen size", f"{'screen':>16s} {'TAR':>8s} {'TRR':>8s}"]
    for p in result.points:
        lines.append(f"{p.label:>16s} {p.tar_mean:8.3f} {p.trr_mean:8.3f}")
    return lines


def figure_14_attempts(
    dataset: FeatureDataset | None = None,
    engine: ExecutionEngine | None = None,
) -> list[str]:
    """Fig. 14: majority voting over D attempts."""
    dataset = dataset if dataset is not None else _main_dataset(engine)
    result = run_attempts(
        dataset, rounds=10, trials_per_round=10, train_size=20, engine=engine
    )
    lines = [
        "Fig. 14 accuracy vs attempts",
        f"{'D':>3s} {'TAR(own)':>10s} {'TAR(other)':>11s} {'TRR':>8s}",
    ]
    for i, d in enumerate(result.attempts):
        lines.append(
            f"{d:3d} {result.tar_own_mean[i]:10.3f} "
            f"{result.tar_other_mean[i]:11.3f} {result.trr_mean[i]:8.3f}"
        )
    return lines


def figure_15_training_size(
    dataset: FeatureDataset | None = None,
    engine: ExecutionEngine | None = None,
) -> list[str]:
    """Fig. 15: accuracy vs training-set size."""
    dataset = dataset if dataset is not None else _main_dataset(engine)
    result = run_training_size(dataset, rounds=20, engine=engine)
    lines = [
        "Fig. 15 accuracy vs training-set size",
        f"{'n':>3s} {'TAR':>8s} {'+-':>6s} {'TRR':>8s} {'+-':>6s}",
    ]
    for i, n in enumerate(result.sizes):
        lines.append(
            f"{n:3d} {result.tar_mean[i]:8.3f} {result.tar_std[i]:6.3f} "
            f"{result.trr_mean[i]:8.3f} {result.trr_std[i]:6.3f}"
        )
    return lines


def figure_16_sampling_rate(engine: ExecutionEngine | None = None) -> list[str]:
    """Fig. 16: performance vs sampling rate."""
    result = run_sampling_rate(engine=engine)
    lines = ["Fig. 16 performance vs sampling rate", f"{'rate':>8s} {'TAR':>8s} {'TRR':>8s}"]
    for p in result.points:
        lines.append(f"{p.label:>8s} {p.tar_mean:8.3f} {p.trr_mean:8.3f}")
    return lines


def figure_17_forgery_delay(
    dataset: FeatureDataset | None = None,
    engine: ExecutionEngine | None = None,
) -> list[str]:
    """Fig. 17: rejection rate vs forgery processing delay."""
    dataset = dataset if dataset is not None else _main_dataset(engine)
    result = run_forgery_delay(
        dataset, rounds=3, train_size=20, max_clips_per_user=10, engine=engine
    )
    lines = ["Fig. 17 rejection vs forgery delay", f"{'delay':>7s} {'rejection':>10s}"]
    for delay, rejection in zip(result.delays_s, result.rejection_rate):
        lines.append(f"{delay:7.1f} {rejection:10.3f}")
    return lines


def figure_ambient_light(engine: ExecutionEngine | None = None) -> list[str]:
    """Sec. VIII-I: performance vs ambient illuminance."""
    result = run_ambient_light(engine=engine)
    lines = ["Sec. VIII-I performance vs ambient light", f"{'ambient':>10s} {'TAR':>8s} {'TRR':>8s}"]
    for p in result.points:
        lines.append(f"{p.label:>10s} {p.tar_mean:8.3f} {p.trr_mean:8.3f}")
    return lines


#: Registry: figure name -> (needs main dataset, generator).
FIGURES: dict[str, tuple[bool, Callable[..., list[str]]]] = {
    "fig11": (True, figure_11_overall),
    "fig12": (True, figure_12_threshold),
    "fig13": (False, figure_13_screen_size),
    "fig14": (True, figure_14_attempts),
    "fig15": (True, figure_15_training_size),
    "fig16": (False, figure_16_sampling_rate),
    "fig17": (True, figure_17_forgery_delay),
    "ambient": (False, figure_ambient_light),
}


def generate_all(
    out_dir: pathlib.Path | str,
    only: Sequence[str] | None = None,
    echo: bool = True,
    engine: ExecutionEngine | None = None,
) -> dict[str, list[str]]:
    """Regenerate the selected figures and write one text file each.

    One ``engine`` is shared across all selected figures, so clips that
    several sweeps revisit are extracted once (cache hits show up in the
    engine's :class:`~repro.engine.PerfReport`).
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = list(only) if only else list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures: {unknown}; available: {sorted(FIGURES)}")

    dataset = _main_dataset(engine) if any(FIGURES[n][0] for n in names) else None
    results: dict[str, list[str]] = {}
    for name in names:
        needs_dataset, generator = FIGURES[name]
        lines = (
            generator(dataset, engine=engine) if needs_dataset else generator(engine=engine)
        )
        results[name] = lines
        (out / f"{name}.txt").write_text("\n".join(lines) + "\n")
        if echo:
            print("\n".join(lines))
            print()
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(FIGURES),
        help="subset of figures to regenerate",
    )
    args = parser.parse_args(argv)
    generate_all(args.out, only=args.only)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
