"""Session builders: one call = one simulated chat recording.

These are the highest-level convenience functions of the library — they
assemble a verifier, a prover (genuine or attacker), the network path and
the session loop from a :class:`~repro.experiments.profiles.UserProfile`
and an :class:`~repro.experiments.profiles.Environment`, run the clock,
and hand back the :class:`~repro.chat.session.SessionRecord` the detector
consumes.  All randomness is derived from the single ``seed`` argument,
so every session is exactly reproducible.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..engine import ExecutionEngine

from ..attack.adaptive import AdaptiveLuminanceForger
from ..attack.reenactment import ReenactmentAttacker
from ..attack.replay import ReplayAttacker
from ..attack.target import TargetRecording
from ..chat.endpoints import GenuineProverEndpoint, ProverEndpoint, VerifierEndpoint
from ..chat.session import SessionRecord, VideoChatSession
from ..core.seeding import spawn_seeds
from ..net.channel import NetworkChannel
from ..net.jitterbuffer import JitterBuffer
from ..net.link import MediaLink
from ..obs.instrument import Instrumentation
from ..screen.illumination import AmbientLight
from ..vision.expression import ExpressionTrack
from ..vision.face_model import make_face
from .profiles import DEFAULT_ENVIRONMENT, Environment, UserProfile

__all__ = [
    "build_verifier",
    "build_genuine_prover",
    "build_links",
    "run_session",
    "simulate_genuine_session",
    "simulate_attack_session",
    "simulate_adaptive_attack_session",
    "simulate_replay_attack_session",
    "simulate_session_batch",
    "SessionSpec",
    "default_user",
]


def default_user(seed: int = 7) -> UserProfile:
    """A single stand-alone volunteer (for quickstarts and tests)."""
    return UserProfile(
        name="default_user",
        face=make_face("default_user", tone="light", rng=np.random.default_rng(seed)),
        seed=seed,
    )


def build_verifier(env: Environment, seed: int) -> VerifierEndpoint:
    """Alice: her own face, scene, ambient light and metering behaviour."""
    s_face, s_expr, s_amb, s_rend = spawn_seeds(seed, 4)
    face = make_face("verifier", tone="tan", rng=np.random.default_rng(s_face))
    expression = ExpressionTrack(seed=s_expr, movement_amplitude=0.015)
    ambient = AmbientLight(
        base_lux=env.verifier_ambient_lux,
        drift_lux=2.0,
        rng=np.random.default_rng(s_amb),
    )
    height, width = env.verifier_frame_size
    return VerifierEndpoint(
        face=face,
        expression=expression,
        ambient=ambient,
        frame_size=(height, width),
        seed=s_rend,
    )


def build_genuine_prover(
    user: UserProfile,
    env: Environment,
    seed: int,
) -> GenuineProverEndpoint:
    """Bob when genuine: real face, real screen reflection."""
    s_expr, s_amb, s_rend, s_dist = spawn_seeds(seed, 4)
    expression = ExpressionTrack(
        seed=s_expr,
        movement_amplitude=user.movement_amplitude,
        blink_rate_hz=user.blink_rate_hz,
        talking=user.talking,
    )
    # The user does not sit at exactly the same spot every session.
    distance = env.viewing_distance_m * float(
        np.random.default_rng(s_dist).uniform(0.9, 1.15)
    )
    drift_rng = np.random.default_rng(s_amb)
    ambient = AmbientLight(
        base_lux=env.prover_ambient_lux,
        drift_lux=float(drift_rng.uniform(1.5, 4.0)),
        drift_period_s=float(drift_rng.uniform(6.0, 18.0)),
        event_rate_hz=env.prover_ambient_event_rate_hz,
        event_lux_range=(6.0, 18.0),
        rng=np.random.default_rng(s_amb + 1),
    )
    return GenuineProverEndpoint(
        face=user.face,
        expression=expression,
        ambient=ambient,
        screen=env.screen,
        viewing_distance_m=distance,
        frame_size=env.frame_size,
        seed=s_rend,
    )


def _playout_delay(base_delay_s: float, jitter_s: float, env: Environment) -> float:
    """Playout deadline for one link.

    Real jitter buffers adapt their deadline to the measured path: a
    deadline below the propagation delay would starve playout entirely
    (every frame 'late').  Keep the configured deadline when it already
    covers the path; otherwise stretch to delay + de-jitter margin.
    """
    return max(env.playout_delay_s, base_delay_s + 2.0 * jitter_s + 0.02)


def build_links(
    env: Environment,
    seed: int,
    instrumentation: Instrumentation | None = None,
) -> tuple[MediaLink, MediaLink]:
    """The two directions of the network path."""
    s_up, s_down = spawn_seeds(seed, 2)
    uplink = MediaLink(
        channel=NetworkChannel(
            base_delay_s=env.uplink_delay_s,
            jitter_s=env.jitter_s,
            loss_rate=env.loss_rate,
            seed=s_up,
            instrumentation=instrumentation,
        ),
        jitter_buffer=JitterBuffer(
            playout_delay_s=_playout_delay(env.uplink_delay_s, env.jitter_s, env)
        ),
    )
    downlink = MediaLink(
        channel=NetworkChannel(
            base_delay_s=env.downlink_delay_s,
            jitter_s=env.jitter_s,
            loss_rate=env.loss_rate,
            seed=s_down,
            instrumentation=instrumentation,
        ),
        jitter_buffer=JitterBuffer(
            playout_delay_s=_playout_delay(env.downlink_delay_s, env.jitter_s, env)
        ),
    )
    return uplink, downlink


def run_session(
    prover: ProverEndpoint,
    env: Environment,
    seed: int,
    duration_s: float,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """Wire a verifier against the given prover and run the clock."""
    s_verifier, s_links = spawn_seeds(seed, 2)
    verifier = build_verifier(env, s_verifier)
    uplink, downlink = build_links(env, s_links, instrumentation)
    session = VideoChatSession(
        verifier=verifier,
        prover=prover,
        uplink=uplink,
        downlink=downlink,
        fps=env.fps,
        instrumentation=instrumentation,
    )
    return session.run(duration_s)


def simulate_genuine_session(
    duration_s: float = 15.0,
    seed: int = 0,
    env: Environment | None = None,
    user: UserProfile | None = None,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """A chat where the untrusted user really is a live person."""
    env = env or DEFAULT_ENVIRONMENT
    user = user or default_user()
    s_prover, s_session = spawn_seeds(seed, 2)
    prover = build_genuine_prover(user, env, s_prover)
    return run_session(prover, env, s_session, duration_s, instrumentation)


def _target_for(user: UserProfile, seed: int) -> TargetRecording:
    """Victim footage of the impersonated user."""
    return TargetRecording(victim=user.face, seed=seed)


def simulate_attack_session(
    duration_s: float = 15.0,
    seed: int = 0,
    env: Environment | None = None,
    victim: UserProfile | None = None,
    artifact_level: float = 0.012,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """A chat where the untrusted side runs face reenactment."""
    env = env or DEFAULT_ENVIRONMENT
    victim = victim or default_user()
    s_target, s_attacker, s_session = spawn_seeds(seed, 3)
    attacker = ReenactmentAttacker(
        target=_target_for(victim, s_target),
        artifact_level=artifact_level,
        frame_size=env.frame_size,
        seed=s_attacker,
    )
    return run_session(attacker, env, s_session, duration_s, instrumentation)


def simulate_adaptive_attack_session(
    processing_delay_s: float,
    duration_s: float = 15.0,
    seed: int = 0,
    env: Environment | None = None,
    victim: UserProfile | None = None,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """The Sec. VIII-J strong attacker forging the reflection with delay."""
    env = env or DEFAULT_ENVIRONMENT
    victim = victim or default_user()
    s_target, s_attacker, s_session = spawn_seeds(seed, 3)
    attacker = AdaptiveLuminanceForger(
        target=_target_for(victim, s_target),
        processing_delay_s=processing_delay_s,
        frame_size=env.frame_size,
        seed=s_attacker,
        mimic_screen=env.screen,
        mimic_distance_m=env.viewing_distance_m,
        ambient_lux=env.prover_ambient_lux,
    )
    return run_session(attacker, env, s_session, duration_s, instrumentation)


@dataclasses.dataclass(frozen=True)
class SessionSpec:
    """One session to simulate, as picklable engine-task coordinates.

    ``kind`` selects the prover: ``"genuine"``, ``"attack"``,
    ``"adaptive"`` (requires ``processing_delay_s``) or ``"replay"``.
    The seed fully determines the session, so a spec list run through a
    pool is bit-identical to a serial loop over the ``simulate_*``
    functions.
    """

    kind: str
    seed: int
    duration_s: float = 15.0
    processing_delay_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("genuine", "attack", "adaptive", "replay"):
            raise ValueError(f"unknown session kind {self.kind!r}")
        if self.kind == "adaptive" and self.processing_delay_s is None:
            raise ValueError("adaptive sessions need processing_delay_s")


def _session_task(
    payload: tuple[SessionSpec, Environment | None, UserProfile | None],
) -> SessionRecord:
    """Engine task wrapper: one spec -> one session (module-level for
    pickling)."""
    spec, env, user = payload
    if spec.kind == "genuine":
        return simulate_genuine_session(
            duration_s=spec.duration_s, seed=spec.seed, env=env, user=user
        )
    if spec.kind == "attack":
        return simulate_attack_session(
            duration_s=spec.duration_s, seed=spec.seed, env=env, victim=user
        )
    if spec.kind == "adaptive":
        assert spec.processing_delay_s is not None  # enforced by SessionSpec
        return simulate_adaptive_attack_session(
            processing_delay_s=spec.processing_delay_s,
            duration_s=spec.duration_s,
            seed=spec.seed,
            env=env,
            victim=user,
        )
    return simulate_replay_attack_session(
        duration_s=spec.duration_s, seed=spec.seed, env=env, victim=user
    )


def simulate_session_batch(
    specs: Sequence[SessionSpec],
    env: Environment | None = None,
    user: UserProfile | None = None,
    engine: "ExecutionEngine | None" = None,
) -> list[SessionRecord]:
    """Simulate many sessions, optionally fanned out over an engine.

    The engine path routes through :meth:`ExecutionEngine.map_batches`
    — the shared chunked-submission helper — so session simulation,
    the experiment sweeps, and the fault matrix all use one submission
    policy.  Results come back in spec order regardless of worker count.
    """
    payloads = [(spec, env, user) for spec in specs]
    if engine is None:
        return [_session_task(payload) for payload in payloads]
    return engine.map_batches(_session_task, payloads, stage="simulate")


def simulate_replay_attack_session(
    duration_s: float = 15.0,
    seed: int = 0,
    env: Environment | None = None,
    victim: UserProfile | None = None,
    instrumentation: Instrumentation | None = None,
) -> SessionRecord:
    """A classic media replay of the victim's own footage."""
    env = env or DEFAULT_ENVIRONMENT
    victim = victim or default_user()
    s_target, s_attacker, s_session = spawn_seeds(seed, 3)
    attacker = ReplayAttacker(
        target=_target_for(victim, s_target),
        frame_size=env.frame_size,
        seed=s_attacker,
    )
    return run_session(attacker, env, s_session, duration_s, instrumentation)
