"""Evaluation harness: datasets, metrics, experiment runners."""
