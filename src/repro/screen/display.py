"""Display (screen) models.

When Bob watches Alice's video, his screen converts the displayed frame
into emitted light.  The amount of emitted light is what ultimately
reflects off Bob's face — the carrier of the paper's liveness signal.

The model covers the paper's observation (Sec. II-D) that *all* common
panel technologies — LED, LCD, OLED — emit less light for darker content,
differing mainly in black level (backlit LCD panels leak light on black
frames; OLED pixels turn off) and peak luminance.

Units: panel luminance is expressed in nits (cd/m^2); displayed pixel
values are display-referred [0, 255] and are linearized through the
panel's gamma before scaling.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = [
    "ScreenSpec",
    "DELL_27_LED",
    "MONITOR_21_LCD",
    "LAPTOP_13_LCD",
    "TABLET_10_LCD",
    "PHONE_6_OLED",
    "SCREEN_SIZE_LADDER",
]

_TECHNOLOGIES = {
    # technology -> (default peak nits, default black level fraction)
    "led": (350.0, 0.012),
    "lcd": (280.0, 0.02),
    "oled": (450.0, 0.0),
}


@dataclasses.dataclass(frozen=True)
class ScreenSpec:
    """Geometry and photometry of one display panel.

    Parameters
    ----------
    diagonal_in:
        Panel diagonal in inches (the paper's Fig. 13 sweeps this).
    technology:
        One of ``"led"``, ``"lcd"``, ``"oled"``.
    brightness:
        User brightness setting in [0, 1] (paper testbed: 0.85).
    aspect_w, aspect_h:
        Aspect ratio (default 16:9).
    peak_nits:
        Peak white luminance at brightness 1.0.  ``None`` picks the
        technology default.
    black_level:
        Fraction of peak luminance leaked when displaying black.
        ``None`` picks the technology default (0 for OLED).
    gamma:
        Panel decoding gamma (pixel value -> linear light).
    """

    diagonal_in: float
    technology: str = "led"
    brightness: float = 0.85
    aspect_w: int = 16
    aspect_h: int = 9
    peak_nits: float | None = None
    black_level: float | None = None
    gamma: float = 2.2

    def __post_init__(self) -> None:
        if self.diagonal_in <= 0:
            raise ValueError("diagonal_in must be positive")
        if self.technology not in _TECHNOLOGIES:
            raise ValueError(
                f"unknown technology {self.technology!r}; "
                f"expected one of {sorted(_TECHNOLOGIES)}"
            )
        if not 0.0 <= self.brightness <= 1.0:
            raise ValueError("brightness must lie in [0, 1]")
        if self.aspect_w <= 0 or self.aspect_h <= 0:
            raise ValueError("aspect ratio components must be positive")
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        if self.peak_nits is not None and self.peak_nits <= 0:
            raise ValueError("peak_nits must be positive")
        if self.black_level is not None and not 0 <= self.black_level < 1:
            raise ValueError("black_level must lie in [0, 1)")

    @property
    def effective_peak_nits(self) -> float:
        """Peak luminance at the current brightness setting."""
        base = self.peak_nits
        if base is None:
            base = _TECHNOLOGIES[self.technology][0]
        return base * self.brightness

    @property
    def effective_black_level(self) -> float:
        """Black-frame luminance as a fraction of the effective peak."""
        level = self.black_level
        if level is None:
            level = _TECHNOLOGIES[self.technology][1]
        return level

    @property
    def width_m(self) -> float:
        """Panel width in meters."""
        diag_m = self.diagonal_in * 0.0254
        ratio = math.hypot(self.aspect_w, self.aspect_h)
        return diag_m * self.aspect_w / ratio

    @property
    def height_m(self) -> float:
        """Panel height in meters."""
        diag_m = self.diagonal_in * 0.0254
        ratio = math.hypot(self.aspect_w, self.aspect_h)
        return diag_m * self.aspect_h / ratio

    @property
    def area_m2(self) -> float:
        """Emitting area in square meters."""
        return self.width_m * self.height_m

    def emitted_luminance(self, mean_pixel: float) -> float:
        """Panel luminance (nits) when showing content of the given mean
        pixel luminance.

        ``mean_pixel`` is a display-referred value in [0, 255] (the mean
        BT.709 luminance of the displayed frame).  It is linearized
        through the panel gamma, floored at the black level, and scaled
        by the brightness-adjusted peak.
        """
        level = min(max(float(mean_pixel) / 255.0, 0.0), 1.0)
        linear = level**self.gamma
        black = self.effective_black_level
        return self.effective_peak_nits * (black + (1.0 - black) * linear)


#: The paper's testbed monitor: Dell 27-inch LED at 85 % brightness.
DELL_27_LED = ScreenSpec(diagonal_in=27.0, technology="led", brightness=0.85)

#: Smaller desktop monitor (Fig. 13 screen-size ladder).
MONITOR_21_LCD = ScreenSpec(diagonal_in=21.5, technology="lcd", brightness=0.85)

#: Laptop panel (Fig. 13 screen-size ladder).
LAPTOP_13_LCD = ScreenSpec(diagonal_in=13.3, technology="lcd", brightness=0.85)

#: Tablet panel (Fig. 13 screen-size ladder).
TABLET_10_LCD = ScreenSpec(diagonal_in=10.1, technology="lcd", brightness=0.85)

#: 6-inch smartphone screen (Sec. VIII-E: works only at ~10 cm).
PHONE_6_OLED = ScreenSpec(diagonal_in=6.0, technology="oled", brightness=0.85)

#: Descending screen-size ladder used by the Fig. 13 reproduction.
SCREEN_SIZE_LADDER = (DELL_27_LED, MONITOR_21_LCD, LAPTOP_13_LCD, TABLET_10_LCD)
