"""Illumination: screen light arriving at the face, plus ambient light.

This module carries the paper's physical chain from the panel to the skin:

* :func:`screen_illuminance` — how many lux a panel of a given luminance
  and area delivers to a face at a given distance (the knob behind the
  screen-size and viewing-distance experiments, Sec. VIII-E).
* :class:`AmbientLight` — the competing environmental light (Sec. VIII-I):
  a base level, slow drift, and occasional step events (a lamp toggled, a
  cloud passing).  Ambient events are the main source of *coincidental*
  luminance changes in both legitimate and attack videos.
* :func:`von_kries_reflection` — the diagonal reflection model of
  Sec. II-C: reflected radiance per channel is illuminance times the
  skin's spectral reflectance.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = [
    "screen_illuminance",
    "von_kries_reflection",
    "AmbientLight",
    "AmbientEvent",
]


def screen_illuminance(luminance_nits: float, area_m2: float, distance_m: float) -> float:
    """Illuminance (lux) delivered by a Lambertian panel to an on-axis face.

    Uses the standard disc-source interpolation

    ``E = pi * L * A / (A + pi * d^2)``

    which recovers both limits: ``E -> pi * L`` as the face approaches an
    effectively infinite panel (``d -> 0``) and the inverse-square
    point-source law ``E -> L * A / d^2`` for ``d`` large relative to the
    panel.  This is why a 6-inch phone can only drive the defense at
    ~10 cm (Sec. VIII-E): its area term vanishes at arm's length.
    """
    if luminance_nits < 0:
        raise ValueError("luminance must be non-negative")
    if area_m2 <= 0:
        raise ValueError("panel area must be positive")
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return math.pi * luminance_nits * area_m2 / (area_m2 + math.pi * distance_m**2)


def von_kries_reflection(
    illuminance: float | np.ndarray,
    reflectance_rgb: np.ndarray,
) -> np.ndarray:
    """Reflected radiance per channel under the Von Kries diagonal model.

    Implements Eq. (1) of the paper: ``I_c = E_c * R_c`` for each channel
    ``c in {R, G, B}``.  ``illuminance`` may be a scalar (one instant) or
    an array of shape ``(n,)`` (a time series); the result broadcasts to
    ``(3,)`` or ``(n, 3)`` respectively.
    """
    reflectance = np.asarray(reflectance_rgb, dtype=np.float64)
    if reflectance.shape != (3,):
        raise ValueError(f"reflectance must have shape (3,), got {reflectance.shape}")
    if np.any(reflectance < 0) or np.any(reflectance > 1):
        raise ValueError("reflectance values must lie in [0, 1]")
    illum = np.asarray(illuminance, dtype=np.float64)
    if np.any(illum < 0):
        raise ValueError("illuminance must be non-negative")
    return np.multiply.outer(illum, reflectance)


@dataclasses.dataclass(frozen=True)
class AmbientEvent:
    """One step change in ambient light (e.g. a lamp switched on)."""

    start_s: float
    duration_s: float
    delta_lux: float

    def contribution(self, t: np.ndarray) -> np.ndarray:
        """Added lux at each time in ``t`` (smooth 100 ms ramps)."""
        ramp = 0.1
        rise = np.clip((t - self.start_s) / ramp, 0.0, 1.0)
        fall = np.clip((t - self.start_s - self.duration_s) / ramp, 0.0, 1.0)
        return self.delta_lux * (rise - fall)


@dataclasses.dataclass
class AmbientLight:
    """Stochastic ambient-light process.

    Parameters
    ----------
    base_lux:
        Mean ambient illuminance on the face.  The paper's stable indoor
        setting sits near 50 lux; Sec. VIII-I raises it to 240 lux to
        show the screen signal drowning.
    drift_lux:
        Amplitude of a slow sinusoidal drift (flicker of daylight, etc.).
    drift_period_s:
        Period of the drift component.
    event_rate_hz:
        Poisson rate of step events.  Events inject luminance changes
        that are *uncorrelated* with the screen — the main confounder the
        detector's matching features must survive.
    event_lux_range:
        (low, high) magnitude range of an event's step, sign-symmetric.
    event_duration_range_s:
        (low, high) range of event durations.
    rng:
        Numpy generator; required when ``event_rate_hz > 0``.
    """

    base_lux: float = 50.0
    drift_lux: float = 2.0
    drift_period_s: float = 20.0
    event_rate_hz: float = 0.0
    event_lux_range: tuple[float, float] = (8.0, 30.0)
    event_duration_range_s: tuple[float, float] = (1.0, 6.0)
    rng: np.random.Generator | None = None
    _events: list[AmbientEvent] = dataclasses.field(default_factory=list, init=False)
    _drift_phase: float = dataclasses.field(default=0.0, init=False)
    _horizon_s: float = dataclasses.field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.base_lux < 0:
            raise ValueError("base_lux must be non-negative")
        if self.drift_lux < 0 or self.drift_period_s <= 0:
            raise ValueError("invalid drift parameters")
        if self.event_rate_hz < 0:
            raise ValueError("event_rate_hz must be non-negative")
        if self.event_rate_hz > 0 and self.rng is None:
            raise ValueError("an rng is required when events are enabled")
        if self.rng is not None:
            self._drift_phase = float(self.rng.uniform(0.0, 2.0 * math.pi))

    @property
    def events(self) -> tuple[AmbientEvent, ...]:
        """Events materialized so far (grows as the horizon extends)."""
        return tuple(self._events)

    def _extend_horizon(self, until_s: float) -> None:
        """Lazily draw Poisson events up to ``until_s``."""
        if self.event_rate_hz <= 0 or until_s <= self._horizon_s:
            return
        assert self.rng is not None
        t = self._horizon_s
        while True:
            t += float(self.rng.exponential(1.0 / self.event_rate_hz))
            if t >= until_s:
                break
            low, high = self.event_lux_range
            magnitude = float(self.rng.uniform(low, high))
            sign = 1.0 if self.rng.random() < 0.5 else -1.0
            dlow, dhigh = self.event_duration_range_s
            self._events.append(
                AmbientEvent(
                    start_s=t,
                    duration_s=float(self.rng.uniform(dlow, dhigh)),
                    delta_lux=sign * magnitude,
                )
            )
        self._horizon_s = until_s

    def sample(self, t: float | np.ndarray) -> np.ndarray:
        """Ambient illuminance (lux) at the given time(s), never negative."""
        times = np.atleast_1d(np.asarray(t, dtype=np.float64))
        if times.size and np.any(times < 0):
            raise ValueError("time must be non-negative")
        if times.size:
            self._extend_horizon(float(times.max()) + 1e-9)
        lux = np.full_like(times, self.base_lux)
        if self.drift_lux > 0:
            lux += self.drift_lux * np.sin(
                2.0 * math.pi * times / self.drift_period_s + self._drift_phase
            )
        for event in self._events:
            lux += event.contribution(times)
        return np.maximum(lux, 0.0)

    def sample_scalar(self, t: float) -> float:
        """Convenience scalar version of :meth:`sample`."""
        return float(self.sample(t)[0])
