"""Display and illumination substrate."""

from .display import (
    DELL_27_LED,
    LAPTOP_13_LCD,
    MONITOR_21_LCD,
    PHONE_6_OLED,
    SCREEN_SIZE_LADDER,
    TABLET_10_LCD,
    ScreenSpec,
)
from .illumination import AmbientEvent, AmbientLight, screen_illuminance, von_kries_reflection

__all__ = [
    "DELL_27_LED",
    "LAPTOP_13_LCD",
    "MONITOR_21_LCD",
    "PHONE_6_OLED",
    "SCREEN_SIZE_LADDER",
    "TABLET_10_LCD",
    "ScreenSpec",
    "AmbientEvent",
    "AmbientLight",
    "screen_illuminance",
    "von_kries_reflection",
]
